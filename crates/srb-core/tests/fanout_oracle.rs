//! Differential oracle: the parallel fan-out engine must commit
//! *byte-identical* MCAT state to the sequential ablation.
//!
//! Two freshly built grids run the same operation script — ingests,
//! writes, replication, fault injection, repair, and a bulk ingest — one
//! connection in `Parallel` mode, the other in `Sequential`. Because legs
//! do only storage I/O and every catalog mutation happens after the join
//! on the caller thread in leg order, the serialized dataset tables must
//! compare equal, id-for-id and timestamp-for-timestamp.

use bytes::Bytes;
use srb_core::{FanoutMode, Grid, GridBuilder, IngestOptions, SrbConnection};
use srb_net::Receipt;
use srb_types::ServerId;

struct Fixture {
    grid: Grid,
    srv: ServerId,
}

fn grid3() -> Fixture {
    let mut gb = GridBuilder::new();
    let site = gb.site("lab");
    let srv = gb.server("srb-lab", site);
    gb.fs_resource("fs1", srv)
        .fs_resource("fs2", srv)
        .fs_resource("fs3", srv)
        .fs_resource("extra", srv)
        .logical_resource("log3", &["fs1", "fs2", "fs3"]);
    let grid = gb.build();
    grid.register_user("u", "lab", "pw").unwrap();
    Fixture { grid, srv }
}

/// The shared operation script. Returns the receipt of one 3-way logical
/// ingest so the caller can compare costs across modes.
fn run_scenario(f: &Fixture, mode: FanoutMode) -> Receipt {
    let mut conn = SrbConnection::connect(&f.grid, f.srv, "u", "lab", "pw").unwrap();
    conn.set_fanout_mode(mode);

    // Plain ingests: three-way fan-out and a single copy.
    let fan3 = conn
        .ingest(
            "/home/u/a",
            vec![0xA5u8; 32 * 1024],
            IngestOptions::to_resource("log3"),
        )
        .unwrap();
    conn.ingest("/home/u/b", b"solo", IngestOptions::to_resource("fs1"))
        .unwrap();

    // Writes: all-up, then with a member down (stale row), then repair.
    conn.write("/home/u/a", vec![0x5Au8; 16 * 1024]).unwrap();
    f.grid.fail_resource("fs2").unwrap();
    conn.write("/home/u/a", b"post-failure contents").unwrap();
    conn.ingest(
        "/home/u/c",
        b"born during the outage",
        IngestOptions::to_resource("log3"),
    )
    .unwrap();
    f.grid.restore_resource("fs2").unwrap();
    conn.sync_replicas("/home/u/a").unwrap();
    conn.sync_replicas("/home/u/c").unwrap();

    // Replication and copy go through the same engine.
    conn.replicate("/home/u/b", "extra").unwrap();
    conn.copy("/home/u/b", "/home/u/b-copy", "fs3").unwrap();

    // Bulk ingest: one batch, hashing inside the legs.
    let files: Vec<(String, Bytes)> = (0..12)
        .map(|i| (format!("bulk{i:02}"), Bytes::from(vec![i as u8; 1024])))
        .collect();
    conn.ingest_bulk("/home/u", files, &IngestOptions::to_resource("log3"))
        .unwrap();

    fan3
}

#[test]
fn parallel_and_sequential_fanout_commit_identical_catalog_state() {
    let fa = grid3();
    let fb = grid3();
    let r_par = run_scenario(&fa, FanoutMode::Parallel);
    let r_seq = run_scenario(&fb, FanoutMode::Sequential);

    let dump_par = serde_json::to_value(&fa.grid.mcat.datasets.dump());
    let dump_seq = serde_json::to_value(&fb.grid.mcat.datasets.dump());
    assert_eq!(
        dump_par, dump_seq,
        "parallel and sequential fan-out must commit identical dataset tables"
    );

    // Costs are allowed to differ — and must, in the right direction:
    // overlapping legs take max-of-legs time, so the parallel 3-way ingest
    // is strictly cheaper in simulated time while moving the same bytes.
    assert!(
        r_par.sim_ns < r_seq.sim_ns,
        "parallel ingest ({} ns) should beat sequential ({} ns)",
        r_par.sim_ns,
        r_seq.sim_ns
    );
    assert_eq!(r_par.bytes, r_seq.bytes);
}

/// Chaos oracle: under a *seeded* flaky-fault schedule (p = 0.3 transient
/// timeouts on two of the three logical-resource members), every
/// acknowledged write survives, and Parallel ≡ Sequential catalog state
/// still holds.
///
/// Determinism argument: fault draws are per-resource counters over a
/// seeded stream, each fan-out leg targets a distinct resource, and
/// operations are serialized on one connection — so each resource sees the
/// identical access sequence in both modes. The clock is advanced by a
/// fixed amount per operation (not by the mode-dependent receipt), keeping
/// circuit-breaker cool-down decisions identical too.
#[test]
fn chaos_flaky_faults_lose_no_acknowledged_write_and_modes_agree() {
    fn run(mode: FanoutMode) -> (Fixture, Vec<(String, Vec<u8>)>) {
        let f = grid3();
        let mut conn = SrbConnection::connect(&f.grid, f.srv, "u", "lab", "pw").unwrap();
        conn.set_fanout_mode(mode);
        f.grid.flaky_resource("fs2", 0.3, 42).unwrap();
        f.grid.flaky_resource("fs3", 0.3, 43).unwrap();
        let mut acked: Vec<(String, Vec<u8>)> = Vec::new();
        for i in 0..24usize {
            let path = format!("/home/u/chaos{i:02}");
            let body = vec![i as u8; 512 + i];
            if conn
                .ingest(&path, body.clone(), IngestOptions::to_resource("log3"))
                .is_ok()
            {
                acked.push((path.clone(), body));
            }
            // Overwrite a third of them to exercise write-path staleness.
            if i % 3 == 0 && conn.write(&path, vec![0xEE; 64 + i]).is_ok() {
                if let Some(e) = acked.iter_mut().find(|(p, _)| *p == path) {
                    e.1 = vec![0xEE; 64 + i];
                }
            }
            // Fixed, mode-independent advance: breaker timing replays.
            f.grid.clock.advance(10_000_000);
        }
        f.grid.faults.heal_all();
        // Past any breaker cool-down, then sweep the stragglers back.
        f.grid.clock.advance(2_000_000_000);
        conn.repair_stale().unwrap();
        (f, acked)
    }

    let (fa, acked_par) = run(FanoutMode::Parallel);
    let (fb, acked_seq) = run(FanoutMode::Sequential);

    // The same seeded schedule acknowledges the same writes.
    let names: Vec<&String> = acked_par.iter().map(|(p, _)| p).collect();
    assert_eq!(
        names,
        acked_seq.iter().map(|(p, _)| p).collect::<Vec<_>>(),
        "seeded chaos must acknowledge the same writes in both modes"
    );
    assert!(!acked_par.is_empty());

    // No acknowledged write is ever lost.
    let ca = SrbConnection::connect(&fa.grid, fa.srv, "u", "lab", "pw").unwrap();
    let cb = SrbConnection::connect(&fb.grid, fb.srv, "u", "lab", "pw").unwrap();
    for (path, expected) in &acked_par {
        assert_eq!(
            &ca.read(path).unwrap().0[..],
            &expected[..],
            "parallel mode lost acknowledged write {path}"
        );
    }
    for (path, expected) in &acked_seq {
        assert_eq!(
            &cb.read(path).unwrap().0[..],
            &expected[..],
            "sequential mode lost acknowledged write {path}"
        );
    }

    // And the catalogs agree byte-for-byte.
    assert_eq!(
        serde_json::to_value(&fa.grid.mcat.datasets.dump()),
        serde_json::to_value(&fb.grid.mcat.datasets.dump()),
        "parallel and sequential catalogs must match under chaos"
    );
}

/// The bytes on disk agree too: every replica of every dataset reads back
/// the same content in both modes.
#[test]
fn parallel_and_sequential_fanout_store_identical_bytes() {
    let fa = grid3();
    let fb = grid3();
    run_scenario(&fa, FanoutMode::Parallel);
    run_scenario(&fb, FanoutMode::Sequential);
    let ca = SrbConnection::connect(&fa.grid, fa.srv, "u", "lab", "pw").unwrap();
    let cb = SrbConnection::connect(&fb.grid, fb.srv, "u", "lab", "pw").unwrap();
    for d in fa.grid.mcat.datasets.dump() {
        let path = format!("/home/u/{}", d.name);
        let (da, _) = ca.read(&path).unwrap();
        let (db, _) = cb.read(&path).unwrap();
        assert_eq!(da, db, "content mismatch for {path}");
    }
}

/// Observability oracle, two halves:
///
/// 1. **Determinism** — two identically seeded chaos runs (p = 0.3 flaky
///    faults, parallel fan-out) produce *byte-identical* metric snapshots:
///    every counter, gauge, histogram quantile, and slow-op entry replays.
/// 2. **Accounting** — `fanout.legs_stale` counts transitions into
///    `Stale` and `health.repairs` transitions out, so their difference
///    must equal the number of stale replica rows the catalog holds, at
///    any point of the run.
#[test]
fn chaos_metrics_snapshot_replays_and_reconciles_with_catalog() {
    fn stale_rows(grid: &Grid) -> u64 {
        grid.mcat
            .datasets
            .dump()
            .iter()
            .flat_map(|d| d.replicas.iter())
            .filter(|r| r.status == srb_mcat::ReplicaStatus::Stale)
            .count() as u64
    }
    fn check_accounting(grid: &Grid, when: &str) {
        let snap = grid.metrics_snapshot();
        let went_stale = snap.counter_total("fanout.legs_stale");
        let repaired = snap.counter_total("health.repairs");
        assert_eq!(
            went_stale - repaired,
            stale_rows(grid),
            "stale-replica accounting must reconcile {when} \
             (legs_stale={went_stale}, repairs={repaired})"
        );
    }
    fn run() -> Fixture {
        let f = grid3();
        let mut conn = SrbConnection::connect(&f.grid, f.srv, "u", "lab", "pw").unwrap();
        conn.set_fanout_mode(FanoutMode::Parallel);
        // Two attempts: enough for the retry counters to move, scarce
        // enough that some legs exhaust the budget and go stale.
        conn.set_retry_budget(srb_core::RetryBudget {
            max_attempts: 2,
            ..srb_core::RetryBudget::default()
        });
        f.grid.flaky_resource("fs2", 0.3, 42).unwrap();
        f.grid.flaky_resource("fs3", 0.3, 43).unwrap();
        for i in 0..24usize {
            let path = format!("/home/u/chaos{i:02}");
            let _ = conn.ingest(
                &path,
                vec![i as u8; 512 + i],
                IngestOptions::to_resource("log3"),
            );
            if i % 3 == 0 {
                let _ = conn.write(&path, vec![0xEE; 64 + i]);
            }
            f.grid.clock.advance(10_000_000);
        }
        check_accounting(&f.grid, "mid-chaos");
        f.grid.faults.heal_all();
        f.grid.clock.advance(2_000_000_000);
        conn.repair_stale().unwrap();
        check_accounting(&f.grid, "after the repair sweep");
        f
    }

    let fa = run();
    let fb = run();
    let sa = fa.grid.metrics_snapshot();
    let sb = fb.grid.metrics_snapshot();
    assert!(
        sa.counter_total("fanout.legs_stale") > 0,
        "chaos schedule produced no staleness; the oracle is vacuous"
    );
    assert!(sa.counter_total("health.retries") > 0);
    assert!(sa.counter_total("faults.injected") > 0);
    assert_eq!(
        serde_json::to_string(&sa).unwrap(),
        serde_json::to_string(&sb).unwrap(),
        "identically seeded runs must replay byte-identical snapshots"
    );
}

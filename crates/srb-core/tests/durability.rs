//! Grid-level durability: a WAL-enabled deployment crashes, a fresh
//! same-topology grid recovers the catalog from the log device, and
//! acknowledged work survives.

mod common;

use srb_core::ops_write::IngestOptions;
use srb_core::SrbConnection;
use srb_mcat::WalConfig;
use srb_storage::LogDevice;
use srb_types::{SrbError, Triplet};
use std::sync::Arc;

const NO_CKPT: WalConfig = WalConfig {
    checkpoint_interval_ns: 0,
};

#[test]
fn crashed_grid_recovers_acknowledged_catalog() {
    let f = common::grid();
    let device = Arc::new(LogDevice::new());
    f.grid.enable_durability(device.clone(), NO_CKPT).unwrap();
    // Enabling twice is rejected.
    assert!(matches!(
        f.grid.enable_durability(device.clone(), NO_CKPT),
        Err(SrbError::Invalid(_))
    ));

    let conn = common::connect(&f, "sekar");
    let r = conn
        .ingest(
            "/home/sekar/a.txt",
            b"alpha".as_slice(),
            IngestOptions::to_resource("unix-sdsc")
                .with_metadata(Triplet::new("project", "dgrid", "")),
        )
        .unwrap();
    assert!(r.sim_ns > 0, "receipts carry durability + transfer cost");
    conn.ingest(
        "/home/sekar/b.txt",
        b"bravo".as_slice(),
        IngestOptions::to_resource("unix-ncsa"),
    )
    .unwrap();
    conn.replicate("/home/sekar/a.txt", "hpss-caltech").unwrap();
    let reference = f.grid.mcat.snapshot_json().unwrap();
    let _ = conn;

    // kill -9: the buffered (never-synced) tail is lost; every op above
    // was acknowledged, so everything survives.
    device.crash();

    // Fresh same-topology grid; only the catalog comes back from the log.
    let mut f2 = common::grid();
    let report = f2.grid.recover_catalog(device, NO_CKPT).unwrap();
    assert!(report.groups_applied > 0);
    assert_eq!(f2.grid.mcat.snapshot_json().unwrap(), reference);

    // Recovered users can sign on; catalog rows are all there even though
    // the physical bytes are not (the WAL does not carry data).
    let conn2 = SrbConnection::connect(&f2.grid, f2.sdsc, "sekar", "sdsc", "pw-sekar").unwrap();
    assert_eq!(conn2.metadata("/home/sekar/a.txt").unwrap().len(), 1);
    assert_eq!(
        conn2.stat("/home/sekar/a.txt").unwrap().2,
        2,
        "both replicas survive"
    );
    // The recovered grid keeps logging: new work is durable too.
    conn2
        .ingest(
            "/home/sekar/c.txt",
            b"charlie".as_slice(),
            IngestOptions::to_resource("unix-sdsc"),
        )
        .unwrap();
    assert_eq!(&conn2.read("/home/sekar/c.txt").unwrap().0[..], b"charlie");
}

#[test]
fn topology_mismatch_rejects_recovery() {
    let f = common::grid();
    let device = Arc::new(LogDevice::new());
    f.grid.enable_durability(device.clone(), NO_CKPT).unwrap();
    let mut gb = srb_core::GridBuilder::new();
    let site = gb.site("elsewhere");
    let srv = gb.server("srb", site);
    gb.fs_resource("other-name", srv);
    let mut wrong = gb.build();
    let err = wrong.recover_catalog(device, NO_CKPT).unwrap_err();
    assert!(err.to_string().contains("lacks resource"));
}

#[test]
fn checkpoints_ride_the_audit_path() {
    let f = common::grid();
    let device = Arc::new(LogDevice::new());
    f.grid
        .enable_durability(
            device.clone(),
            WalConfig {
                checkpoint_interval_ns: 1_000_000,
            },
        )
        .unwrap();
    let conn = common::connect(&f, "sekar");
    for i in 0..5 {
        conn.ingest(
            &format!("/home/sekar/f{i}.txt"),
            b"data".as_slice(),
            IngestOptions::to_resource("unix-sdsc"),
        )
        .unwrap();
    }
    assert!(
        device.checkpoint_lsn().is_some(),
        "ingest audits must have triggered a periodic checkpoint"
    );
    let snap = f.grid.metrics_snapshot();
    assert!(snap.counter("wal.appends", "") > 0);
    assert!(snap.counter("wal.group_commits", "") > 0);
    assert!(snap.counter("wal.checkpoints", "") > 0);
}

//! End-to-end data-movement tests: ingest, read, write, replicate, copy,
//! move, link, delete — the paper's §5 operation set.

mod common;

use common::{connect, grid};
use srb_core::{IngestOptions, SrbConnection};
use srb_types::{Permission, SrbError, Triplet};

#[test]
fn ingest_and_read_round_trip() {
    let f = grid();
    let conn = connect(&f, "sekar");
    let r = conn
        .ingest(
            "/home/sekar/a.txt",
            b"hello grid",
            IngestOptions::to_resource("unix-sdsc").with_type("ascii text"),
        )
        .unwrap();
    assert!(r.sim_ns > 0);
    assert!(r.bytes >= 10);
    let (data, read_r) = conn.read("/home/sekar/a.txt").unwrap();
    assert_eq!(&data[..], b"hello grid");
    assert_eq!(read_r.replicas_tried, 1);
    assert!(read_r.served_by.is_some());
    let (ty, size, nrep, ver) = conn.stat("/home/sekar/a.txt").unwrap();
    assert_eq!(ty, "ascii text");
    assert_eq!(size, 10);
    assert_eq!(nrep, 1);
    assert_eq!(ver, 1);
}

#[test]
fn ingest_to_logical_resource_creates_synchronous_replicas() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.ingest(
        "/home/sekar/multi.dat",
        b"replicated",
        IngestOptions::to_resource("logrsrc1"),
    )
    .unwrap();
    let (_, _, nrep, _) = conn.stat("/home/sekar/multi.dat").unwrap();
    assert_eq!(nrep, 2, "logrsrc1 has two members -> two replicas");
    // Both physical copies exist.
    let unix = f.grid.resource_id("unix-sdsc").unwrap();
    let hpss = f.grid.resource_id("hpss-caltech").unwrap();
    assert!(f.grid.driver(unix).unwrap().driver().used_bytes() >= 10);
    assert!(f.grid.driver(hpss).unwrap().driver().used_bytes() >= 10);
}

#[test]
fn duplicate_ingest_rejected() {
    let f = grid();
    let conn = connect(&f, "sekar");
    let opts = || IngestOptions::to_resource("unix-sdsc");
    conn.ingest("/home/sekar/x", b"1", opts()).unwrap();
    assert!(matches!(
        conn.ingest("/home/sekar/x", b"2", opts()),
        Err(SrbError::AlreadyExists(_))
    ));
}

#[test]
fn write_updates_all_replicas_synchronously() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.ingest(
        "/home/sekar/doc",
        b"v1",
        IngestOptions::to_resource("logrsrc1"),
    )
    .unwrap();
    conn.write("/home/sekar/doc", b"v2 is longer").unwrap();
    let (data, _) = conn.read("/home/sekar/doc").unwrap();
    assert_eq!(&data[..], b"v2 is longer");
    // Knock out one resource; the read must still return the new content
    // from the other replica.
    f.grid.fail_resource("unix-sdsc").unwrap();
    let (data, r) = conn.read("/home/sekar/doc").unwrap();
    assert_eq!(&data[..], b"v2 is longer");
    assert!(r.served_by.is_some());
    f.grid.restore_resource("unix-sdsc").unwrap();
}

#[test]
fn write_with_one_resource_down_marks_stale_then_errors_when_all_down() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.ingest(
        "/home/sekar/doc",
        b"v1",
        IngestOptions::to_resource("logrsrc1"),
    )
    .unwrap();
    f.grid.fail_resource("hpss-caltech").unwrap();
    conn.write("/home/sekar/doc", b"v2").unwrap();
    // The hpss replica is now stale and excluded from reads.
    f.grid.restore_resource("hpss-caltech").unwrap();
    let (data, r) = conn.read("/home/sekar/doc").unwrap();
    assert_eq!(&data[..], b"v2");
    assert_eq!(r.replicas_tried, 1);
    // All resources down: the write fails outright.
    f.grid.fail_resource("unix-sdsc").unwrap();
    f.grid.fail_resource("hpss-caltech").unwrap();
    assert!(conn.write("/home/sekar/doc", b"v3").is_err());
}

#[test]
fn replicate_and_failover() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.ingest(
        "/home/sekar/img",
        b"pixels",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    conn.replicate("/home/sekar/img", "unix-ncsa").unwrap();
    let (_, _, nrep, _) = conn.stat("/home/sekar/img").unwrap();
    assert_eq!(nrep, 2);
    // Fail the first resource: the read fails over transparently.
    f.grid.fail_resource("unix-sdsc").unwrap();
    let (data, r) = conn.read("/home/sekar/img").unwrap();
    assert_eq!(&data[..], b"pixels");
    assert!(r.replicas_tried >= 1);
    // With both down the read reports unavailability.
    f.grid.fail_resource("unix-ncsa").unwrap();
    let err = conn.read("/home/sekar/img").unwrap_err();
    assert!(matches!(err, SrbError::ResourceUnavailable(_)));
}

#[test]
fn copy_does_not_copy_metadata_or_annotations() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.ingest(
        "/home/sekar/orig",
        b"data",
        IngestOptions::to_resource("unix-sdsc")
            .with_metadata(Triplet::new("species", "condor", "")),
    )
    .unwrap();
    conn.annotate(
        "/home/sekar/orig",
        srb_mcat::AnnotationKind::Comment,
        "",
        "nice",
    )
    .unwrap();
    conn.copy("/home/sekar/orig", "/home/sekar/dup", "unix-ncsa")
        .unwrap();
    let (data, _) = conn.read("/home/sekar/dup").unwrap();
    assert_eq!(&data[..], b"data");
    assert!(conn.metadata("/home/sekar/dup").unwrap().is_empty());
    assert!(conn.annotations("/home/sekar/dup").unwrap().is_empty());
    // The original keeps both.
    assert_eq!(conn.metadata("/home/sekar/orig").unwrap().len(), 1);
    assert_eq!(conn.annotations("/home/sekar/orig").unwrap().len(), 1);
    // Writing the copy does not change the original.
    conn.write("/home/sekar/dup", b"changed").unwrap();
    assert_eq!(&conn.read("/home/sekar/orig").unwrap().0[..], b"data");
}

#[test]
fn logical_move_keeps_metadata() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.make_collection("/home/sekar/sub").unwrap();
    conn.ingest(
        "/home/sekar/file",
        b"x",
        IngestOptions::to_resource("unix-sdsc").with_metadata(Triplet::new("k", "v", "")),
    )
    .unwrap();
    conn.move_logical("/home/sekar/file", "/home/sekar/sub/renamed")
        .unwrap();
    assert!(conn.read("/home/sekar/file").is_err());
    let (data, _) = conn.read("/home/sekar/sub/renamed").unwrap();
    assert_eq!(&data[..], b"x");
    assert_eq!(conn.metadata("/home/sekar/sub/renamed").unwrap().len(), 1);
}

#[test]
fn move_whole_collection_rebases_objects() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.make_collection("/home/sekar/proj/deep").unwrap();
    conn.ingest(
        "/home/sekar/proj/deep/f",
        b"1",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    conn.move_logical("/home/sekar/proj", "/home/sekar/renamed")
        .unwrap();
    assert_eq!(
        &conn.read("/home/sekar/renamed/deep/f").unwrap().0[..],
        b"1"
    );
    assert!(conn.read("/home/sekar/proj/deep/f").is_err());
}

#[test]
fn physical_move_preserves_logical_access() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.ingest(
        "/home/sekar/f",
        b"bytes",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    conn.move_physical("/home/sekar/f", 1, "unix-ncsa").unwrap();
    let (data, _) = conn.read("/home/sekar/f").unwrap();
    assert_eq!(&data[..], b"bytes");
    // Old resource no longer holds the bytes.
    let unix = f.grid.resource_id("unix-sdsc").unwrap();
    assert_eq!(f.grid.driver(unix).unwrap().driver().used_bytes(), 0);
}

#[test]
fn links_share_data_and_collapse_chains() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.make_collection("/home/sekar/alt").unwrap();
    conn.ingest(
        "/home/sekar/orig",
        b"shared",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    conn.link("/home/sekar/orig", "/home/sekar/alt/l1").unwrap();
    conn.link("/home/sekar/alt/l1", "/home/sekar/alt/l2")
        .unwrap();
    assert_eq!(&conn.read("/home/sekar/alt/l1").unwrap().0[..], b"shared");
    assert_eq!(&conn.read("/home/sekar/alt/l2").unwrap().0[..], b"shared");
    // Deleting a link unlinks; the original survives.
    conn.delete("/home/sekar/alt/l1", None).unwrap();
    assert!(conn.read("/home/sekar/alt/l1").is_err());
    assert_eq!(&conn.read("/home/sekar/orig").unwrap().0[..], b"shared");
    assert_eq!(&conn.read("/home/sekar/alt/l2").unwrap().0[..], b"shared");
}

#[test]
fn link_collection_as_subcollection() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.make_collection("/home/sekar/real").unwrap();
    conn.ingest(
        "/home/sekar/real/f",
        b"1",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    conn.link("/home/sekar/real", "/home/sekar/alias").unwrap();
    let (data, _) = conn.read("/home/sekar/alias/f").unwrap();
    assert_eq!(&data[..], b"1");
    let (subs, _, _) = conn.list_collection("/home/sekar").unwrap();
    assert!(subs.contains(&"alias".to_string()));
}

#[test]
fn delete_replica_by_replica_then_metadata_goes_with_last() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.ingest(
        "/home/sekar/f",
        b"d",
        IngestOptions::to_resource("unix-sdsc").with_metadata(Triplet::new("k", "v", "")),
    )
    .unwrap();
    conn.replicate("/home/sekar/f", "unix-ncsa").unwrap();
    conn.delete("/home/sekar/f", Some(1)).unwrap();
    // One replica left; object still readable, metadata intact.
    let (_, _, nrep, _) = conn.stat("/home/sekar/f").unwrap();
    assert_eq!(nrep, 1);
    assert_eq!(conn.metadata("/home/sekar/f").unwrap().len(), 1);
    conn.delete("/home/sekar/f", None).unwrap();
    assert!(conn.read("/home/sekar/f").is_err());
    assert!(conn.metadata("/home/sekar/f").is_err());
    assert_eq!(f.grid.mcat.metadata.count(), 0);
}

#[test]
fn permissions_enforced_between_users() {
    let f = grid();
    let sekar = connect(&f, "sekar");
    let mwan = connect(&f, "mwan");
    sekar
        .ingest(
            "/home/sekar/private",
            b"secret",
            IngestOptions::to_resource("unix-sdsc"),
        )
        .unwrap();
    // mwan cannot read, write or delete sekar's file.
    assert!(matches!(
        mwan.read("/home/sekar/private"),
        Err(SrbError::PermissionDenied(_))
    ));
    assert!(mwan.write("/home/sekar/private", b"x").is_err());
    assert!(mwan.delete("/home/sekar/private", None).is_err());
    // After a grant, reading works but writing still fails.
    sekar
        .grant("/home/sekar/private", mwan.user(), Permission::Read)
        .unwrap();
    assert_eq!(&mwan.read("/home/sekar/private").unwrap().0[..], b"secret");
    assert!(mwan.write("/home/sekar/private", b"x").is_err());
    // mwan cannot ingest into sekar's home either.
    assert!(mwan
        .ingest(
            "/home/sekar/intruder",
            b"x",
            IngestOptions::to_resource("unix-sdsc")
        )
        .is_err());
}

#[test]
fn delete_collection_recursive() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.make_collection("/home/sekar/tree/a/b").unwrap();
    conn.ingest(
        "/home/sekar/tree/a/f",
        b"1",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    assert!(conn.delete_collection("/home/sekar/tree", false).is_err());
    conn.delete_collection("/home/sekar/tree", true).unwrap();
    assert!(conn.list_collection("/home/sekar/tree").is_err());
    // Physical bytes were reclaimed.
    let unix = f.grid.resource_id("unix-sdsc").unwrap();
    assert_eq!(f.grid.driver(unix).unwrap().driver().used_bytes(), 0);
}

#[test]
fn session_required_for_every_op() {
    let f = grid();
    let conn = connect(&f, "sekar");
    // Expire the session by advancing virtual time past the TTL.
    f.grid
        .clock
        .advance((srb_core::auth::SESSION_TTL_SECS + 1) * 1_000_000_000);
    assert!(matches!(
        conn.read("/home/sekar/x"),
        Err(SrbError::AuthFailed(_))
    ));
    assert!(matches!(
        conn.ingest(
            "/home/sekar/x",
            b"1",
            IngestOptions::to_resource("unix-sdsc")
        ),
        Err(SrbError::AuthFailed(_))
    ));
}

#[test]
fn bad_password_and_unknown_user_rejected() {
    let f = grid();
    assert!(matches!(
        SrbConnection::connect(&f.grid, f.sdsc, "sekar", "sdsc", "wrong"),
        Err(SrbError::AuthFailed(_))
    ));
    assert!(SrbConnection::connect(&f.grid, f.sdsc, "nobody", "sdsc", "x").is_err());
    assert!(f.grid.auth.failure_count() >= 1);
}

#[test]
fn connect_via_any_server_reaches_same_data() {
    let f = grid();
    let conn_sdsc = connect(&f, "sekar");
    conn_sdsc
        .ingest(
            "/home/sekar/f",
            b"anywhere",
            IngestOptions::to_resource("unix-ncsa"),
        )
        .unwrap();
    // Connect through the NCSA server: same logical path, same data.
    let conn_ncsa = SrbConnection::connect(&f.grid, f.ncsa, "sekar", "sdsc", "pw-sekar").unwrap();
    let (data, r) = conn_ncsa.read("/home/sekar/f").unwrap();
    assert_eq!(&data[..], b"anywhere");
    // NCSA contact + NCSA data -> no data hop, but the MCAT is remote.
    assert!(r.hops >= 1 || r.sim_ns > 0);
    // Through CalTech: data hop charged.
    let conn_ct = SrbConnection::connect(&f.grid, f.caltech, "sekar", "sdsc", "pw-sekar").unwrap();
    let (data, r2) = conn_ct.read("/home/sekar/f").unwrap();
    assert_eq!(&data[..], b"anywhere");
    assert!(r2.hops >= 1);
}

#[test]
fn audit_trail_records_operations() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.ingest(
        "/home/sekar/f",
        b"1",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    conn.read("/home/sekar/f").unwrap();
    let _ = conn.read("/home/sekar/missing");
    let rows = f.grid.mcat.audit.for_user(conn.user());
    assert!(rows.iter().any(|r| r.outcome == "ok"));
    assert!(rows.iter().any(|r| r.outcome == "NOT_FOUND"));
    // Toggle auditing off: no new rows.
    let before = f.grid.mcat.audit.count();
    f.grid.mcat.audit.set_enabled(false);
    conn.read("/home/sekar/f").unwrap();
    assert_eq!(f.grid.mcat.audit.count(), before);
}

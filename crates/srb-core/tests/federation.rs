//! Federation behaviour: load balancing across replicas, parallel client
//! pools, migration, and hop accounting.

mod common;

use common::{connect, grid};
use srb_core::{IngestOptions, ReplicaPolicy, SrbConnection};
use srb_types::Permission;

#[test]
fn least_loaded_policy_spreads_reads_across_replicas() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.ingest(
        "/home/sekar/hot",
        vec![7u8; 4096],
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    conn.replicate("/home/sekar/hot", "unix-ncsa").unwrap();
    let unix_sdsc = f.grid.resource_id("unix-sdsc").unwrap();
    let unix_ncsa = f.grid.resource_id("unix-ncsa").unwrap();
    for _ in 0..50 {
        conn.read("/home/sekar/hot").unwrap();
    }
    // Completed ops include the ingest-store, the replicate's read+store,
    // and the 50 reads.
    let a = f.grid.load.completed(unix_sdsc);
    let b = f.grid.load.completed(unix_ncsa);
    assert_eq!(a + b, 53);
    assert!(
        a >= 15 && b >= 15,
        "least-loaded should alternate between replicas, got {a}/{b}"
    );
}

#[test]
fn first_alive_policy_hammers_replica_one() {
    let f = grid();
    let mut conn = connect(&f, "sekar");
    conn.ingest(
        "/home/sekar/hot",
        b"data",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    conn.replicate("/home/sekar/hot", "unix-ncsa").unwrap();
    conn.set_policy(ReplicaPolicy::FirstAlive);
    let unix_ncsa = f.grid.resource_id("unix-ncsa").unwrap();
    let before = f.grid.load.completed(unix_ncsa);
    for _ in 0..20 {
        conn.read("/home/sekar/hot").unwrap();
    }
    assert_eq!(
        f.grid.load.completed(unix_ncsa),
        before,
        "FirstAlive never touches replica 2 while replica 1 is up"
    );
}

#[test]
fn parallel_clients_ingest_concurrently() {
    let f = grid();
    let admin_conn = connect(&f, "sekar");
    admin_conn.make_collection("/home/sekar/bulk").unwrap();
    admin_conn
        .grant("/home/sekar/bulk", admin_conn.user(), Permission::Own)
        .unwrap();
    let threads = 8;
    let per_thread = 25;
    std::thread::scope(|s| {
        for t in 0..threads {
            let f = &f;
            s.spawn(move || {
                let conn =
                    SrbConnection::connect(&f.grid, f.sdsc, "sekar", "sdsc", "pw-sekar").unwrap();
                for i in 0..per_thread {
                    conn.ingest(
                        &format!("/home/sekar/bulk/t{t}-f{i}"),
                        format!("payload {t}/{i}").as_bytes(),
                        IngestOptions::to_resource("unix-sdsc"),
                    )
                    .unwrap();
                }
            });
        }
    });
    let conn = connect(&f, "sekar");
    let (_, datasets, _) = conn.list_collection("/home/sekar/bulk").unwrap();
    assert_eq!(datasets.len(), threads * per_thread);
    // Spot-check content integrity under concurrency.
    let (data, _) = conn.read("/home/sekar/bulk/t3-f7").unwrap();
    assert_eq!(&data[..], b"payload 3/7");
}

#[test]
fn parallel_readers_with_failover_mid_stream() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.ingest(
        "/home/sekar/shared",
        b"resilient",
        IngestOptions::to_resource("logrsrc1"),
    )
    .unwrap();
    std::thread::scope(|s| {
        let f_ref = &f;
        // Reader threads hammer the object…
        for _ in 0..4 {
            s.spawn(move || {
                let conn =
                    SrbConnection::connect(&f_ref.grid, f_ref.sdsc, "sekar", "sdsc", "pw-sekar")
                        .unwrap();
                for _ in 0..100 {
                    let (data, _) = conn.read("/home/sekar/shared").unwrap();
                    assert_eq!(&data[..], b"resilient");
                }
            });
        }
        // …while a chaos thread flaps one resource.
        s.spawn(move || {
            for _ in 0..20 {
                f_ref.grid.fail_resource("unix-sdsc").unwrap();
                std::thread::yield_now();
                f_ref.grid.restore_resource("unix-sdsc").unwrap();
                std::thread::yield_now();
            }
        });
    });
}

#[test]
fn migration_preserves_names_and_data() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.make_collection("/home/sekar/archive2001/sub").unwrap();
    for i in 0..20 {
        conn.ingest(
            &format!("/home/sekar/archive2001/f{i}"),
            format!("record {i}").as_bytes(),
            IngestOptions::to_resource("unix-sdsc"),
        )
        .unwrap();
    }
    conn.ingest(
        "/home/sekar/archive2001/sub/deep",
        b"nested",
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    // Migrate the whole collection onto the new-generation resource.
    conn.migrate_collection("/home/sekar/archive2001", "unix-ncsa")
        .unwrap();
    // Every logical name still resolves and returns identical content.
    for i in 0..20 {
        let (data, _) = conn.read(&format!("/home/sekar/archive2001/f{i}")).unwrap();
        assert_eq!(&data[..], format!("record {i}").as_bytes());
    }
    assert_eq!(
        &conn.read("/home/sekar/archive2001/sub/deep").unwrap().0[..],
        b"nested"
    );
    // The old resource is empty; the new one holds everything.
    let old = f.grid.resource_id("unix-sdsc").unwrap();
    let new = f.grid.resource_id("unix-ncsa").unwrap();
    assert_eq!(f.grid.driver(old).unwrap().driver().used_bytes(), 0);
    assert!(f.grid.driver(new).unwrap().driver().used_bytes() > 0);
}

#[test]
fn hop_accounting_scales_with_distance() {
    let f = grid();
    let conn = connect(&f, "sekar");
    conn.ingest(
        "/home/sekar/near",
        vec![1u8; 10_000],
        IngestOptions::to_resource("unix-sdsc"),
    )
    .unwrap();
    conn.ingest(
        "/home/sekar/far",
        vec![1u8; 10_000],
        IngestOptions::to_resource("unix-ncsa"),
    )
    .unwrap();
    let (_, near) = conn.read("/home/sekar/near").unwrap();
    let (_, far) = conn.read("/home/sekar/far").unwrap();
    assert_eq!(near.hops, 0, "local data, local contact");
    assert_eq!(far.hops, 1, "data brokered by the NCSA server");
    assert!(
        far.sim_ns > near.sim_ns,
        "WAN transfer must cost more than local ({} vs {})",
        far.sim_ns,
        near.sim_ns
    );
}

#[test]
fn network_traffic_is_accounted() {
    let f = grid();
    let before_msgs = f.grid.network.message_count();
    let conn = connect(&f, "sekar");
    conn.ingest(
        "/home/sekar/f",
        vec![1u8; 50_000],
        IngestOptions::to_resource("unix-ncsa"),
    )
    .unwrap();
    conn.read("/home/sekar/f").unwrap();
    assert!(f.grid.network.message_count() > before_msgs);
    assert!(
        f.grid.network.bytes_moved() >= 100_000,
        "ingest + read moved the payload twice"
    );
}

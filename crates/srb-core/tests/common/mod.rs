//! Shared fixture: a three-site grid modelled on the paper's deployments
//! (SDSC + CalTech + NCSA), with one server per site, a mix of resource
//! kinds, a logical resource, and two users.

use srb_core::{Grid, GridBuilder, SrbConnection};
use srb_net::LinkSpec;
use srb_types::ServerId;

#[allow(dead_code)] // fields used by only some test binaries
pub struct Fixture {
    pub grid: Grid,
    pub sdsc: ServerId,
    pub caltech: ServerId,
    pub ncsa: ServerId,
}

pub fn grid() -> Fixture {
    let mut gb = GridBuilder::new();
    let s_sdsc = gb.site("sdsc");
    let s_caltech = gb.site("caltech");
    let s_ncsa = gb.site("ncsa");
    gb.link(s_sdsc, s_caltech, LinkSpec::metro());
    gb.link(s_sdsc, s_ncsa, LinkSpec::wan());
    gb.link(s_caltech, s_ncsa, LinkSpec::wan());
    let sdsc = gb.server("srb-sdsc", s_sdsc);
    let caltech = gb.server("srb-caltech", s_caltech);
    let ncsa = gb.server("srb-ncsa", s_ncsa);
    gb.fs_resource("unix-sdsc", sdsc)
        .cache_resource("cache-sdsc", sdsc, 64 * 1024)
        .archive_resource("hpss-caltech", caltech)
        .fs_resource("unix-ncsa", ncsa)
        .archive_resource("hpss-ncsa", ncsa)
        .db_resource("oracle-dlib", caltech)
        .logical_resource("logrsrc1", &["unix-sdsc", "hpss-caltech"])
        .logical_resource("ct-store", &["cache-sdsc", "hpss-caltech"]);
    let grid = gb.build();
    grid.register_user("sekar", "sdsc", "pw-sekar").unwrap();
    grid.register_user("mwan", "sdsc", "pw-mwan").unwrap();
    Fixture {
        grid,
        sdsc,
        caltech,
        ncsa,
    }
}

pub fn connect<'g>(f: &'g Fixture, user: &str) -> SrbConnection<'g> {
    SrbConnection::connect(&f.grid, f.sdsc, user, "sdsc", &format!("pw-{user}")).unwrap()
}

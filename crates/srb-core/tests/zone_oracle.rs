//! Zone federation oracles: cross-zone registration provenance, federated
//! query routing, and the partition chaos oracle — a seeded workload
//! replicated across zones survives a mid-replication link partition with
//! no acknowledged home-zone write lost, and both catalogs serialize to
//! byte-identical subtree exports after heal + pump drain.

use srb_core::{Federation, GridBuilder, IngestOptions, SrbConnection, ZoneId};
use srb_mcat::{Query, WalConfig};
use srb_net::LinkSpec;
use srb_storage::LogDevice;
use srb_types::{ServerId, SimClock, Triplet};
use std::sync::Arc;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One single-site zone grid on the shared federation clock, with WAL
/// durability and periodic checkpoints off (tests trigger checkpoints
/// explicitly to exercise the resync path deterministically).
fn zone_grid(clock: &SimClock, tag: &str) -> (srb_core::Grid, ServerId) {
    let mut gb = GridBuilder::new();
    gb.clock(clock.clone());
    let site = gb.site(&format!("site-{tag}"));
    let srv = gb.server(&format!("srb-{tag}"), site);
    gb.fs_resource(&format!("fs-{tag}"), srv);
    let grid = gb.build();
    grid.enable_durability(
        Arc::new(LogDevice::new()),
        WalConfig {
            checkpoint_interval_ns: 0,
        },
    )
    .unwrap();
    grid.register_user("sekar", "sdsc", "pw").unwrap();
    (grid, srv)
}

struct Fed {
    fed: Federation,
    a: ZoneId,
    b: ZoneId,
}

fn two_zones(spec: LinkSpec) -> Fed {
    let mut fed = Federation::new();
    let clock = fed.clock().clone();
    let (grid_a, srv_a) = zone_grid(&clock, "alpha");
    let (grid_b, srv_b) = zone_grid(&clock, "beta");
    let a = fed.add_zone("alpha", grid_a, srv_a).unwrap();
    let b = fed.add_zone("beta", grid_b, srv_b).unwrap();
    fed.link(a, b, spec).unwrap();
    Fed { fed, a, b }
}

fn conn<'f>(f: &'f Fed, z: ZoneId) -> SrbConnection<'f> {
    let zone = f.fed.zone(z).unwrap();
    SrbConnection::connect(&zone.grid, zone.contact(), "sekar", "sdsc", "pw").unwrap()
}

/// Ingest one seeded dataset under `/home/sekar/data` and return its path.
fn seeded_ingest(c: &SrbConnection<'_>, rng: &mut u64, i: usize, res: &str) -> String {
    let path = format!("/home/sekar/data/set{i:03}");
    let size = 64 + (splitmix64(rng) % 4096) as usize;
    let mut opts = IngestOptions::to_resource(res).with_type("text");
    if splitmix64(rng).is_multiple_of(2) {
        opts = opts.with_metadata(Triplet::new(
            "project",
            format!("p{}", splitmix64(rng) % 7).as_str(),
            "",
        ));
    }
    c.ingest(&path, vec![0xA5u8; size], opts).unwrap();
    path
}

#[test]
fn cross_zone_registration_carries_provenance_and_survives_recovery() {
    let f = two_zones(LinkSpec::wan());
    let ca = conn(&f, f.a);
    ca.make_collection("/home/sekar/data").unwrap();
    let mut rng = 0xDEAD_BEEFu64;
    let src = seeded_ingest(&ca, &mut rng, 0, "fs-alpha");

    f.fed
        .register_remote(f.a, &src, f.b, "/remote/alpha/set000")
        .unwrap();

    let beta = &f.fed.zone(f.b).unwrap().grid.mcat;
    let id = beta
        .resolve_dataset(&"/remote/alpha/set000".parse().unwrap())
        .unwrap();
    let prov = beta.remote_provenance(id).unwrap();
    assert_eq!(prov, Some(("alpha".to_string(), src.clone())));
    // Local datasets carry no remote provenance.
    let alpha = &f.fed.zone(f.a).unwrap().grid.mcat;
    let home_id = alpha.resolve_dataset(&src.parse().unwrap()).unwrap();
    assert_eq!(alpha.remote_provenance(home_id).unwrap(), None);
}

#[test]
fn federated_query_tags_hits_and_paginates_across_zones() {
    let f = two_zones(LinkSpec::metro());
    let ca = conn(&f, f.a);
    let cb = conn(&f, f.b);
    ca.make_collection("/home/sekar/data").unwrap();
    cb.make_collection("/home/sekar/data").unwrap();
    let mut rng = 42u64;
    for i in 0..6 {
        let p = seeded_ingest(&ca, &mut rng, i, "fs-alpha");
        ca.add_metadata(&p, Triplet::new("grade", "hot", ""))
            .unwrap();
    }
    for i in 0..5 {
        let p = seeded_ingest(&cb, &mut rng, i, "fs-beta");
        cb.add_metadata(&p, Triplet::new("grade", "hot", ""))
            .unwrap();
    }

    let fc = f.fed.connect(f.a, "sekar", "sdsc", "pw").unwrap();
    let q = Query::everywhere().and("grade", srb_types::CompareOp::Eq, "hot");
    let (hits, receipt) = fc.query(&q).unwrap();
    assert_eq!(hits.len(), 11);
    assert_eq!(hits.iter().filter(|h| h.zone == "alpha").count(), 6);
    assert_eq!(hits.iter().filter(|h| h.zone == "beta").count(), 5);
    assert!(receipt.sim_ns > 0);
    // Deterministic (path, zone) merge order.
    let mut keys: Vec<_> = hits
        .iter()
        .map(|h| (h.hit.path.clone(), h.zone.clone()))
        .collect();
    let sorted = {
        let mut k = keys.clone();
        k.sort();
        k
    };
    assert_eq!(keys, sorted);

    // Pagination with a composite cursor walks the same hit set.
    let mut paged = Vec::new();
    let mut token: Option<String> = None;
    let mut guard = 0;
    loop {
        let (page, next, _r) = fc.query_page(&q, token.as_deref(), 3).unwrap();
        paged.extend(page.into_iter().map(|h| (h.hit.path, h.zone)));
        guard += 1;
        assert!(guard < 20, "cursor failed to terminate");
        match next {
            Some(t) => token = Some(t),
            None => break,
        }
    }
    keys.sort();
    let mut paged_sorted = paged.clone();
    paged_sorted.sort();
    assert_eq!(paged_sorted, keys);
    assert_eq!(paged.len(), 11);

    // Partition the inter-zone link: the federated query degrades to the
    // home zone instead of failing.
    f.fed.partition(f.a, f.b).unwrap();
    let (hits, _r) = fc.query(&q).unwrap();
    assert_eq!(hits.len(), 6);
    assert!(hits.iter().all(|h| h.zone == "alpha"));
}

#[test]
fn partition_chaos_oracle_no_acked_write_lost_and_byte_identical_heal() {
    let f = two_zones(LinkSpec::wan());
    let ca = conn(&f, f.a);
    ca.make_collection("/home/sekar/data").unwrap();
    let mut rng = 0x5EED_0001u64;
    let mut acked: Vec<String> = Vec::new();

    // Phase 1: seeded workload in the home zone, then subscribe beta.
    for i in 0..12 {
        acked.push(seeded_ingest(&ca, &mut rng, i, "fs-alpha"));
    }
    let dst_root = f.fed.subscribe(f.b, f.a, "/home/sekar/data").unwrap();
    assert_eq!(dst_root, "/zones/alpha/home/sekar/data");

    // Phase 2: more writes, partially pumped so the outbox is non-empty
    // when the link dies.
    for i in 12..24 {
        acked.push(seeded_ingest(&ca, &mut rng, i, "fs-alpha"));
    }
    let r = f.fed.pump(3).unwrap();
    assert!(r.fetched > 0, "pump fetched nothing before the partition");

    // Kill the link mid-replication.
    f.fed.partition(f.a, f.b).unwrap();

    // Phase 3: writes keep committing in the home zone while partitioned.
    for i in 24..30 {
        acked.push(seeded_ingest(&ca, &mut rng, i, "fs-alpha"));
    }
    let blocked = f.fed.pump(8).unwrap();
    assert!(
        blocked.blocked > 0,
        "partitioned pump should report blocked"
    );
    assert_eq!(blocked.fetched, 0, "no deltas may cross a dead link");

    // Oracle 1: no acknowledged write lost in its home zone.
    let alpha = &f.fed.zone(f.a).unwrap().grid.mcat;
    for path in &acked {
        alpha
            .resolve_dataset(&path.parse().unwrap())
            .unwrap_or_else(|e| panic!("acked write {path} lost in home zone: {e}"));
        let (data, _r) = ca.read(path).unwrap();
        assert!(!data.is_empty());
    }

    // Oracle 2: heal, drain, converge byte-identically.
    f.fed.heal(f.a, f.b).unwrap();
    let drained = f.fed.pump_until_drained(8, 1000).unwrap();
    assert_eq!(drained.pending, 0, "outboxes failed to drain after heal");
    let src_digest = f.fed.subtree_digest(f.a, "/home/sekar/data").unwrap();
    let dst_digest = f.fed.subtree_digest(f.b, &dst_root).unwrap();
    assert!(!src_digest.is_empty());
    assert_eq!(
        src_digest, dst_digest,
        "publisher and mirror diverged after heal"
    );
    // The mirror carries every acked dataset.
    assert_eq!(src_digest.matches("\nD ").count() + 1, acked.len());
}

#[test]
fn checkpoint_gap_forces_resync_and_still_converges() {
    let f = two_zones(LinkSpec::metro());
    let ca = conn(&f, f.a);
    ca.make_collection("/home/sekar/data").unwrap();
    let mut rng = 0xABCDu64;
    for i in 0..4 {
        seeded_ingest(&ca, &mut rng, i, "fs-alpha");
    }
    let dst_root = f.fed.subscribe(f.b, f.a, "/home/sekar/data").unwrap();

    // While partitioned, the publisher both writes and checkpoints, so the
    // subscriber's cursor falls behind the pruned log.
    f.fed.partition(f.a, f.b).unwrap();
    for i in 4..10 {
        seeded_ingest(&ca, &mut rng, i, "fs-alpha");
    }
    let alpha = &f.fed.zone(f.a).unwrap().grid.mcat;
    alpha.checkpoint_now().unwrap();
    f.fed.heal(f.a, f.b).unwrap();

    let drained = f.fed.pump_until_drained(8, 1000).unwrap();
    assert!(drained.resyncs >= 1, "checkpoint gap must force a resync");
    assert_eq!(
        f.fed.subtree_digest(f.a, "/home/sekar/data").unwrap(),
        f.fed.subtree_digest(f.b, &dst_root).unwrap()
    );
    let status = &f.fed.subscriptions()[0];
    assert!(status.resyncs >= 1);
    assert_eq!(status.outbox, 0);
}

#[test]
fn federated_pagination_terminates_when_home_has_higher_index() {
    let f = two_zones(LinkSpec::metro());
    let ca = conn(&f, f.a);
    let cb = conn(&f, f.b);
    ca.make_collection("/home/sekar/data").unwrap();
    cb.make_collection("/home/sekar/data").unwrap();
    let mut rng = 9u64;
    for i in 0..5 {
        let p = seeded_ingest(&ca, &mut rng, i, "fs-alpha");
        ca.add_metadata(&p, Triplet::new("grade", "hot", ""))
            .unwrap();
    }
    for i in 0..4 {
        let p = seeded_ingest(&cb, &mut rng, i, "fs-beta");
        cb.add_metadata(&p, Triplet::new("grade", "hot", ""))
            .unwrap();
    }

    // Home is the *higher* zone index: the first boundary token points at
    // the lower-indexed peer and must not resume back into home (which
    // would duplicate its hits and never terminate).
    let fc = f.fed.connect(f.b, "sekar", "sdsc", "pw").unwrap();
    let q = Query::everywhere().and("grade", srb_types::CompareOp::Eq, "hot");
    let mut paged = Vec::new();
    let mut token: Option<String> = None;
    let mut guard = 0;
    loop {
        let (page, next, _r) = fc.query_page(&q, token.as_deref(), 2).unwrap();
        paged.extend(page.into_iter().map(|h| (h.hit.path.clone(), h.zone)));
        guard += 1;
        assert!(guard < 20, "cursor failed to terminate");
        match next {
            Some(t) => token = Some(t),
            None => break,
        }
    }
    assert_eq!(paged.len(), 9, "every hit exactly once: {paged:?}");
    let (hits, _r) = fc.query(&q).unwrap();
    let mut all: Vec<_> = hits
        .iter()
        .map(|h| (h.hit.path.clone(), h.zone.clone()))
        .collect();
    all.sort();
    paged.sort();
    assert_eq!(paged, all);
}

#[test]
fn replication_follows_collection_moves_and_unmirrors_departed_branches() {
    let f = two_zones(LinkSpec::lan());
    let ca = conn(&f, f.a);
    for c in [
        "/home/sekar/data",
        "/home/sekar/data/keep",
        "/home/sekar/data/leave",
        "/home/sekar/archive",
    ] {
        ca.make_collection(c).unwrap();
    }
    let opts = || IngestOptions::to_resource("fs-alpha").with_type("text");
    ca.ingest("/home/sekar/data/keep/k0", vec![1u8; 64], opts())
        .unwrap();
    ca.ingest("/home/sekar/data/leave/l0", vec![2u8; 64], opts())
        .unwrap();
    let dst_root = f.fed.subscribe(f.b, f.a, "/home/sekar/data").unwrap();

    // Rename a collection within the subtree; move another branch out of
    // the subtree entirely.
    ca.move_logical("/home/sekar/data/keep", "/home/sekar/data/kept")
        .unwrap();
    ca.move_logical("/home/sekar/data/leave", "/home/sekar/archive/leave")
        .unwrap();
    let drained = f.fed.pump_until_drained(4, 1000).unwrap();
    assert_eq!(drained.pending, 0);
    assert_eq!(
        f.fed.subtree_digest(f.a, "/home/sekar/data").unwrap(),
        f.fed.subtree_digest(f.b, &dst_root).unwrap(),
        "mirror diverged after publisher collection moves"
    );

    // The renamed collection's mirror kept its dataset, with provenance
    // re-pointed at the new publisher path.
    let beta = &f.fed.zone(f.b).unwrap().grid.mcat;
    let kept = beta
        .resolve_dataset(&format!("{dst_root}/kept/k0").parse().unwrap())
        .unwrap();
    assert_eq!(
        beta.remote_provenance(kept).unwrap(),
        Some(("alpha".to_string(), "/home/sekar/data/kept/k0".to_string()))
    );
    // The departed branch is gone from the mirror.
    assert!(beta
        .resolve_dataset(&format!("{dst_root}/leave/l0").parse().unwrap())
        .is_err());

    // A dataset created under the renamed collection *after* the move
    // derives its provenance from the new path, not the stale one.
    ca.ingest("/home/sekar/data/kept/k1", vec![3u8; 64], opts())
        .unwrap();
    f.fed.pump_until_drained(4, 1000).unwrap();
    let k1 = beta
        .resolve_dataset(&format!("{dst_root}/kept/k1").parse().unwrap())
        .unwrap();
    assert_eq!(
        beta.remote_provenance(k1).unwrap(),
        Some(("alpha".to_string(), "/home/sekar/data/kept/k1".to_string()))
    );
    assert_eq!(
        f.fed.subtree_digest(f.a, "/home/sekar/data").unwrap(),
        f.fed.subtree_digest(f.b, &dst_root).unwrap()
    );
}

#[test]
fn irrelevant_churn_does_not_pin_cursor_into_resync() {
    let f = two_zones(LinkSpec::metro());
    let ca = conn(&f, f.a);
    ca.make_collection("/home/sekar/data").unwrap();
    let mut rng = 3u64;
    seeded_ingest(&ca, &mut rng, 0, "fs-alpha");
    let dst_root = f.fed.subscribe(f.b, f.a, "/home/sekar/data").unwrap();
    f.fed.pump_until_drained(4, 100).unwrap();

    // The publisher's WAL tail is pure irrelevant churn (user puts), then
    // a checkpoint prunes the log. The fetch cursor must keep up through
    // the churn, or the prune lands past it and forces a spurious resync.
    let alpha = f.fed.zone(f.a).unwrap();
    for i in 0..5 {
        alpha
            .grid
            .register_user(&format!("churn{i}"), "sdsc", "pw")
            .unwrap();
    }
    f.fed.pump(4).unwrap(); // fetches the churn; nothing relevant
    alpha.grid.mcat.checkpoint_now().unwrap();

    seeded_ingest(&ca, &mut rng, 1, "fs-alpha");
    let drained = f.fed.pump_until_drained(4, 100).unwrap();
    assert_eq!(
        drained.resyncs, 0,
        "irrelevant churn pinned the fetch cursor"
    );
    assert_eq!(
        f.fed.subtree_digest(f.a, "/home/sekar/data").unwrap(),
        f.fed.subtree_digest(f.b, &dst_root).unwrap()
    );
}

#[test]
fn failed_subscribe_leaves_no_mirror_behind() {
    // Two zones with no peering link: the subscription handshake must
    // fail before any subscriber-catalog mutation.
    let mut fed = Federation::new();
    let clock = fed.clock().clone();
    let (grid_a, srv_a) = zone_grid(&clock, "alpha");
    let (grid_b, srv_b) = zone_grid(&clock, "beta");
    let a = fed.add_zone("alpha", grid_a, srv_a).unwrap();
    let b = fed.add_zone("beta", grid_b, srv_b).unwrap();
    {
        let zone_a = fed.zone(a).unwrap();
        let ca =
            SrbConnection::connect(&zone_a.grid, zone_a.contact(), "sekar", "sdsc", "pw").unwrap();
        ca.make_collection("/home/sekar/data").unwrap();
        let mut rng = 1u64;
        seeded_ingest(&ca, &mut rng, 0, "fs-alpha");
    }
    assert!(fed.subscribe(b, a, "/home/sekar/data").is_err());
    assert!(fed.subscriptions().is_empty());
    let beta = &fed.zone(b).unwrap().grid.mcat;
    assert!(
        beta.collections.resolve(&"/zones".parse().unwrap()).is_err(),
        "failed subscribe left a half-built mirror behind"
    );
}

#[test]
fn replication_tracks_moves_deletes_and_metadata_changes() {
    let f = two_zones(LinkSpec::lan());
    let ca = conn(&f, f.a);
    ca.make_collection("/home/sekar/data").unwrap();
    ca.make_collection("/home/sekar/data/sub").unwrap();
    let mut rng = 7u64;
    for i in 0..6 {
        seeded_ingest(&ca, &mut rng, i, "fs-alpha");
    }
    let dst_root = f.fed.subscribe(f.b, f.a, "/home/sekar/data").unwrap();

    // Mutate after the initial copy: rename, move, delete, re-tag.
    ca.move_logical("/home/sekar/data/set000", "/home/sekar/data/renamed")
        .unwrap();
    ca.move_logical("/home/sekar/data/set001", "/home/sekar/data/sub/moved")
        .unwrap();
    ca.delete("/home/sekar/data/set002", None).unwrap();
    ca.add_metadata(
        "/home/sekar/data/set003",
        Triplet::new("grade", "cold", "K"),
    )
    .unwrap();

    let drained = f.fed.pump_until_drained(4, 1000).unwrap();
    assert_eq!(drained.pending, 0);
    assert_eq!(
        f.fed.subtree_digest(f.a, "/home/sekar/data").unwrap(),
        f.fed.subtree_digest(f.b, &dst_root).unwrap()
    );

    // Replication lag was observed against the shared virtual clock.
    let status = &f.fed.subscriptions()[0];
    assert!(status.max_lag_ns > 0);
    assert!(status.applied > 0);
}

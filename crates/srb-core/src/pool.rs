//! Connection pooling: reuse per-user auth state across repeat connects.
//!
//! MySRB reconstructs an [`SrbConnection`] on every login, and the full
//! handshake is expensive at web scale: a users-table lookup, an RPC to
//! the MCAT site, a challenge/verify round through the auth service, and
//! two audit-trail appends behind the global audit mutex. The pool caches
//! `(user, domain) → (verifier, ticket)` after one successful handshake;
//! a repeat connect that presents the same password (verified against the
//! cached verifier in constant time) and whose federation ticket is still
//! valid gets a connection built directly from the cached [`Session`] —
//! no RPC, no audit append, no table contention.
//!
//! Semantics deliberately kept from the full path: a wrong password never
//! hits the cache (the verifier comparison fails and the request falls
//! through to the full handshake, which fails and audits `AuthFail`), and
//! an expired or logged-out ticket also falls through, re-running the
//! handshake and re-auditing `Connect`. The one relaxation is that a
//! pooled login is *not* re-audited — the original `Connect` row covers
//! the ticket's pooled lifetime — and a password change in the MCAT is
//! honoured lazily, once the cached ticket expires or is logged out.

use crate::auth::Session;
use crate::conn::SrbConnection;
use crate::grid::Grid;
use srb_types::sync::{LockRank, RwLock};
use srb_types::{ct_eq, ServerId, SrbResult};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Pool shards; keyed by FNV-1a of `name@domain`.
const POOL_SHARDS: usize = 16;

struct PooledCred {
    verifier: [u8; 32],
    session: Session,
}

type PoolShard = RwLock<HashMap<(String, String), PooledCred>>;

/// Sharded `(user, domain) → cached credential` table.
pub struct ConnPool {
    shards: Box<[PoolShard]>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for ConnPool {
    fn default() -> Self {
        Self::new()
    }
}

impl ConnPool {
    /// Empty pool.
    pub fn new() -> Self {
        ConnPool {
            shards: (0..POOL_SHARDS)
                .map(|_| RwLock::new(LockRank::CoreState, "core.conn_pool.shard", HashMap::new()))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, name: &str, domain: &str) -> &PoolShard {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes().chain([b'@']).chain(domain.bytes()) {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        &self.shards[(h % POOL_SHARDS as u64) as usize]
    }

    /// A still-valid cached session for `name@domain`, if the presented
    /// password's verifier matches the one that minted it.
    fn lookup(
        &self,
        grid: &Grid,
        name: &str,
        domain: &str,
        verifier: &[u8; 32],
    ) -> Option<Session> {
        let shard = self.shard(name, domain).read();
        let cred = shard.get(&(name.to_string(), domain.to_string()))?;
        if !ct_eq(&cred.verifier, verifier) {
            return None;
        }
        if grid.auth.validate(&cred.session.ticket).is_err() {
            return None;
        }
        Some(cred.session.clone())
    }

    fn store(&self, name: &str, domain: &str, verifier: [u8; 32], session: Session) {
        self.shard(name, domain).write().insert(
            (name.to_string(), domain.to_string()),
            PooledCred { verifier, session },
        );
    }

    /// `(hits, misses)` since grid construction.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

impl<'g> SrbConnection<'g> {
    /// Connect like [`SrbConnection::connect`], but reuse pooled auth
    /// state when this user already signed on with the same password and
    /// the federation ticket is still valid. Falls back to the full
    /// challenge–response handshake (and caches its session) otherwise.
    pub fn connect_pooled(
        grid: &'g Grid,
        server: ServerId,
        name: &str,
        domain: &str,
        password: &str,
    ) -> SrbResult<Self> {
        let client_verifier = srb_mcat::user::derive_verifier(password);
        if let Some(session) = grid.pool.lookup(grid, name, domain, &client_verifier) {
            let srv = grid.server(server)?;
            grid.pool.hits.fetch_add(1, Ordering::Relaxed);
            if let Some(core) = grid.core_obs() {
                core.pool_hits.inc();
            }
            return Ok(SrbConnection::from_session(grid, server, srv.site, session));
        }
        let conn = SrbConnection::connect(grid, server, name, domain, password)?;
        grid.pool.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(core) = grid.core_obs() {
            core.pool_misses.inc();
        }
        grid.pool
            .store(name, domain, client_verifier, conn.session.clone());
        Ok(conn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridBuilder;

    fn fixture() -> (Grid, srb_types::ServerId) {
        let mut gb = GridBuilder::new();
        let site = gb.site("sdsc");
        let srv = gb.server("srb", site);
        gb.fs_resource("fs", srv);
        let grid = gb.build();
        grid.register_user("u", "d", "pw").unwrap();
        (grid, srv)
    }

    #[test]
    fn second_connect_is_a_hit_and_skips_the_audit() {
        let (grid, srv) = fixture();
        let a = SrbConnection::connect_pooled(&grid, srv, "u", "d", "pw").unwrap();
        let b = SrbConnection::connect_pooled(&grid, srv, "u", "d", "pw").unwrap();
        assert_eq!(grid.pool.stats(), (1, 1));
        assert_eq!(a.user(), b.user());
        // One handshake → one Connect audit row, not two.
        let connects = grid
            .mcat
            .audit
            .dump()
            .iter()
            .filter(|r| r.action == srb_mcat::AuditAction::Connect)
            .count();
        assert_eq!(connects, 1);
        // The pooled connection really works.
        b.list_collection("/home/u").unwrap();
    }

    #[test]
    fn wrong_password_never_hits_the_cache() {
        let (grid, srv) = fixture();
        SrbConnection::connect_pooled(&grid, srv, "u", "d", "pw").unwrap();
        assert!(SrbConnection::connect_pooled(&grid, srv, "u", "d", "nope").is_err());
        // A failed connect is neither a hit nor a cached miss.
        assert_eq!(grid.pool.stats(), (0, 1));
        assert_eq!(grid.auth.failure_count(), 1);
    }

    #[test]
    fn expired_ticket_falls_back_to_a_fresh_handshake() {
        let (grid, srv) = fixture();
        SrbConnection::connect_pooled(&grid, srv, "u", "d", "pw").unwrap();
        grid.clock
            .advance((crate::auth::SESSION_TTL_SECS + 1) * 1_000_000_000);
        let c = SrbConnection::connect_pooled(&grid, srv, "u", "d", "pw").unwrap();
        assert_eq!(grid.pool.stats(), (0, 2));
        assert_eq!(c.user().0, grid.mcat.users.find("u", "d").unwrap().id.0);
    }

    #[test]
    fn logout_of_the_pooled_ticket_falls_back() {
        let (grid, srv) = fixture();
        let a = SrbConnection::connect_pooled(&grid, srv, "u", "d", "pw").unwrap();
        grid.auth.logout(&a.session.ticket);
        SrbConnection::connect_pooled(&grid, srv, "u", "d", "pw").unwrap();
        assert_eq!(grid.pool.stats(), (0, 2));
    }
}

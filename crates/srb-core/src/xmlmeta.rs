//! XML-based file metadata.
//!
//! The paper ships triplet files ("currently triplets are the only form of
//! metadata supported in this manner") and promises "XML-based metadata
//! will be supported in a later release". This module is that later
//! release: a small, dependency-free parser for metadata documents of the
//! form the AMICO image deployments used —
//!
//! ```xml
//! <metadata>
//!   <attr name="species" units="">Vultur gryphus</attr>
//!   <attr name="wingspan" units="cm">290</attr>
//!   <!-- or element-named attributes: -->
//!   <Title>Andean Condor</Title>
//! </metadata>
//! ```
//!
//! Entities `&amp; &lt; &gt; &quot; &#39;` are decoded; unknown markup is
//! skipped rather than fatal (metadata files arrive from outside SRB).

use srb_types::{MetaValue, SrbError, SrbResult, Triplet};

/// Parse an XML metadata document into triplets.
pub fn parse_xml_triplets(doc: &str) -> SrbResult<Vec<Triplet>> {
    let mut out = Vec::new();
    let bytes = doc.as_bytes();
    let mut i = 0usize;
    let mut depth_root_seen = false;
    while i < bytes.len() {
        // Find the next tag.
        let Some(open) = doc[i..].find('<') else {
            break;
        };
        let start = i + open;
        let Some(close) = doc[start..].find('>') else {
            return Err(SrbError::Parse("unterminated XML tag".into()));
        };
        let end = start + close;
        let tag = &doc[start + 1..end];
        i = end + 1;
        if tag.starts_with('!') || tag.starts_with('?') || tag.starts_with('/') {
            continue; // comments, declarations, closers
        }
        if tag.ends_with('/') {
            continue; // self-closing, no value
        }
        let (name_part, attrs) = tag.split_once(char::is_whitespace).unwrap_or((tag, ""));
        // The first element is the root wrapper; skip it.
        if !depth_root_seen {
            depth_root_seen = true;
            continue;
        }
        // Grab text up to the matching close tag (no nesting inside attrs).
        let close_tag = format!("</{name_part}>");
        let Some(text_end) = doc[i..].find(&close_tag) else {
            return Err(SrbError::Parse(format!(
                "missing close tag for <{name_part}>"
            )));
        };
        let raw_value = doc[i..i + text_end].trim();
        i += text_end + close_tag.len();
        let value = decode_entities(raw_value);
        if name_part.eq_ignore_ascii_case("attr") {
            let name = attr_value(attrs, "name").unwrap_or_default();
            if name.is_empty() {
                return Err(SrbError::Parse("<attr> without a name attribute".into()));
            }
            let units = attr_value(attrs, "units").unwrap_or_default();
            out.push(Triplet::new(name, MetaValue::parse(&value), units));
        } else {
            out.push(Triplet::new(
                name_part,
                MetaValue::parse(&value),
                attr_value(attrs, "units").unwrap_or_default(),
            ));
        }
    }
    Ok(out)
}

/// Does this document look like XML metadata (vs the `name|value|units`
/// triplet format)?
pub fn looks_like_xml(doc: &str) -> bool {
    doc.trim_start().starts_with('<')
}

fn attr_value(attrs: &str, key: &str) -> Option<String> {
    let mut rest = attrs;
    while let Some(eq) = rest.find('=') {
        let name = rest[..eq].trim();
        let after = rest[eq + 1..].trim_start();
        let quote = after.chars().next()?;
        if quote != '"' && quote != '\'' {
            return None;
        }
        let end = after[1..].find(quote)?;
        let value = &after[1..1 + end];
        if name.eq_ignore_ascii_case(key) {
            return Some(decode_entities(value));
        }
        rest = &after[end + 2..];
    }
    None
}

fn decode_entities(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", "\"")
        .replace("&#39;", "'")
        .replace("&amp;", "&")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attr_elements_with_units() {
        let doc = r#"
            <metadata>
              <attr name="species" units="">Vultur gryphus</attr>
              <attr name="wingspan" units="cm">290</attr>
            </metadata>"#;
        let t = parse_xml_triplets(doc).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0], Triplet::new("species", "Vultur gryphus", ""));
        assert_eq!(t[1].value, MetaValue::Int(290));
        assert_eq!(t[1].units, "cm");
    }

    #[test]
    fn element_named_attributes_dublin_core_style() {
        let doc = "<dc><Title>Andean Condor</Title><Creator>sekar</Creator></dc>";
        let t = parse_xml_triplets(doc).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].name, "Title");
        assert_eq!(t[1].value.lexical(), "sekar");
    }

    #[test]
    fn entities_decoded_and_noise_skipped() {
        let doc = r#"<?xml version="1.0"?>
            <!-- provenance: AMICO -->
            <m>
              <attr name="title">Birds &amp; Beasts &lt;vol 2&gt;</attr>
              <empty/>
            </m>"#;
        let t = parse_xml_triplets(doc).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].value.lexical(), "Birds & Beasts <vol 2>");
    }

    #[test]
    fn malformed_documents_error() {
        assert!(parse_xml_triplets("<m><attr name=\"x\">v").is_err());
        assert!(parse_xml_triplets("<m><attr>no name</attr></m>").is_err());
        assert!(parse_xml_triplets("<m><unclosed").is_err());
    }

    #[test]
    fn format_detection() {
        assert!(looks_like_xml("  <metadata>…"));
        assert!(!looks_like_xml("species|condor|"));
        assert!(!looks_like_xml(""));
    }

    #[test]
    fn empty_document_gives_no_triplets() {
        assert!(parse_xml_triplets("<metadata></metadata>")
            .unwrap()
            .is_empty());
    }
}

//! Single sign-on authentication.
//!
//! The paper requires that "the DGA should be able to provide access to the
//! user to all the storage systems with a single sign on authentication".
//! SRB implements challenge–response: the server issues a nonce, the client
//! proves knowledge of the password-derived verifier by returning
//! `HMAC(verifier, nonce)`, and receives a *ticket* every server in the
//! federation honours. Tickets expire; expired tickets fail validation.

use srb_types::sync::{LockRank, RwLock};
use srb_types::{ct_eq, hmac_sha256, splitmix64, SimClock, SrbError, SrbResult, Timestamp, UserId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// An authenticated session, honoured federation-wide.
#[derive(Debug, Clone)]
pub struct Session {
    /// The authenticated user.
    pub user: UserId,
    /// Opaque ticket presented with each request.
    pub ticket: [u8; 32],
    /// Expiry (virtual time).
    pub expires: Timestamp,
}

/// Default session lifetime: 12 hours of virtual time.
pub const SESSION_TTL_SECS: u64 = 12 * 3600;

/// Ticket/challenge table shards. Every brokered request validates a
/// ticket, so the session table is the hottest lock in the core; shards
/// keep concurrent validations from contending.
const AUTH_SHARDS: usize = 16;

/// Expand the `n`-th draw of a splitmix64 stream to 32 bytes.
fn draw32(seed: u64, n: u64) -> [u8; 32] {
    let mut out = [0u8; 32];
    for (i, chunk) in out.chunks_exact_mut(8).enumerate() {
        chunk.copy_from_slice(&splitmix64(seed, n * 4 + i as u64).to_le_bytes());
    }
    out
}

type SessionShard = RwLock<HashMap<[u8; 32], Session>>;
type PendingShard = RwLock<HashMap<u64, [u8; 32]>>;

/// Challenge–response authenticator + session table.
///
/// One instance serves the whole federation (conceptually replicated to
/// every server; the paper's single sign-on). Nonces and tickets come
/// from counter-indexed splitmix64 streams — deterministic per seed and
/// lock-free, replacing the global RNG mutex — and the session/pending
/// tables are sharded so `validate` on different tickets never contends.
pub struct AuthService {
    clock: SimClock,
    seed: u64,
    sessions: Box<[SessionShard]>,
    pending: Box<[PendingShard]>,
    challenge_seq: AtomicU64,
    ticket_seq: AtomicU64,
    auth_failures: AtomicU64,
}

impl AuthService {
    /// New service. `seed` keeps experiments deterministic.
    pub fn new(clock: SimClock, seed: u64) -> Self {
        AuthService {
            clock,
            seed,
            sessions: (0..AUTH_SHARDS)
                .map(|_| {
                    RwLock::new(
                        LockRank::CoreState,
                        "core.auth.session_shard",
                        HashMap::new(),
                    )
                })
                .collect(),
            pending: (0..AUTH_SHARDS)
                .map(|_| {
                    RwLock::new(
                        LockRank::CoreState,
                        "core.auth.pending_shard",
                        HashMap::new(),
                    )
                })
                .collect(),
            challenge_seq: AtomicU64::new(1),
            ticket_seq: AtomicU64::new(0),
            auth_failures: AtomicU64::new(0),
        }
    }

    fn session_shard(&self, ticket: &[u8; 32]) -> &SessionShard {
        // Tickets are splitmix64 output: the first byte is uniform.
        &self.sessions[ticket[0] as usize % AUTH_SHARDS]
    }

    fn pending_shard(&self, challenge_id: u64) -> &PendingShard {
        &self.pending[(challenge_id as usize) % AUTH_SHARDS]
    }

    /// Step 1 (server): issue a challenge nonce. Returns (challenge id,
    /// nonce).
    pub fn challenge(&self) -> (u64, [u8; 32]) {
        let id = self.challenge_seq.fetch_add(1, Ordering::Relaxed);
        let nonce = draw32(self.seed ^ 0x006e_6f6e_6365, id);
        self.pending_shard(id).write().insert(id, nonce);
        (id, nonce)
    }

    /// Step 2 (client): compute the response to a nonce from the
    /// password-derived verifier.
    pub fn respond(verifier: &[u8; 32], nonce: &[u8; 32]) -> [u8; 32] {
        hmac_sha256(verifier, nonce)
    }

    /// Step 3 (server): verify the response against the catalog's stored
    /// verifier and mint a session ticket.
    pub fn verify(
        &self,
        challenge_id: u64,
        response: &[u8; 32],
        user: UserId,
        stored_verifier: &[u8; 32],
    ) -> SrbResult<Session> {
        let nonce = self
            .pending_shard(challenge_id)
            .write()
            .remove(&challenge_id)
            .ok_or_else(|| SrbError::AuthFailed("unknown or replayed challenge".into()))?;
        let expect = Self::respond(stored_verifier, &nonce);
        if !ct_eq(&expect, response) {
            self.auth_failures.fetch_add(1, Ordering::Relaxed);
            return Err(SrbError::AuthFailed("bad credentials".into()));
        }
        let ticket = draw32(
            self.seed ^ 0x7469_636b_6574,
            self.ticket_seq.fetch_add(1, Ordering::Relaxed),
        );
        let session = Session {
            user,
            ticket,
            expires: self.clock.now().plus_secs(SESSION_TTL_SECS),
        };
        self.session_shard(&ticket)
            .write()
            .insert(ticket, session.clone());
        Ok(session)
    }

    /// Validate a ticket (every brokered request does this).
    pub fn validate(&self, ticket: &[u8; 32]) -> SrbResult<UserId> {
        let g = self.session_shard(ticket).read();
        match g.get(ticket) {
            Some(s) if s.expires > self.clock.now() => Ok(s.user),
            Some(_) => Err(SrbError::AuthFailed("session expired".into())),
            None => Err(SrbError::AuthFailed("unknown ticket".into())),
        }
    }

    /// Explicitly end a session.
    pub fn logout(&self, ticket: &[u8; 32]) {
        self.session_shard(ticket).write().remove(ticket);
    }

    /// Failed authentication attempts (for the audit page).
    pub fn failure_count(&self) -> u64 {
        self.auth_failures.load(Ordering::Relaxed)
    }

    /// Live session count.
    pub fn session_count(&self) -> usize {
        self.sessions.iter().map(|s| s.read().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srb_types::SimClock;

    fn svc() -> (AuthService, SimClock) {
        let clock = SimClock::new();
        (AuthService::new(clock.clone(), 42), clock)
    }

    fn verifier(pw: &str) -> [u8; 32] {
        hmac_sha256(pw.as_bytes(), b"srb-verifier")
    }

    #[test]
    fn happy_path_handshake() {
        let (a, _) = svc();
        let v = verifier("secret");
        let (cid, nonce) = a.challenge();
        let resp = AuthService::respond(&v, &nonce);
        let session = a.verify(cid, &resp, UserId(1), &v).unwrap();
        assert_eq!(a.validate(&session.ticket).unwrap(), UserId(1));
        assert_eq!(a.session_count(), 1);
    }

    #[test]
    fn wrong_password_fails_and_counts() {
        let (a, _) = svc();
        let (cid, nonce) = a.challenge();
        let resp = AuthService::respond(&verifier("wrong"), &nonce);
        let err = a
            .verify(cid, &resp, UserId(1), &verifier("right"))
            .unwrap_err();
        assert!(matches!(err, SrbError::AuthFailed(_)));
        assert_eq!(a.failure_count(), 1);
    }

    #[test]
    fn challenges_are_single_use() {
        let (a, _) = svc();
        let v = verifier("pw");
        let (cid, nonce) = a.challenge();
        let resp = AuthService::respond(&v, &nonce);
        a.verify(cid, &resp, UserId(1), &v).unwrap();
        // Replaying the same challenge id must fail.
        assert!(a.verify(cid, &resp, UserId(1), &v).is_err());
    }

    #[test]
    fn sessions_expire() {
        let (a, clock) = svc();
        let v = verifier("pw");
        let (cid, nonce) = a.challenge();
        let session = a
            .verify(cid, &AuthService::respond(&v, &nonce), UserId(1), &v)
            .unwrap();
        assert!(a.validate(&session.ticket).is_ok());
        clock.advance((SESSION_TTL_SECS + 1) * 1_000_000_000);
        let err = a.validate(&session.ticket).unwrap_err();
        assert!(matches!(err, SrbError::AuthFailed(_)));
    }

    #[test]
    fn logout_invalidates() {
        let (a, _) = svc();
        let v = verifier("pw");
        let (cid, nonce) = a.challenge();
        let s = a
            .verify(cid, &AuthService::respond(&v, &nonce), UserId(1), &v)
            .unwrap();
        a.logout(&s.ticket);
        assert!(a.validate(&s.ticket).is_err());
        assert_eq!(a.session_count(), 0);
    }

    #[test]
    fn forged_ticket_rejected() {
        let (a, _) = svc();
        assert!(a.validate(&[7u8; 32]).is_err());
    }
}

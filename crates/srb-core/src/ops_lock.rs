//! Locks, pins, and checkout/checkin version control (paper §5,
//! "lock, pin, checkout").

use crate::conn::SrbConnection;
use srb_mcat::{AccessSpec, AuditAction, CheckoutState, LockKind, LockState, VersionRecord};
use srb_net::Receipt;
use srb_types::{sha256_hex, Permission, SrbError, SrbResult};

impl SrbConnection<'_> {
    // ---------------------------------------------------------------- lock --

    /// Lock an object for `ttl_secs`. A `Shared` lock blocks writes by
    /// others; an `Exclusive` lock blocks all interactions by others.
    pub fn lock(&self, path: &str, kind: LockKind, ttl_secs: u64) -> SrbResult<Receipt> {
        let user = self.check_session()?;
        let lp = self.parse(path)?;
        let receipt = self.mcat_rpc()?;
        let ds_id = self.grid.mcat.resolve_dataset(&lp)?;
        let ds = self.grid.mcat.datasets.resolve_links(ds_id)?;
        self.grid
            .mcat
            .require_dataset(Some(user), ds.id, Permission::Write)?;
        let now = self.now();
        self.grid.mcat.datasets.update(ds.id, |d| {
            if let Some(l) = d.effective_lock(now) {
                if l.holder != user {
                    return Err(SrbError::Locked(format!(
                        "dataset already locked by {}",
                        l.holder
                    )));
                }
            }
            d.lock = Some(LockState {
                kind,
                holder: user,
                expires: now.plus_secs(ttl_secs),
            });
            Ok(())
        })?;
        self.audit(AuditAction::LockOp, path, "lock");
        Ok(receipt)
    }

    /// Release a lock (holder only; expired locks may be cleared by
    /// anyone with write access).
    pub fn unlock(&self, path: &str) -> SrbResult<Receipt> {
        let user = self.check_session()?;
        let lp = self.parse(path)?;
        let receipt = self.mcat_rpc()?;
        let ds_id = self.grid.mcat.resolve_dataset(&lp)?;
        let ds = self.grid.mcat.datasets.resolve_links(ds_id)?;
        self.grid
            .mcat
            .require_dataset(Some(user), ds.id, Permission::Write)?;
        let now = self.now();
        self.grid
            .mcat
            .datasets
            .update(ds.id, |d| match d.effective_lock(now) {
                Some(l) if l.holder != user => {
                    Err(SrbError::Locked(format!("lock held by {}", l.holder)))
                }
                _ => {
                    d.lock = None;
                    Ok(())
                }
            })?;
        self.audit(AuditAction::LockOp, path, "unlock");
        Ok(receipt)
    }

    // ----------------------------------------------------------------- pin --

    /// Pin replica `repl_num` to its resource for `ttl_secs`: the object
    /// will not be purged from a cache resource while pinned.
    pub fn pin(&self, path: &str, repl_num: u32, ttl_secs: u64) -> SrbResult<Receipt> {
        let user = self.check_session()?;
        let lp = self.parse(path)?;
        let receipt = self.mcat_rpc()?;
        let ds_id = self.grid.mcat.resolve_dataset(&lp)?;
        let ds = self.grid.mcat.datasets.resolve_links(ds_id)?;
        self.grid
            .mcat
            .require_dataset(Some(user), ds.id, Permission::Write)?;
        let expiry = self.now().plus_secs(ttl_secs);
        let replica = ds
            .replicas
            .iter()
            .find(|r| r.repl_num == repl_num)
            .ok_or_else(|| SrbError::NotFound(format!("replica #{repl_num} of '{path}'")))?
            .clone();
        // Propagate to the cache driver when the replica lives on one.
        if let AccessSpec::Stored {
            resource,
            phys_path,
        } = &replica.spec
        {
            if let Some(cache) = self.grid.driver(*resource)?.as_cache() {
                cache.pin(phys_path, expiry)?;
            }
        }
        self.grid.mcat.datasets.update(ds.id, |d| {
            let r = d
                .replicas
                .iter_mut()
                .find(|r| r.repl_num == repl_num)
                .ok_or_else(|| SrbError::NotFound(format!("replica #{repl_num} of '{path}'")))?;
            r.pinned_until = Some(expiry);
            Ok(())
        })?;
        self.audit(AuditAction::LockOp, path, "pin");
        Ok(receipt)
    }

    /// Explicit unpin.
    pub fn unpin(&self, path: &str, repl_num: u32) -> SrbResult<Receipt> {
        let user = self.check_session()?;
        let lp = self.parse(path)?;
        let receipt = self.mcat_rpc()?;
        let ds_id = self.grid.mcat.resolve_dataset(&lp)?;
        let ds = self.grid.mcat.datasets.resolve_links(ds_id)?;
        self.grid
            .mcat
            .require_dataset(Some(user), ds.id, Permission::Write)?;
        let replica = ds
            .replicas
            .iter()
            .find(|r| r.repl_num == repl_num)
            .ok_or_else(|| SrbError::NotFound(format!("replica #{repl_num} of '{path}'")))?
            .clone();
        if let AccessSpec::Stored {
            resource,
            phys_path,
        } = &replica.spec
        {
            if let Some(cache) = self.grid.driver(*resource)?.as_cache() {
                let _ = cache.unpin(phys_path);
            }
        }
        self.grid.mcat.datasets.update(ds.id, |d| {
            let r = d
                .replicas
                .iter_mut()
                .find(|r| r.repl_num == repl_num)
                .ok_or_else(|| SrbError::NotFound(format!("replica #{repl_num} of '{path}'")))?;
            r.pinned_until = None;
            Ok(())
        })?;
        self.audit(AuditAction::LockOp, path, "unpin");
        Ok(receipt)
    }

    // ------------------------------------------------------------ versions --

    /// Check an object out: no one (including other sessions of the same
    /// user) may change it until checkin.
    pub fn checkout(&self, path: &str) -> SrbResult<Receipt> {
        let user = self.check_session()?;
        let lp = self.parse(path)?;
        let receipt = self.mcat_rpc()?;
        let ds_id = self.grid.mcat.resolve_dataset(&lp)?;
        let ds = self.grid.mcat.datasets.resolve_links(ds_id)?;
        self.grid
            .mcat
            .require_dataset(Some(user), ds.id, Permission::Write)?;
        let now = self.now();
        self.grid.mcat.datasets.update(ds.id, |d| {
            if let Some(c) = d.checkout {
                return Err(SrbError::Locked(format!(
                    "already checked out by {}",
                    c.holder
                )));
            }
            d.checkout = Some(CheckoutState {
                holder: user,
                at: now,
            });
            Ok(())
        })?;
        self.audit(AuditAction::LockOp, path, "checkout");
        Ok(receipt)
    }

    /// Check in new content: "the older version of the object is still
    /// maintained as an earlier version with a distinct version number."
    pub fn checkin(&self, path: &str, new_data: &[u8]) -> SrbResult<Receipt> {
        let user = self.check_session()?;
        let lp = self.parse(path)?;
        let mut receipt = self.mcat_rpc()?;
        let ds_id = self.grid.mcat.resolve_dataset(&lp)?;
        let ds = self.grid.mcat.datasets.resolve_links(ds_id)?;
        self.grid
            .mcat
            .require_dataset(Some(user), ds.id, Permission::Write)?;
        match ds.checkout {
            Some(c) if c.holder == user => {}
            Some(c) => return Err(SrbError::Locked(format!("checked out by {}", c.holder))),
            None => {
                return Err(SrbError::Invalid(
                    "checkin without a matching checkout".into(),
                ))
            }
        }
        // Preserve the current content as a version on the primary
        // replica's resource.
        let primary = ds
            .replicas
            .iter()
            .find(|r| r.spec.is_srb_controlled() && r.in_container.is_none())
            .ok_or_else(|| {
                SrbError::Unsupported("versioning requires an SRB-stored replica".into())
            })?
            .clone();
        let AccessSpec::Stored {
            resource,
            phys_path,
        } = &primary.spec
        else {
            unreachable!("filtered to Stored above");
        };
        let mut tmp = Receipt::free();
        let old_data = self.read_replica_bytes(&primary, &mut tmp)?;
        receipt.absorb(&tmp);
        let version = ds.current_version;
        let version_path = format!("{phys_path}.v{version}");
        let r = self.store_bytes_retry(*resource, &version_path, &old_data, false)?;
        receipt.absorb(&r);
        let now = self.now();
        let record = VersionRecord {
            version,
            resource: *resource,
            phys_path: version_path,
            size: old_data.len() as u64,
            by: user,
            at: now,
        };
        self.grid.mcat.datasets.update(ds.id, |d| {
            d.versions.push(record.clone());
            d.current_version += 1;
            d.checkout = None;
            Ok(())
        })?;
        // Write the new content through the normal synchronous-update path.
        let w = self.write(path, new_data)?;
        receipt.absorb(&w);
        self.audit(AuditAction::LockOp, path, "checkin");
        Ok(receipt)
    }

    /// Read a preserved earlier version.
    pub fn read_version(&self, path: &str, version: u32) -> SrbResult<(bytes::Bytes, Receipt)> {
        let user = self.check_session()?;
        let lp = self.parse(path)?;
        let mut receipt = self.mcat_rpc()?;
        let ds_id = self.grid.mcat.resolve_dataset(&lp)?;
        let ds = self.grid.mcat.datasets.resolve_links(ds_id)?;
        self.grid
            .mcat
            .require_dataset(Some(user), ds.id, Permission::Read)?;
        let v = ds
            .versions
            .iter()
            .find(|v| v.version == version)
            .ok_or_else(|| SrbError::NotFound(format!("version {version} of '{path}'")))?;
        let driver = self.grid.driver(v.resource)?;
        let (data, ns) = driver.driver().read(&v.phys_path)?;
        receipt.absorb(&Receipt::time(ns));
        receipt.absorb(&self.data_transfer(v.resource, data.len() as u64)?);
        // Integrity: the preserved copy must be exactly what was checked in.
        debug_assert_eq!(data.len() as u64, v.size);
        let _ = sha256_hex(&data);
        Ok((data, receipt))
    }

    /// List preserved versions (number, size, author).
    pub fn versions(&self, path: &str) -> SrbResult<Vec<(u32, u64, srb_types::UserId)>> {
        let user = self.check_session()?;
        let lp = self.parse(path)?;
        let ds_id = self.grid.mcat.resolve_dataset(&lp)?;
        let ds = self.grid.mcat.datasets.resolve_links(ds_id)?;
        self.grid
            .mcat
            .require_dataset(Some(user), ds.id, Permission::Read)?;
        Ok(ds
            .versions
            .iter()
            .map(|v| (v.version, v.size, v.by))
            .collect())
    }
}

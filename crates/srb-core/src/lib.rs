#![warn(missing_docs)]
//! The Storage Resource Broker.
//!
//! This crate is the paper's primary contribution: federated client–server
//! middleware that builds a logical name space over the heterogeneous
//! storage substrate (`srb-storage`), records every fact in the MCAT
//! (`srb-mcat`), and moves bytes across the simulated WAN (`srb-net`).
//!
//! The public API mirrors how SRB is used:
//!
//! 1. Describe a deployment with [`GridBuilder`]: sites, links, servers,
//!    resources, logical resources.
//! 2. [`SrbConnection::connect`] to *any* server with single sign-on.
//! 3. Ingest, register, replicate, copy, move, link, lock, pin, check out,
//!    annotate, attach metadata, and query — every operation returns a
//!    [`srb_net::Receipt`] with its simulated cost.
//!
//! ```
//! use srb_core::{GridBuilder, SrbConnection, IngestOptions};
//!
//! let mut gb = GridBuilder::new();
//! let sdsc = gb.site("sdsc");
//! let srv = gb.server("srb-sdsc", sdsc);
//! gb.fs_resource("unix-sdsc", srv);
//! let grid = gb.build();
//! grid.register_user("sekar", "sdsc", "secret").unwrap();
//!
//! let conn = SrbConnection::connect(&grid, srv, "sekar", "sdsc", "secret").unwrap();
//! conn.ingest("/home/sekar/hello.txt", b"hi", IngestOptions::to_resource("unix-sdsc")).unwrap();
//! let (data, _receipt) = conn.read("/home/sekar/hello.txt").unwrap();
//! assert_eq!(&data[..], b"hi");
//! ```

pub mod auth;
pub mod conn;
pub mod fanout;
pub mod grid;
pub mod obs;
pub mod ops_container;
pub mod ops_lock;
pub mod ops_maintenance;
pub mod ops_meta;
pub mod ops_write;
pub mod pool;
pub mod proxy;
pub mod replication;
pub mod state;
pub mod template;
pub mod tlang;
pub mod xmlmeta;
pub mod zone;

pub use auth::{AuthService, Session};
pub use conn::{ObjectContent, SrbConnection};
pub use fanout::{FanoutMode, RetryBudget};
pub use grid::{Grid, GridBuilder, SrbServer};
pub use obs::CoreObs;
pub use ops_maintenance::{ChecksumStatus, RepairOutcome, RepairReport};
pub use ops_write::{IngestOptions, RegisterSpec};
pub use pool::ConnPool;
pub use proxy::ProxyRegistry;
pub use replication::{OrderedReplicas, ReplicaPolicy};
pub use srb_net::{Admission, BreakerConfig, BreakerState, FaultMode, HealthRegistry, Receipt};
pub use template::render_template;
pub use tlang::TScript;
pub use zone::{
    FedConnection, Federation, PumpReport, SubscriptionStatus, Zone, ZoneHit, ZoneId,
    ZoneLinkStatus,
};

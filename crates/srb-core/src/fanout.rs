//! The replica fan-out engine: concurrent execution of multi-replica
//! storage legs.
//!
//! The paper moves data to logical resources as *synchronous replicas*;
//! the latency-critical step of every write-side operation is pushing the
//! same bytes to k independent storage systems. Those legs are mutually
//! independent — they touch disjoint drivers, charge disjoint load
//! counters, and perform no catalog mutation — so the engine runs them on
//! scoped worker threads and the caller commits all MCAT changes
//! afterwards, on its own thread, in leg order. That split is what makes
//! parallel and sequential execution produce byte-identical catalog state
//! (see `tests/fanout_oracle.rs`).
//!
//! Cost accounting follows the execution shape: sequential legs compose
//! with [`Receipt::absorb`] (durations add), parallel legs with
//! [`Receipt::join_parallel`] (overlapping durations take the max, byte
//! and message counters still add). Parallel composition models a fixed
//! number of [`VIRTUAL_LANES`] rather than the host's thread count, so
//! `sim_ns` is identical on every machine.

use crate::conn::SrbConnection;
use bytes::Bytes;
use srb_net::Receipt;
use srb_types::{ResourceId, SrbError, SrbResult};
use std::sync::atomic::{AtomicUsize, Ordering};

/// How a connection executes multi-replica storage legs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FanoutMode {
    /// Concurrent legs on scoped worker threads; costs max-compose
    /// across [`VIRTUAL_LANES`]. The default.
    #[default]
    Parallel,
    /// One leg after another on the caller thread; costs sum-compose.
    /// Kept as the measurable ablation (bench E6/E7).
    Sequential,
}

/// Number of concurrent transfer lanes the *cost model* assumes in
/// [`FanoutMode::Parallel`]. Fixed — deliberately independent of the
/// host's real core count — so simulated time is deterministic across
/// machines. Real execution may use fewer or more threads.
pub const VIRTUAL_LANES: usize = 8;

/// How hard a connection retries transient storage errors before giving
/// up on a replica (and, on the write side, marking its leg `Stale`).
///
/// Backoff is exponential with deterministic jitter: attempt `n` waits
/// `base_ns * multiplier^(n-1)` simulated nanoseconds, capped at
/// `max_backoff_ns`, then jittered into `[½·b, b]` by a splitmix64 draw
/// over `(jitter_seed, key, attempt)`. The wait is *charged to the leg's
/// receipt*, never slept — same-machine runs replay identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryBudget {
    /// Total attempts, including the first. `1` means no retries.
    pub max_attempts: u32,
    /// Backoff before the first retry, in simulated nanoseconds.
    pub base_ns: u64,
    /// Exponential growth factor between retries.
    pub multiplier: u32,
    /// Ceiling on a single backoff wait.
    pub max_backoff_ns: u64,
    /// Seed for the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryBudget {
    fn default() -> Self {
        RetryBudget {
            max_attempts: 4,
            base_ns: 1_000_000, // 1 simulated ms
            multiplier: 2,
            max_backoff_ns: 64_000_000,
            jitter_seed: 0x5eed_beef,
        }
    }
}

impl RetryBudget {
    /// No retries at all — the ablation arm (and the seed behaviour).
    pub fn none() -> Self {
        RetryBudget {
            max_attempts: 1,
            ..RetryBudget::default()
        }
    }

    /// The simulated backoff before retry number `attempt` (1-based: the
    /// wait after the first failed attempt has `attempt = 1`). `key`
    /// decorrelates streams of different legs/replicas.
    pub fn backoff_ns(&self, key: u64, attempt: u32) -> u64 {
        let exp = (self.multiplier as u64)
            .saturating_pow(attempt.saturating_sub(1))
            .max(1);
        let raw = self.base_ns.saturating_mul(exp).min(self.max_backoff_ns);
        // Deterministic jitter into [raw/2, raw]: splitmix64 over the
        // (seed, key, attempt) triple.
        let mut z = self
            .jitter_seed
            .wrapping_add(key.wrapping_mul(0x9e3779b97f4a7c15))
            .wrapping_add(attempt as u64);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^= z >> 31;
        let half = raw / 2;
        half + if half == 0 { 0 } else { z % (raw - half + 1) }
    }
}

/// Upper bound on real worker threads per fan-out call.
const MAX_WORKERS: usize = 16;

/// Run `n` independent legs under `mode`, returning their results in leg
/// order regardless of completion order. Legs must not touch the MCAT:
/// catalog commits belong to the caller, after the join.
pub(crate) fn run_legs<R, F>(mode: FanoutMode, n: usize, leg: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = match mode {
        FanoutMode::Sequential => 1,
        FanoutMode::Parallel => std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(MAX_WORKERS)
            .min(n),
    };
    if workers <= 1 || n <= 1 {
        return (0..n).map(leg).collect();
    }
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        mine.push((i, leg(i)));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    let mut flat: Vec<(usize, R)> = per_worker.into_iter().flatten().collect();
    flat.sort_by_key(|(i, _)| *i);
    flat.into_iter().map(|(_, r)| r).collect()
}

/// Compose per-leg receipts according to the execution shape: sequential
/// legs sum; parallel legs are dealt round-robin onto [`VIRTUAL_LANES`]
/// (summing within a lane) and the lanes max-compose. With at most
/// `VIRTUAL_LANES` legs — every replica fan-out in practice — this reduces
/// to an exact max over the legs.
#[cfg(test)]
pub(crate) fn compose(mode: FanoutMode, legs: &[Receipt]) -> Receipt {
    compose_with_wait(mode, legs).0
}

/// [`compose`], additionally reporting the total simulated time legs
/// spent queued behind earlier work before their own transfer began:
/// under [`FanoutMode::Sequential`] every leg waits for all of its
/// predecessors; under [`FanoutMode::Parallel`] a leg waits only for the
/// work already dealt onto its lane (zero while legs ≤ lanes). The
/// `fanout.queue_wait_ns` histogram observes this per fan-out.
pub(crate) fn compose_with_wait(mode: FanoutMode, legs: &[Receipt]) -> (Receipt, u64) {
    match mode {
        FanoutMode::Sequential => {
            let mut acc = Receipt::free();
            let mut wait = 0u64;
            for r in legs {
                wait += acc.sim_ns;
                acc.absorb(r);
            }
            (acc, wait)
        }
        FanoutMode::Parallel => {
            let lanes = legs.len().clamp(1, VIRTUAL_LANES);
            let mut lane_cost = vec![Receipt::free(); lanes];
            let mut wait = 0u64;
            for (i, r) in legs.iter().enumerate() {
                wait += lane_cost[i % lanes].sim_ns;
                lane_cost[i % lanes].absorb(r);
            }
            let mut it = lane_cost.into_iter();
            let first = it.next().unwrap_or_default();
            let receipt = it.fold(first, |mut acc, r| {
                acc.join_parallel(&r);
                acc
            });
            (receipt, wait)
        }
    }
}

/// One storage leg: push the shared payload to `resource` at `phys_path`.
#[derive(Debug, Clone)]
pub(crate) struct StoreLeg {
    /// Target physical resource.
    pub resource: ResourceId,
    /// Physical path within the resource.
    pub phys_path: String,
    /// Overwrite (`write`) vs create-new (`ingest`/`replicate`).
    pub overwrite: bool,
}

/// What a fan-out produced: per-leg results in leg order, plus the
/// composed cost of the legs that succeeded.
pub(crate) struct FanoutOutcome {
    /// Per-leg result, in the order the legs were given.
    pub results: Vec<SrbResult<Receipt>>,
    /// Cost of the successful legs, composed for the mode that ran them.
    pub receipt: Receipt,
}

impl FanoutOutcome {
    /// Number of legs that stored their bytes.
    pub fn successes(&self) -> usize {
        self.results.iter().filter(|r| r.is_ok()).count()
    }

    /// First non-retryable error, in leg order.
    pub fn first_fatal(&self) -> Option<SrbError> {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().err())
            .find(|e| !e.is_retryable())
            .cloned()
    }

    /// First error of any kind, in leg order.
    pub fn first_err(&self) -> Option<SrbError> {
        self.results
            .iter()
            .filter_map(|r| r.as_ref().err())
            .next()
            .cloned()
    }
}

impl SrbConnection<'_> {
    /// Run one logical storage operation against `resource` under the
    /// connection's [`RetryBudget`] and the resource's circuit breaker.
    /// An open breaker fast-fails the whole operation up front (so
    /// failover can move on without hammering a sick resource); transient
    /// errors ([`SrbError::is_transient`]) are retried with exponential
    /// backoff + deterministic jitter, the waits charged to `receipt`
    /// (never slept). The breaker records one *post-retry* outcome: the
    /// retry layer absorbs transient noise, so only failures the budget
    /// could not fix count against the resource's error window.
    pub(crate) fn retry_storage<T>(
        &self,
        resource: ResourceId,
        receipt: &mut Receipt,
        mut attempt_fn: impl FnMut(&mut Receipt) -> SrbResult<T>,
    ) -> SrbResult<T> {
        if self.grid.health.admit(resource) == srb_net::Admission::FastFail {
            return Err(SrbError::ResourceUnavailable(format!(
                "resource {resource} circuit breaker open"
            )));
        }
        let budget = self.retry_budget();
        let mut attempt: u32 = 1;
        let outcome = loop {
            match attempt_fn(receipt) {
                Ok(v) => break Ok(v),
                Err(e) if e.is_transient() && attempt < budget.max_attempts => {
                    let wait = budget.backoff_ns(resource.raw(), attempt);
                    receipt.absorb(&Receipt::time(wait));
                    receipt.retries += 1;
                    if let Some(obs) = self.grid.core_obs() {
                        obs.retries.inc();
                        obs.backoff_ns.add(wait);
                    }
                    attempt += 1;
                }
                Err(e) => break Err(e),
            }
        };
        // Only resource-indicting failures count against the breaker; a
        // NotFound or permission error proves the resource answered.
        self.grid.health.record(
            resource,
            match &outcome {
                Ok(_) => true,
                Err(e) => !e.is_retryable(),
            },
        );
        outcome
    }

    /// [`store_bytes`](Self::store_bytes) under the retry budget and the
    /// breaker — the resilient form every writer should use.
    pub(crate) fn store_bytes_retry(
        &self,
        resource: ResourceId,
        phys_path: &str,
        data: &[u8],
        overwrite: bool,
    ) -> SrbResult<Receipt> {
        let mut receipt = Receipt::free();
        self.retry_storage(resource, &mut receipt, |rec| {
            let r = self.store_bytes(resource, phys_path, data, overwrite)?;
            rec.absorb(&r);
            Ok(())
        })?;
        Ok(receipt)
    }

    /// Execute storage legs under the connection's [`FanoutMode`]: every
    /// leg pushes the *same* shared buffer (zero payload clones), results
    /// come back in leg order, and the composed receipt reflects the
    /// execution shape. Each leg retries transient storage errors within
    /// the connection's [`RetryBudget`]; only an exhausted leg reports an
    /// error (which the committing caller records as `Stale`). No catalog
    /// state is touched.
    pub(crate) fn store_fanout(&self, legs: &[StoreLeg], data: &Bytes) -> FanoutOutcome {
        let mode = self.fanout_mode();
        let results = run_legs(mode, legs.len(), |i| {
            let leg = &legs[i];
            self.store_bytes_retry(leg.resource, &leg.phys_path, data, leg.overwrite)
        });
        let ok: Vec<Receipt> = results.iter().filter_map(|r| r.clone().ok()).collect();
        let (receipt, wait_ns) = compose_with_wait(mode, &ok);
        if let Some(obs) = self.grid.core_obs() {
            obs.legs_dispatched.add(legs.len() as u64);
            obs.legs_failed.add((results.len() - ok.len()) as u64);
            obs.queue_wait.observe(wait_ns);
        }
        FanoutOutcome { receipt, results }
    }

    /// Best-effort removal of bytes stored by legs that succeeded, used
    /// when a fatal leg error aborts an operation before any catalog row
    /// exists to account for them.
    pub(crate) fn undo_stored_legs(&self, legs: &[StoreLeg], results: &[SrbResult<Receipt>]) {
        for (leg, result) in legs.iter().zip(results) {
            if result.is_ok() {
                if let Ok(driver) = self.grid.driver(leg.resource) {
                    let _ = driver.driver().delete(&leg.phys_path);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_legs_preserves_order_both_modes() {
        for mode in [FanoutMode::Parallel, FanoutMode::Sequential] {
            let out = run_legs(mode, 100, |i| i * 2);
            assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn compose_sequential_sums() {
        let legs: Vec<Receipt> = (1..=4).map(|i| Receipt::time(i * 100)).collect();
        let r = compose(FanoutMode::Sequential, &legs);
        assert_eq!(r.sim_ns, 1000);
    }

    #[test]
    fn compose_parallel_is_max_up_to_lane_count() {
        let mut legs: Vec<Receipt> = (1..=4).map(|i| Receipt::time(i * 100)).collect();
        for (i, l) in legs.iter_mut().enumerate() {
            l.bytes = 10 * (i as u64 + 1);
        }
        let r = compose(FanoutMode::Parallel, &legs);
        assert_eq!(r.sim_ns, 400); // max of the legs
        assert_eq!(r.bytes, 100); // bytes still add
    }

    #[test]
    fn compose_parallel_beyond_lanes_queues_on_lanes() {
        // 16 equal legs over 8 lanes: two per lane, so 2× one leg's time.
        let legs = vec![Receipt::time(100); 16];
        let r = compose(FanoutMode::Parallel, &legs);
        assert_eq!(r.sim_ns, 200);
    }

    #[test]
    fn compose_wait_sequential_accumulates_predecessors() {
        let legs: Vec<Receipt> = (1..=4).map(|i| Receipt::time(i * 100)).collect();
        let (_, wait) = compose_with_wait(FanoutMode::Sequential, &legs);
        // Leg waits: 0, 100, 300, 600.
        assert_eq!(wait, 1000);
    }

    #[test]
    fn compose_wait_parallel_zero_until_lanes_full() {
        let legs = vec![Receipt::time(100); VIRTUAL_LANES];
        let (_, wait) = compose_with_wait(FanoutMode::Parallel, &legs);
        assert_eq!(wait, 0);
        // One extra leg queues behind lane 0's first leg.
        let legs = vec![Receipt::time(100); VIRTUAL_LANES + 1];
        let (_, wait) = compose_with_wait(FanoutMode::Parallel, &legs);
        assert_eq!(wait, 100);
    }

    #[test]
    fn compose_empty_is_free() {
        assert_eq!(compose(FanoutMode::Parallel, &[]), Receipt::free());
        assert_eq!(compose(FanoutMode::Sequential, &[]), Receipt::free());
    }
}

//! Grid assembly: sites, servers, resources, and the shared services.
//!
//! A [`Grid`] is one SRB deployment — the counterpart of the paper's
//! federation of SRB servers at SDSC, CalTech, NCSA… Each [`SrbServer`]
//! "manages/brokers a set of storage resources" at one site; one server
//! hosts the MCAT. [`GridBuilder`] wires it all together.

use crate::auth::AuthService;
use crate::obs::CoreObs;
use crate::pool::ConnPool;
use crate::proxy::ProxyRegistry;
use srb_mcat::Mcat;
use srb_net::{
    BreakerConfig, FaultMode, FaultPlan, HealthRegistry, LinkSpec, LoadTracker, Network,
    NetworkBuilder,
};
use srb_obs::{MetricsSnapshot, Obs, ResourceLabels};
use srb_storage::{
    ArchiveDriver, CacheDriver, DbDriver, DriverKind, FsDriver, StorageDriver, UrlDriver,
};
use srb_types::sync::{LockRank, RwLock};
use srb_types::{
    LogicalResourceId, ResourceId, ServerId, SimClock, SiteId, SrbError, SrbResult, UserId,
};
use std::collections::HashMap;
use std::sync::Arc;

/// A storage driver instance bound to a registered resource.
pub enum ResourceDriver {
    /// File system.
    Fs(FsDriver),
    /// Tape archive.
    Archive(ArchiveDriver),
    /// Disk cache.
    Cache(CacheDriver),
    /// Relational database.
    Db(DbDriver),
}

impl ResourceDriver {
    /// The uniform driver API.
    pub fn driver(&self) -> &dyn StorageDriver {
        match self {
            ResourceDriver::Fs(d) => d,
            ResourceDriver::Archive(d) => d,
            ResourceDriver::Cache(d) => d,
            ResourceDriver::Db(d) => d,
        }
    }

    /// Downcast to the database driver (registered SQL objects).
    pub fn as_db(&self) -> Option<&DbDriver> {
        match self {
            ResourceDriver::Db(d) => Some(d),
            _ => None,
        }
    }

    /// Downcast to the archive driver (staging experiments).
    pub fn as_archive(&self) -> Option<&ArchiveDriver> {
        match self {
            ResourceDriver::Archive(d) => Some(d),
            _ => None,
        }
    }

    /// Downcast to the cache driver (pinning).
    pub fn as_cache(&self) -> Option<&CacheDriver> {
        match self {
            ResourceDriver::Cache(d) => Some(d),
            _ => None,
        }
    }

    /// Downcast to the file-system driver (shadow directories).
    pub fn as_fs(&self) -> Option<&FsDriver> {
        match self {
            ResourceDriver::Fs(d) => Some(d),
            _ => None,
        }
    }

    /// The driver family.
    pub fn kind(&self) -> DriverKind {
        self.driver().kind()
    }
}

/// One SRB server in the federation.
pub struct SrbServer {
    /// Federation-unique id.
    pub id: ServerId,
    /// Display name, e.g. `srb-sdsc`.
    pub name: String,
    /// The site this server runs at.
    pub site: SiteId,
    /// Proxy command/function bin directory.
    pub proxies: ProxyRegistry,
    resources: RwLock<HashMap<ResourceId, Arc<ResourceDriver>>>,
}

impl SrbServer {
    /// The driver for a locally brokered resource.
    pub fn driver(&self, r: ResourceId) -> SrbResult<Arc<ResourceDriver>> {
        self.resources
            .read()
            .get(&r)
            .cloned()
            .ok_or_else(|| SrbError::NotFound(format!("resource {r} not on server {}", self.name)))
    }

    /// Ids of locally brokered resources.
    pub fn resource_ids(&self) -> Vec<ResourceId> {
        let mut v: Vec<ResourceId> = self.resources.read().keys().copied().collect();
        v.sort();
        v
    }
}

/// Specification of a resource to create at build time.
enum ResourceSpec {
    Fs,
    FsCustom { cost: srb_storage::CostModel },
    Archive,
    Cache { capacity: u64 },
    Db,
}

/// Builder for a [`Grid`].
pub struct GridBuilder {
    clock: SimClock,
    net: NetworkBuilder,
    servers: Vec<(String, SiteId)>,
    resources: Vec<(String, usize, ResourceSpec)>,
    logical: Vec<(String, Vec<String>)>,
    mcat_server: usize,
    admin_password: String,
    auth_seed: u64,
    breakers: BreakerConfig,
    observability: bool,
}

impl Default for GridBuilder {
    fn default() -> Self {
        GridBuilder::new()
    }
}

impl GridBuilder {
    /// Start an empty deployment.
    pub fn new() -> Self {
        GridBuilder {
            clock: SimClock::new(),
            net: NetworkBuilder::new(),
            servers: Vec::new(),
            resources: Vec::new(),
            logical: Vec::new(),
            mcat_server: 0,
            admin_password: "srb-admin".to_string(),
            auth_seed: 0x5eed,
            breakers: BreakerConfig::default(),
            observability: true,
        }
    }

    /// Enable or disable observability (metrics, tracing, slow-op log).
    /// On by default; the overhead benchmark builds a disabled twin to
    /// measure instrumentation cost pairwise in one process.
    pub fn observability(&mut self, on: bool) -> &mut Self {
        self.observability = on;
        self
    }

    /// Drive this grid from an externally owned clock instead of a fresh
    /// one. A federation passes the same `SimClock` to every member zone so
    /// cross-zone costs (link transfers, replication lag) advance one
    /// shared timeline.
    pub fn clock(&mut self, clock: SimClock) -> &mut Self {
        self.clock = clock;
        self
    }

    /// Configure (or disable, via [`BreakerConfig::disabled`]) the
    /// per-resource circuit breakers.
    pub fn breaker_config(&mut self, config: BreakerConfig) -> &mut Self {
        self.breakers = config;
        self
    }

    /// Register a site.
    pub fn site(&mut self, name: &str) -> SiteId {
        self.net.site(name)
    }

    /// Add a symmetric network link.
    pub fn link(&mut self, a: SiteId, b: SiteId, spec: LinkSpec) -> &mut Self {
        self.net.link(a, b, spec);
        self
    }

    /// Fully connect sites lacking explicit links.
    pub fn default_link(&mut self, spec: LinkSpec) -> &mut Self {
        self.net.default_link(spec);
        self
    }

    /// Add a server at a site. The first server hosts the MCAT unless
    /// [`GridBuilder::mcat_at`] says otherwise.
    pub fn server(&mut self, name: &str, site: SiteId) -> ServerId {
        let id = ServerId(self.servers.len() as u64);
        self.servers.push((name.to_string(), site));
        id
    }

    /// Choose which server hosts the MCAT.
    pub fn mcat_at(&mut self, server: ServerId) -> &mut Self {
        self.mcat_server = server.raw() as usize;
        self
    }

    /// Set the bootstrap admin password.
    pub fn admin_password(&mut self, pw: &str) -> &mut Self {
        self.admin_password = pw.to_string();
        self
    }

    /// Add a file-system resource brokered by `server`.
    pub fn fs_resource(&mut self, name: &str, server: ServerId) -> &mut Self {
        self.resources
            .push((name.to_string(), server.raw() as usize, ResourceSpec::Fs));
        self
    }

    /// Add a file-system resource with an explicit cost model — for
    /// modelling heterogeneous media (older disks, NFS mounts, …).
    pub fn fs_resource_with_cost(
        &mut self,
        name: &str,
        server: ServerId,
        cost: srb_storage::CostModel,
    ) -> &mut Self {
        self.resources.push((
            name.to_string(),
            server.raw() as usize,
            ResourceSpec::FsCustom { cost },
        ));
        self
    }

    /// Add a tape-archive resource.
    pub fn archive_resource(&mut self, name: &str, server: ServerId) -> &mut Self {
        self.resources.push((
            name.to_string(),
            server.raw() as usize,
            ResourceSpec::Archive,
        ));
        self
    }

    /// Add a disk-cache resource with a capacity in bytes.
    pub fn cache_resource(&mut self, name: &str, server: ServerId, capacity: u64) -> &mut Self {
        self.resources.push((
            name.to_string(),
            server.raw() as usize,
            ResourceSpec::Cache { capacity },
        ));
        self
    }

    /// Add a database resource.
    pub fn db_resource(&mut self, name: &str, server: ServerId) -> &mut Self {
        self.resources
            .push((name.to_string(), server.raw() as usize, ResourceSpec::Db));
        self
    }

    /// Declare a logical resource over named physical members.
    pub fn logical_resource(&mut self, name: &str, members: &[&str]) -> &mut Self {
        self.logical.push((
            name.to_string(),
            members.iter().map(|s| s.to_string()).collect(),
        ));
        self
    }

    /// Assemble the grid, panicking on an invalid specification. Most
    /// callers construct grids from literals where a specification error
    /// is a programming bug; fallible assembly (config files, user input)
    /// should use [`GridBuilder::try_build`].
    pub fn build(self) -> Grid {
        match self.try_build() {
            Ok(grid) => grid,
            Err(e) => panic!("invalid grid specification: {e}"),
        }
    }

    /// Assemble the grid, reporting specification errors instead of
    /// panicking: duplicate resource names, resources on undeclared
    /// servers, logical resources over undeclared members.
    pub fn try_build(self) -> SrbResult<Grid> {
        if self.servers.is_empty() {
            return Err(SrbError::Invalid("a grid needs at least one server".into()));
        }
        let clock = self.clock;
        let network = self.net.build();
        let mcat = Mcat::new(clock.clone(), &self.admin_password);
        let auth = AuthService::new(clock.clone(), self.auth_seed);

        let mut servers = HashMap::new();
        for (i, (name, site)) in self.servers.iter().enumerate() {
            servers.insert(
                ServerId(i as u64),
                SrbServer {
                    id: ServerId(i as u64),
                    name: name.clone(),
                    site: *site,
                    proxies: ProxyRegistry::new(name),
                    resources: RwLock::new(
                        LockRank::CoreState,
                        "core.server.resources",
                        HashMap::new(),
                    ),
                },
            );
        }

        let mut resource_home = HashMap::new();
        let mut resource_names: HashMap<ResourceId, String> = HashMap::new();
        for (name, server_idx, spec) in self.resources {
            let server = servers.get(&ServerId(server_idx as u64)).ok_or_else(|| {
                SrbError::Invalid(format!(
                    "resource '{name}' references undeclared server #{server_idx}"
                ))
            })?;
            let (kind, driver) = match spec {
                ResourceSpec::Fs => (
                    DriverKind::FileSystem,
                    ResourceDriver::Fs(FsDriver::new(clock.clone())),
                ),
                ResourceSpec::FsCustom { cost } => (
                    DriverKind::FileSystem,
                    ResourceDriver::Fs(FsDriver::with_cost(clock.clone(), cost)),
                ),
                ResourceSpec::Archive => (
                    DriverKind::Archive,
                    ResourceDriver::Archive(ArchiveDriver::new(clock.clone())),
                ),
                ResourceSpec::Cache { capacity } => (
                    DriverKind::Cache,
                    ResourceDriver::Cache(CacheDriver::new(clock.clone(), capacity)),
                ),
                ResourceSpec::Db => (
                    DriverKind::Database,
                    ResourceDriver::Db(DbDriver::new(clock.clone())),
                ),
            };
            let rid = mcat
                .resources
                .register(&mcat.ids, &name, kind, server.site)?;
            server.resources.write().insert(rid, Arc::new(driver));
            resource_home.insert(rid, server.id);
            resource_names.insert(rid, name);
        }

        for (name, members) in self.logical {
            let ids: Vec<ResourceId> = members
                .iter()
                .map(|m| {
                    mcat.resources.find(m).map(|r| r.id).ok_or_else(|| {
                        SrbError::Invalid(format!(
                            "logical resource '{name}' member '{m}' not declared"
                        ))
                    })
                })
                .collect::<SrbResult<_>>()?;
            mcat.resources.create_logical(&mcat.ids, &name, &ids)?;
        }

        let mut health = HealthRegistry::new(clock.clone(), self.breakers);
        let mut faults = FaultPlan::new();
        let mut mcat = mcat;
        let obs = if self.observability {
            let obs = Obs::new(clock.clone());
            let labels = ResourceLabels::new(resource_names);
            health = health.with_metrics(obs.metrics.clone(), labels.clone());
            faults = faults.with_metrics(obs.metrics.clone(), labels);
            mcat = mcat.with_metrics(&obs.metrics);
            Some(CoreObs::new(obs))
        } else {
            None
        };

        Ok(Grid {
            health,
            clock,
            network,
            faults,
            load: LoadTracker::new(),
            mcat,
            auth,
            pool: ConnPool::new(),
            web: UrlDriver::new(),
            servers,
            resource_home: RwLock::new(LockRank::CoreState, "core.resource_home", resource_home),
            mcat_server: ServerId(self.mcat_server as u64),
            obs,
        })
    }
}

/// One complete SRB deployment.
pub struct Grid {
    /// The shared virtual clock.
    pub clock: SimClock,
    /// The simulated WAN.
    pub network: Network,
    /// Failure-injection switchboard.
    pub faults: FaultPlan,
    /// Per-resource circuit breakers (the health engine).
    pub health: HealthRegistry,
    /// Per-resource load accounting.
    pub load: LoadTracker,
    /// The metadata catalog.
    pub mcat: Mcat,
    /// Federation-wide authenticator.
    pub auth: AuthService,
    /// Cached per-user auth state for pooled connects.
    pub pool: ConnPool,
    /// The simulated web (registered URLs live here).
    pub web: UrlDriver,
    servers: HashMap<ServerId, SrbServer>,
    resource_home: RwLock<HashMap<ResourceId, ServerId>>,
    mcat_server: ServerId,
    obs: Option<CoreObs>,
}

impl Grid {
    /// The server hosting the MCAT.
    pub fn mcat_server(&self) -> ServerId {
        self.mcat_server
    }

    /// The observability domain, when enabled (the default).
    pub fn obs(&self) -> Option<&Obs> {
        self.obs.as_ref().map(|c| &c.obs)
    }

    /// The broker's cached metric handles, when observability is enabled.
    pub(crate) fn core_obs(&self) -> Option<&CoreObs> {
        self.obs.as_ref()
    }

    /// Deterministic snapshot of every metric plus the slow-op log.
    /// Returns an empty snapshot when observability is disabled, so
    /// callers need not branch.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.obs
            .as_ref()
            .map(|c| c.obs.snapshot())
            .unwrap_or_default()
    }

    /// Enable write-ahead durability on the catalog: every MCAT mutation
    /// is redo-logged to `device` and group-committed; checkpoints land on
    /// the broker's audit path per `config`. Durability cost shows up in
    /// op receipts and, when observability is on, under the `wal.*`
    /// metrics.
    pub fn enable_durability(
        &self,
        device: Arc<srb_storage::LogDevice>,
        config: srb_mcat::WalConfig,
    ) -> SrbResult<()> {
        self.mcat
            .enable_wal(device, config, self.obs().map(|o| &o.metrics))
    }

    /// Rebuild the catalog of this (freshly built, same-topology) grid
    /// from a crashed deployment's log device: redo recovery over the
    /// latest checkpoint. Resources are verified by name/id/kind as in
    /// [`Grid::restore_state`]. Only the catalog is recovered — the WAL
    /// does not carry physical bytes; pair with [`Grid::restore_state`]
    /// (or replica resync) for the data itself.
    pub fn recover_catalog(
        &mut self,
        device: Arc<srb_storage::LogDevice>,
        config: srb_mcat::WalConfig,
    ) -> SrbResult<srb_mcat::RecoveryReport> {
        let (mcat, report) = Mcat::recover(
            self.clock.clone(),
            device,
            config,
            self.obs().map(|o| &o.metrics),
        )?;
        for r in mcat.resources.list() {
            let local = self.mcat.resources.find(&r.name).ok_or_else(|| {
                SrbError::Invalid(format!(
                    "grid topology lacks resource '{}' required by the recovered catalog",
                    r.name
                ))
            })?;
            if local.id != r.id || local.kind != r.kind {
                return Err(SrbError::Invalid(format!(
                    "resource '{}' differs between topology and recovered catalog \
                     (declare resources in the same order)",
                    r.name
                )));
            }
        }
        // Re-wire catalog metrics as the builder did, so query/scan
        // counters keep flowing after the swap.
        let mcat = match self.obs() {
            Some(o) => mcat.with_metrics(&o.metrics),
            None => mcat,
        };
        self.mcat = mcat;
        Ok(report)
    }

    /// Look up a server.
    pub fn server(&self, id: ServerId) -> SrbResult<&SrbServer> {
        self.servers
            .get(&id)
            .ok_or_else(|| SrbError::NotFound(format!("server {id}")))
    }

    /// All servers, sorted by id.
    pub fn servers(&self) -> Vec<&SrbServer> {
        let mut v: Vec<&SrbServer> = self.servers.values().collect();
        v.sort_by_key(|s| s.id);
        v
    }

    /// Which server brokers a resource.
    pub fn server_for_resource(&self, r: ResourceId) -> SrbResult<ServerId> {
        self.resource_home
            .read()
            .get(&r)
            .copied()
            .ok_or_else(|| SrbError::NotFound(format!("no server brokers resource {r}")))
    }

    /// The driver instance for a resource, wherever it lives.
    pub fn driver(&self, r: ResourceId) -> SrbResult<Arc<ResourceDriver>> {
        let home = self.server_for_resource(r)?;
        self.server(home)?.driver(r)
    }

    /// The site a resource lives at.
    pub fn site_of_resource(&self, r: ResourceId) -> SrbResult<SiteId> {
        Ok(self.mcat.resources.get(r)?.site)
    }

    /// Convenience: register a normal (non-admin) user and create their
    /// home collection `/home/<name>` (as SRB does).
    pub fn register_user(&self, name: &str, domain: &str, password: &str) -> SrbResult<UserId> {
        let user = self
            .mcat
            .users
            .register(&self.mcat.ids, name, domain, password, false)?;
        let root = self.mcat.collections.root();
        let home_path = srb_types::LogicalPath::parse("/home")?;
        let home = match self.mcat.collections.resolve(&home_path) {
            Ok(id) => id,
            Err(_) => self.mcat.collections.create(
                &self.mcat.ids,
                root,
                "home",
                self.mcat.admin(),
                self.clock.now(),
            )?,
        };
        self.mcat
            .collections
            .create(&self.mcat.ids, home, name, user, self.clock.now())?;
        Ok(user)
    }

    /// Convenience: resolve a resource name to its id.
    pub fn resource_id(&self, name: &str) -> SrbResult<ResourceId> {
        self.mcat
            .resources
            .find(name)
            .map(|r| r.id)
            .ok_or_else(|| SrbError::NotFound(format!("resource '{name}'")))
    }

    /// Convenience: resolve a logical resource name.
    pub fn logical_resource_id(&self, name: &str) -> SrbResult<LogicalResourceId> {
        self.mcat
            .resources
            .find_logical(name)
            .map(|r| r.id)
            .ok_or_else(|| SrbError::NotFound(format!("logical resource '{name}'")))
    }

    /// Fail a resource by name (experiments).
    pub fn fail_resource(&self, name: &str) -> SrbResult<()> {
        self.faults.fail_resource(self.resource_id(name)?);
        Ok(())
    }

    /// Restore a resource by name.
    pub fn restore_resource(&self, name: &str) -> SrbResult<()> {
        self.faults.restore_resource(self.resource_id(name)?);
        Ok(())
    }

    /// Install an arbitrary fault mode on a resource by name.
    pub fn set_fault_mode(&self, name: &str, mode: FaultMode) -> SrbResult<()> {
        self.faults.set_mode(self.resource_id(name)?, mode);
        Ok(())
    }

    /// Make a resource flaky: each access independently times out with
    /// probability `p`, on a seeded (replayable) schedule.
    pub fn flaky_resource(&self, name: &str, p: f64, seed: u64) -> SrbResult<()> {
        self.set_fault_mode(name, FaultMode::FailWithProb(p, seed))
    }

    /// Is the named resource currently reachable?
    pub fn resource_is_up(&self, r: ResourceId) -> bool {
        match self.site_of_resource(r) {
            Ok(site) => self.faults.is_up(r, site),
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_grid() -> (Grid, ServerId, ServerId) {
        let mut gb = GridBuilder::new();
        let sdsc = gb.site("sdsc");
        let caltech = gb.site("caltech");
        gb.link(sdsc, caltech, LinkSpec::wan());
        let s1 = gb.server("srb-sdsc", sdsc);
        let s2 = gb.server("srb-caltech", caltech);
        gb.fs_resource("unix-sdsc", s1)
            .archive_resource("hpss-caltech", s2)
            .cache_resource("cache-sdsc", s1, 1 << 20)
            .db_resource("oracle-dlib", s2)
            .logical_resource("logrsrc1", &["unix-sdsc", "hpss-caltech"]);
        (gb.build(), s1, s2)
    }

    #[test]
    fn build_registers_everything() {
        let (g, s1, s2) = demo_grid();
        assert_eq!(g.servers().len(), 2);
        assert_eq!(g.mcat_server(), s1);
        assert_eq!(g.mcat.resources.list().len(), 4);
        assert_eq!(g.mcat.resources.list_logical().len(), 1);
        let unix = g.resource_id("unix-sdsc").unwrap();
        assert_eq!(g.server_for_resource(unix).unwrap(), s1);
        let hpss = g.resource_id("hpss-caltech").unwrap();
        assert_eq!(g.server_for_resource(hpss).unwrap(), s2);
        assert!(g.resource_id("missing").is_err());
    }

    #[test]
    fn drivers_match_declared_kinds() {
        let (g, ..) = demo_grid();
        let unix = g.resource_id("unix-sdsc").unwrap();
        assert_eq!(g.driver(unix).unwrap().kind(), DriverKind::FileSystem);
        assert!(g.driver(unix).unwrap().as_fs().is_some());
        let hpss = g.resource_id("hpss-caltech").unwrap();
        assert!(g.driver(hpss).unwrap().as_archive().is_some());
        let cache = g.resource_id("cache-sdsc").unwrap();
        assert!(g.driver(cache).unwrap().as_cache().is_some());
        let db = g.resource_id("oracle-dlib").unwrap();
        assert!(g.driver(db).unwrap().as_db().is_some());
        assert!(g.driver(db).unwrap().as_fs().is_none());
    }

    #[test]
    fn logical_resource_resolution() {
        let (g, ..) = demo_grid();
        let targets = g.mcat.resources.resolve_targets("logrsrc1").unwrap();
        assert_eq!(targets.len(), 2);
        assert!(g.logical_resource_id("logrsrc1").is_ok());
        assert!(g.logical_resource_id("nope").is_err());
    }

    #[test]
    fn fault_helpers() {
        let (g, ..) = demo_grid();
        let unix = g.resource_id("unix-sdsc").unwrap();
        assert!(g.resource_is_up(unix));
        g.fail_resource("unix-sdsc").unwrap();
        assert!(!g.resource_is_up(unix));
        g.restore_resource("unix-sdsc").unwrap();
        assert!(g.resource_is_up(unix));
        assert!(g.fail_resource("missing").is_err());
    }

    #[test]
    fn try_build_reports_specification_errors() {
        assert!(GridBuilder::new().try_build().is_err());

        let mut gb = GridBuilder::new();
        let s = gb.site("x");
        let srv = gb.server("srb", s);
        gb.fs_resource("r", srv).fs_resource("r", srv);
        assert!(matches!(
            gb.try_build(),
            Err(SrbError::AlreadyExists(_) | SrbError::Invalid(_))
        ));

        let mut gb = GridBuilder::new();
        let s = gb.site("x");
        let srv = gb.server("srb", s);
        gb.fs_resource("r", srv)
            .logical_resource("lr", &["missing"]);
        assert!(matches!(gb.try_build(), Err(SrbError::Invalid(_))));
    }

    #[test]
    fn flaky_helper_installs_seeded_mode() {
        let (g, ..) = demo_grid();
        g.flaky_resource("unix-sdsc", 1.0, 7).unwrap();
        let unix = g.resource_id("unix-sdsc").unwrap();
        // p = 1.0: every access fails, but the resource still counts as up.
        assert!(g.resource_is_up(unix));
        let site = g.site_of_resource(unix).unwrap();
        assert!(g.faults.check(unix, site).is_err());
        assert!(g.flaky_resource("missing", 0.5, 1).is_err());
        g.restore_resource("unix-sdsc").unwrap();
        assert!(g.faults.check(unix, site).is_ok());
    }

    #[test]
    fn register_user_convenience() {
        let (g, ..) = demo_grid();
        let u = g.register_user("sekar", "sdsc", "pw").unwrap();
        assert_eq!(g.mcat.users.get(u).unwrap().qualified(), "sekar@sdsc");
        assert!(!g.mcat.users.get(u).unwrap().is_admin);
    }

    #[test]
    fn servers_sorted_and_named() {
        let (g, s1, _) = demo_grid();
        let servers = g.servers();
        assert_eq!(servers[0].id, s1);
        assert_eq!(servers[0].name, "srb-sdsc");
        assert_eq!(servers[0].resource_ids().len(), 2);
        assert!(g.server(ServerId(99)).is_err());
    }
}

//! Whole-grid state save/restore.
//!
//! [`Grid::save_state`] captures the catalog snapshot
//! ([`srb_mcat::CatalogSnapshot`]) together with every resource's physical
//! objects and database tables; [`Grid::restore_state`] loads it back into
//! a freshly built grid with the *same topology* (resources are matched by
//! name). Together with E9's media migration this completes the
//! persistent-archive story: both the data and the catalog survive process
//! and technology generations.
//!
//! Caveats, by design: cache pin expiries and archive staging state are
//! cost-model state, not data, and reset to "staged" on restore; sessions
//! and in-flight locks' wall-clock context follow the restored virtual
//! clock.

use crate::grid::Grid;
use serde::{Deserialize, Serialize};
use srb_mcat::CatalogSnapshot;
use srb_storage::sql::SqlValue;
use srb_types::{from_hex, to_hex, SrbError, SrbResult};

/// Serialized image of one resource's physical objects.
#[derive(Debug, Serialize, Deserialize)]
pub struct ResourceState {
    /// Resource name (topology key).
    pub name: String,
    /// `(physical path, hex-encoded bytes)` pairs.
    pub objects: Vec<(String, String)>,
    /// Database tables, for database resources.
    pub tables: Vec<(String, Vec<String>, Vec<Vec<SqlValue>>)>,
}

/// A complete grid image: catalog + storage.
#[derive(Debug, Serialize, Deserialize)]
pub struct GridState {
    /// Format version.
    pub version: u32,
    /// The catalog.
    pub catalog: CatalogSnapshot,
    /// Per-resource physical state.
    pub resources: Vec<ResourceState>,
    /// Virtual time at save.
    pub clock_ns: u64,
}

/// Current grid-state format version.
pub const GRID_STATE_VERSION: u32 = 1;

impl Grid {
    /// Capture the full grid state (catalog + every resource's objects).
    pub fn save_state(&self) -> SrbResult<String> {
        let mut resources = Vec::new();
        for r in self.mcat.resources.list() {
            let driver = self.driver(r.id)?;
            let mut objects = Vec::new();
            for path in driver.driver().list("")? {
                let (bytes, _) = driver.driver().read(&path)?;
                objects.push((path, to_hex(&bytes)));
            }
            let tables = driver
                .as_db()
                .map(|db| db.engine().dump_tables())
                .unwrap_or_default();
            resources.push(ResourceState {
                name: r.name.clone(),
                objects,
                tables,
            });
        }
        let state = GridState {
            version: GRID_STATE_VERSION,
            catalog: self.mcat.snapshot(),
            resources,
            clock_ns: self.clock.now().nanos(),
        };
        serde_json::to_string(&state).map_err(|e| SrbError::Internal(format!("serialize: {e}")))
    }

    /// Load a saved state into this (freshly built, same-topology) grid.
    /// Every resource named in the state must exist here; extra resources
    /// in the grid simply start empty.
    pub fn restore_state(&mut self, json: &str) -> SrbResult<()> {
        let state: GridState = serde_json::from_str(json)
            .map_err(|e| SrbError::Parse(format!("grid state JSON: {e}")))?;
        if state.version != GRID_STATE_VERSION {
            return Err(SrbError::Invalid(format!(
                "unsupported grid-state version {}",
                state.version
            )));
        }
        // Restore the catalog first: resource ids in it must agree with the
        // topology, which we verify by name.
        let mcat = srb_mcat::Mcat::restore(self.clock.clone(), state.catalog)?;
        for r in mcat.resources.list() {
            let local = self.mcat.resources.find(&r.name).ok_or_else(|| {
                SrbError::Invalid(format!(
                    "grid topology lacks resource '{}' required by the saved state",
                    r.name
                ))
            })?;
            if local.id != r.id || local.kind != r.kind {
                return Err(SrbError::Invalid(format!(
                    "resource '{}' differs between topology and saved state \
                     (declare resources in the same order)",
                    r.name
                )));
            }
        }
        // Physical objects.
        for rs in state.resources {
            let rid = self
                .mcat
                .resources
                .find(&rs.name)
                .ok_or_else(|| SrbError::NotFound(format!("resource '{}'", rs.name)))?
                .id;
            let driver = self.driver(rid)?;
            for (path, hexed) in rs.objects {
                let bytes = from_hex(&hexed)
                    .ok_or_else(|| SrbError::Parse(format!("bad hex for object '{path}'")))?;
                driver.driver().write(&path, &bytes)?;
            }
            if let Some(db) = driver.as_db() {
                db.engine().restore_tables(rs.tables);
            }
        }
        self.clock.advance_to(srb_types::Timestamp(state.clock_ns));
        self.mcat = mcat;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::grid::GridBuilder;
    use crate::ops_write::{IngestOptions, RegisterSpec};
    use crate::SrbConnection;
    use srb_mcat::Template;
    use srb_types::Triplet;

    fn build() -> crate::Grid {
        let mut gb = GridBuilder::new();
        let site = gb.site("sdsc");
        let srv = gb.server("srb", site);
        gb.fs_resource("fs", srv)
            .cache_resource("cache", srv, 1 << 20)
            .archive_resource("tape", srv)
            .db_resource("db", srv)
            .logical_resource("ct-store", &["cache", "tape"]);
        gb.build()
    }

    #[test]
    fn full_grid_round_trip() {
        let grid = build();
        grid.register_user("sekar", "sdsc", "pw").unwrap();
        let srv = grid.servers()[0].id;
        let conn = SrbConnection::connect(&grid, srv, "sekar", "sdsc", "pw").unwrap();
        conn.ingest(
            "/home/sekar/a.txt",
            b"alpha",
            IngestOptions::to_resource("fs").with_metadata(Triplet::new("k", "v", "")),
        )
        .unwrap();
        conn.create_container("ct", "ct-store", 1 << 16).unwrap();
        conn.ingest(
            "/home/sekar/b.txt",
            b"bravo",
            IngestOptions::into_container("ct"),
        )
        .unwrap();
        {
            let db = grid.driver(grid.resource_id("db").unwrap()).unwrap();
            let db = db.as_db().unwrap();
            db.engine().execute("CREATE TABLE t (x)").unwrap();
            db.engine().execute("INSERT INTO t VALUES (42)").unwrap();
        }
        conn.register(
            "/home/sekar/q",
            RegisterSpec::Sql {
                resource: "db".into(),
                sql: "SELECT x FROM t".into(),
                partial: false,
                template: Template::HtmlRel,
            },
            IngestOptions::default(),
        )
        .unwrap();
        let saved = grid.save_state().unwrap();

        // Fresh same-topology grid, restore, and use it.
        let mut grid2 = build();
        grid2.restore_state(&saved).unwrap();
        let srv2 = grid2.servers()[0].id;
        // The restored catalog carries users and verifiers: sekar signs on.
        let conn2 = SrbConnection::connect(&grid2, srv2, "sekar", "sdsc", "pw").unwrap();
        assert_eq!(&conn2.read("/home/sekar/a.txt").unwrap().0[..], b"alpha");
        // Container members survive (slice offsets + cache object).
        assert_eq!(&conn2.read("/home/sekar/b.txt").unwrap().0[..], b"bravo");
        // The registered SQL object still queries live tables.
        let (content, _) = conn2.open("/home/sekar/q", &[]).unwrap();
        assert!(content.display().contains("42"));
        // Metadata survived with its indexes.
        assert_eq!(conn2.metadata("/home/sekar/a.txt").unwrap().len(), 1);
        // And new work proceeds without id collisions.
        conn2
            .ingest(
                "/home/sekar/c.txt",
                b"new",
                IngestOptions::to_resource("fs"),
            )
            .unwrap();
    }

    #[test]
    fn topology_mismatch_is_rejected() {
        let grid = build();
        grid.register_user("u", "d", "pw").unwrap();
        let saved = grid.save_state().unwrap();
        let mut gb = GridBuilder::new();
        let site = gb.site("sdsc");
        let srv = gb.server("srb", site);
        gb.fs_resource("other-name", srv);
        let mut wrong = gb.build();
        let err = wrong.restore_state(&saved).unwrap_err();
        assert!(err.to_string().contains("lacks resource"));
        assert!(wrong.restore_state("{]").is_err());
    }
}

//! T-language — SRB's "interpreted language native to SRB that supports
//! rule-based data extraction and style-sheet for data organization".
//!
//! Two statement families, matching the paper's two uses:
//!
//! **Extraction rules** (metadata extraction methods, §5):
//! ```text
//! # take the rest of the first line containing the prefix
//! extract Title after "TITLE ="
//! # take the text between two delimiters
//! extract Creator between "<creator>" "</creator>"
//! # find `NAME <sep> value` lines by attribute name
//! extract Wingspan keyvalue "="
//! # constant attribute
//! set Format "FITS"
//! # attach units to an extracted attribute
//! units Wingspan "cm"
//! ```
//!
//! **Style-sheets** (pretty-printing registered-SQL results, §4):
//! ```text
//! header "<h1>Birds</h1><ul>"
//! row "<li>{0}: {wingspan} cm</li>"
//! footer "</ul>"
//! ```
//! `{i}` substitutes column *i*; `{name}` substitutes the column named
//! `name` (case-insensitive).

use srb_storage::sql::QueryResult;
use srb_types::{MetaValue, SrbError, SrbResult, Triplet};

/// One parsed T-language statement.
#[derive(Debug, Clone, PartialEq)]
enum Stmt {
    ExtractAfter {
        attr: String,
        prefix: String,
    },
    ExtractBetween {
        attr: String,
        open: String,
        close: String,
    },
    ExtractKeyValue {
        attr: String,
        sep: String,
    },
    Set {
        attr: String,
        value: String,
    },
    Units {
        attr: String,
        units: String,
    },
    Header(String),
    Row(String),
    Footer(String),
}

/// A parsed T-language script.
#[derive(Debug, Clone, PartialEq)]
pub struct TScript {
    stmts: Vec<Stmt>,
}

fn tokenize_line(line: &str) -> SrbResult<Vec<String>> {
    let mut toks = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c == '"' {
            chars.next();
            let mut s = String::new();
            loop {
                match chars.next() {
                    Some('"') => break,
                    Some('\\') => match chars.next() {
                        Some('n') => s.push('\n'),
                        Some('t') => s.push('\t'),
                        Some(other) => s.push(other),
                        None => return Err(SrbError::Parse("dangling escape".into())),
                    },
                    Some(other) => s.push(other),
                    None => return Err(SrbError::Parse("unterminated string".into())),
                }
            }
            toks.push(s);
        } else {
            let mut s = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_whitespace() {
                    break;
                }
                s.push(c);
                chars.next();
            }
            toks.push(s);
        }
    }
    Ok(toks)
}

impl TScript {
    /// Parse a script. Lines starting with `#` (after whitespace) are
    /// comments; blank lines are ignored.
    pub fn parse(src: &str) -> SrbResult<TScript> {
        let mut stmts = Vec::new();
        for (lineno, raw) in src.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let toks = tokenize_line(line)?;
            let err = |msg: &str| {
                Err(SrbError::Parse(format!(
                    "T-language line {}: {msg}: '{line}'",
                    lineno + 1
                )))
            };
            let stmt = match toks[0].as_str() {
                "extract" => {
                    if toks.len() < 4 {
                        return err("extract needs: extract NAME <mode> ARGS");
                    }
                    let attr = toks[1].clone();
                    match toks[2].as_str() {
                        "after" => Stmt::ExtractAfter {
                            attr,
                            prefix: toks[3].clone(),
                        },
                        "between" => {
                            if toks.len() < 5 {
                                return err("between needs two delimiters");
                            }
                            Stmt::ExtractBetween {
                                attr,
                                open: toks[3].clone(),
                                close: toks[4].clone(),
                            }
                        }
                        "keyvalue" => Stmt::ExtractKeyValue {
                            attr,
                            sep: toks[3].clone(),
                        },
                        _ => return err("unknown extract mode"),
                    }
                }
                "set" => {
                    if toks.len() < 3 {
                        return err("set needs: set NAME VALUE");
                    }
                    Stmt::Set {
                        attr: toks[1].clone(),
                        value: toks[2].clone(),
                    }
                }
                "units" => {
                    if toks.len() < 3 {
                        return err("units needs: units NAME UNITS");
                    }
                    Stmt::Units {
                        attr: toks[1].clone(),
                        units: toks[2].clone(),
                    }
                }
                "header" => {
                    if toks.len() < 2 {
                        return err("header needs a template string");
                    }
                    Stmt::Header(toks[1].clone())
                }
                "row" => {
                    if toks.len() < 2 {
                        return err("row needs a template string");
                    }
                    Stmt::Row(toks[1].clone())
                }
                "footer" => {
                    if toks.len() < 2 {
                        return err("footer needs a template string");
                    }
                    Stmt::Footer(toks[1].clone())
                }
                _ => return err("unknown statement"),
            };
            stmts.push(stmt);
        }
        Ok(TScript { stmts })
    }

    /// Apply the extraction rules to a text document, producing triplets.
    pub fn extract(&self, text: &str) -> Vec<Triplet> {
        let mut out: Vec<Triplet> = Vec::new();
        for stmt in &self.stmts {
            match stmt {
                Stmt::ExtractAfter { attr, prefix } => {
                    for line in text.lines() {
                        if let Some(pos) = line.find(prefix.as_str()) {
                            let value = line[pos + prefix.len()..].trim();
                            if !value.is_empty() {
                                out.push(Triplet::new(
                                    attr.clone(),
                                    MetaValue::parse(trim_quotes(value)),
                                    "",
                                ));
                            }
                            break;
                        }
                    }
                }
                Stmt::ExtractBetween { attr, open, close } => {
                    if let Some(start) = text.find(open.as_str()) {
                        let rest = &text[start + open.len()..];
                        if let Some(end) = rest.find(close.as_str()) {
                            let value = rest[..end].trim();
                            if !value.is_empty() {
                                out.push(Triplet::new(attr.clone(), MetaValue::parse(value), ""));
                            }
                        }
                    }
                }
                Stmt::ExtractKeyValue { attr, sep } => {
                    for line in text.lines() {
                        let Some((k, v)) = line.split_once(sep.as_str()) else {
                            continue;
                        };
                        if k.trim().eq_ignore_ascii_case(attr) {
                            let value = trim_quotes(v.trim());
                            if !value.is_empty() {
                                out.push(Triplet::new(attr.clone(), MetaValue::parse(value), ""));
                            }
                            break;
                        }
                    }
                }
                Stmt::Set { attr, value } => {
                    out.push(Triplet::new(attr.clone(), MetaValue::parse(value), ""));
                }
                Stmt::Units { attr, units } => {
                    for t in out.iter_mut().rev() {
                        if &t.name == attr {
                            t.units = units.clone();
                            break;
                        }
                    }
                }
                // Style statements are ignored in extraction mode.
                Stmt::Header(_) | Stmt::Row(_) | Stmt::Footer(_) => {}
            }
        }
        out
    }

    /// Render a SQL result through the style-sheet statements.
    pub fn render(&self, result: &QueryResult) -> String {
        let mut out = String::new();
        for stmt in &self.stmts {
            if let Stmt::Header(t) = stmt {
                out.push_str(t);
                out.push('\n');
            }
        }
        for row in &result.rows {
            for stmt in &self.stmts {
                if let Stmt::Row(template) = stmt {
                    out.push_str(&substitute(template, &result.columns, row));
                    out.push('\n');
                }
            }
        }
        for stmt in &self.stmts {
            if let Stmt::Footer(t) = stmt {
                out.push_str(t);
                out.push('\n');
            }
        }
        out
    }

    /// Does the script contain any style (header/row/footer) statements?
    pub fn is_style_sheet(&self) -> bool {
        self.stmts
            .iter()
            .any(|s| matches!(s, Stmt::Header(_) | Stmt::Row(_) | Stmt::Footer(_)))
    }

    /// Number of parsed statements.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// True when the script has no statements.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }
}

fn trim_quotes(s: &str) -> &str {
    s.trim_matches(|c| c == '\'' || c == '"').trim()
}

fn substitute(template: &str, columns: &[String], row: &[srb_storage::sql::SqlValue]) -> String {
    let mut out = String::with_capacity(template.len() + 16);
    let mut chars = template.chars().peekable();
    while let Some(c) = chars.next() {
        if c != '{' {
            out.push(c);
            continue;
        }
        let mut key = String::new();
        let mut closed = false;
        for k in chars.by_ref() {
            if k == '}' {
                closed = true;
                break;
            }
            key.push(k);
        }
        if !closed {
            out.push('{');
            out.push_str(&key);
            break;
        }
        let idx = key
            .parse::<usize>()
            .ok()
            .or_else(|| columns.iter().position(|c| c.eq_ignore_ascii_case(&key)));
        match idx.and_then(|i| row.get(i)) {
            Some(v) => out.push_str(&v.render()),
            None => {
                out.push('{');
                out.push_str(&key);
                out.push('}');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use srb_storage::sql::SqlEngine;

    #[test]
    fn fits_header_extraction() {
        let script = TScript::parse(
            r#"
            # FITS-style header extraction
            extract OBJECT keyvalue "="
            extract TELESCOP keyvalue "="
            set Format "FITS"
            "#,
        )
        .unwrap();
        let fits = "SIMPLE  = T\nOBJECT  = 'M31'\nTELESCOP= '2MASS'\nEND";
        let triplets = script.extract(fits);
        assert_eq!(triplets.len(), 3);
        assert_eq!(triplets[0], Triplet::new("OBJECT", "M31", ""));
        assert_eq!(triplets[1], Triplet::new("TELESCOP", "2MASS", ""));
        assert_eq!(triplets[2], Triplet::new("Format", "FITS", ""));
    }

    #[test]
    fn html_between_extraction() {
        let script = TScript::parse(r#"extract Title between "<title>" "</title>""#).unwrap();
        let html = "<html><head><title>Avian Culture</title></head></html>";
        assert_eq!(
            script.extract(html),
            vec![Triplet::new("Title", "Avian Culture", "")]
        );
        // Missing delimiters produce nothing.
        assert!(script.extract("<html></html>").is_empty());
    }

    #[test]
    fn after_extraction_with_units() {
        let script = TScript::parse(
            r#"
            extract Wingspan after "Wingspan:"
            units Wingspan "cm"
            "#,
        )
        .unwrap();
        let doc = "Species: condor\nWingspan: 290\n";
        let t = script.extract(doc);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].value, MetaValue::Int(290));
        assert_eq!(t[0].units, "cm");
    }

    #[test]
    fn numeric_values_parse_numerically() {
        let script = TScript::parse(r#"extract N keyvalue ":""#).unwrap();
        let t = script.extract("N: 12.5");
        assert_eq!(t[0].value, MetaValue::Float(12.5));
    }

    #[test]
    fn style_sheet_rendering() {
        let script = TScript::parse(
            r#"
            header "<ul>"
            row "<li>{0} spans {wingspan}</li>"
            footer "</ul>"
            "#,
        )
        .unwrap();
        assert!(script.is_style_sheet());
        let e = SqlEngine::new();
        e.execute("CREATE TABLE b (name, wingspan)").unwrap();
        e.execute("INSERT INTO b VALUES ('condor', 290), ('sparrow', 20)")
            .unwrap();
        let r = e
            .execute("SELECT name, wingspan FROM b ORDER BY wingspan DESC")
            .unwrap();
        let html = script.render(&r);
        assert_eq!(
            html,
            "<ul>\n<li>condor spans 290</li>\n<li>sparrow spans 20</li>\n</ul>\n"
        );
    }

    #[test]
    fn unknown_placeholder_left_verbatim() {
        let script = TScript::parse(r#"row "{0} {nope} {99}""#).unwrap();
        let e = SqlEngine::new();
        e.execute("CREATE TABLE t (a)").unwrap();
        e.execute("INSERT INTO t VALUES ('x')").unwrap();
        let r = e.execute("SELECT a FROM t").unwrap();
        assert_eq!(script.render(&r), "x {nope} {99}\n");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = TScript::parse("extract Title\n").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        assert!(TScript::parse("frobnicate x").is_err());
        assert!(TScript::parse(r#"extract T wrongmode "x""#).is_err());
        assert!(TScript::parse(r#"row "unterminated"#).is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let s = TScript::parse("\n# comment\n\n  # another\n").unwrap();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.is_style_sheet());
    }

    #[test]
    fn escapes_in_strings() {
        let s = TScript::parse(r#"set Note "line1\nline2\t\"quoted\"""#).unwrap();
        let t = s.extract("");
        assert_eq!(t[0].value.lexical(), "line1\nline2\t\"quoted\"");
    }
}

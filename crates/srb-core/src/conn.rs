//! The client connection: single sign-on plus the read path.
//!
//! "Users can connect to any SRB server to access data from any other SRB
//! server." An [`SrbConnection`] is bound to its *contact server*; metadata
//! operations are forwarded to the MCAT server and data operations to the
//! server brokering the chosen replica's resource, with every hop charged
//! to the returned [`Receipt`].
//!
//! Write-side operations live in [`crate::ops_write`],
//! [`crate::ops_container`], [`crate::ops_meta`] and [`crate::ops_lock`] —
//! all as `impl SrbConnection` blocks.

use crate::auth::{AuthService, Session};
use crate::fanout::{FanoutMode, RetryBudget};
use crate::grid::Grid;
use crate::replication::ReplicaPolicy;
use crate::template::render_template;
use crate::tlang::TScript;
use bytes::Bytes;
use srb_mcat::{AccessSpec, AuditAction, Replica, Template};
use srb_net::Receipt;
use srb_storage::sql::QueryResult;
use srb_types::{
    DatasetId, LogicalPath, Permission, ServerId, SiteId, SrbError, SrbResult, Timestamp, UserId,
};
use std::sync::atomic::{AtomicU64, Ordering};

/// What an `open` returned, depending on the object's type.
#[derive(Debug, Clone)]
pub enum ObjectContent {
    /// File bytes (stored/registered files, URL fetches, method output).
    Bytes(Bytes),
    /// A SQL result rendered through its template, plus the raw rows.
    Table {
        /// The raw query result.
        result: QueryResult,
        /// The rendered (HTML/XML/style-sheet) text.
        rendered: String,
    },
    /// The cone of files visible through a registered directory.
    Listing(Vec<String>),
}

impl ObjectContent {
    /// The bytes, when this is a byte object.
    pub fn as_bytes(&self) -> Option<&Bytes> {
        match self {
            ObjectContent::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Render any content as display text (what MySRB shows).
    pub fn display(&self) -> String {
        match self {
            ObjectContent::Bytes(b) => String::from_utf8_lossy(b).into_owned(),
            ObjectContent::Table { rendered, .. } => rendered.clone(),
            ObjectContent::Listing(files) => files.join("\n"),
        }
    }
}

/// What [`SrbConnection::list_collection`] returns: sub-collection names,
/// `(name, data type, size)` dataset summaries, and the receipt.
pub type CollectionListing = (Vec<String>, Vec<(String, String, u64)>, Receipt);

/// An authenticated client session bound to a contact server.
pub struct SrbConnection<'g> {
    pub(crate) grid: &'g Grid,
    pub(crate) server: ServerId,
    pub(crate) site: SiteId,
    pub(crate) session: Session,
    pub(crate) policy: ReplicaPolicy,
    pub(crate) fanout: FanoutMode,
    pub(crate) retry: RetryBudget,
    pub(crate) allow_stale: bool,
    pub(crate) trace: bool,
    /// Simulated nanoseconds accumulated by ops on this connection since
    /// the last [`take_op_ns`](Self::take_op_ns) — MySRB drains this to
    /// attribute grid cost to the route that incurred it.
    pub(crate) op_ns: AtomicU64,
}

impl<'g> SrbConnection<'g> {
    /// Connect to `server` with challenge–response single sign-on.
    pub fn connect(
        grid: &'g Grid,
        server: ServerId,
        name: &str,
        domain: &str,
        password: &str,
    ) -> SrbResult<Self> {
        let srv = grid.server(server)?;
        let user = grid
            .mcat
            .users
            .find(name, domain)
            .ok_or_else(|| SrbError::AuthFailed(format!("unknown user '{name}@{domain}'")))?;
        // The contact server fetches the verifier from the MCAT server.
        let mcat_site = grid.server(grid.mcat_server())?.site;
        let _ = grid.network.charge_rpc(srv.site, mcat_site)?;
        let (cid, nonce) = grid.auth.challenge();
        let client_verifier = srb_mcat::user::derive_verifier(password);
        let response = AuthService::respond(&client_verifier, &nonce);
        let session = match grid.auth.verify(cid, &response, user.id, &user.verifier) {
            Ok(s) => s,
            Err(e) => {
                grid.mcat.audit.record(
                    &grid.mcat.ids,
                    grid.clock.now(),
                    user.id,
                    AuditAction::AuthFail,
                    &format!("{name}@{domain}"),
                    e.code(),
                );
                return Err(e);
            }
        };
        grid.mcat.audit.record(
            &grid.mcat.ids,
            grid.clock.now(),
            user.id,
            AuditAction::Connect,
            &srv.name,
            "ok",
        );
        Ok(SrbConnection {
            grid,
            server,
            site: srv.site,
            session,
            policy: ReplicaPolicy::default(),
            fanout: FanoutMode::default(),
            retry: RetryBudget::default(),
            allow_stale: false,
            trace: false,
            op_ns: AtomicU64::new(0),
        })
    }

    /// Build a connection directly from an already-valid [`Session`] —
    /// the pooled fast path ([`SrbConnection::connect_pooled`]) that
    /// skips the handshake entirely.
    pub(crate) fn from_session(
        grid: &'g Grid,
        server: ServerId,
        site: SiteId,
        session: Session,
    ) -> Self {
        SrbConnection {
            grid,
            server,
            site,
            session,
            policy: ReplicaPolicy::default(),
            fanout: FanoutMode::default(),
            retry: RetryBudget::default(),
            allow_stale: false,
            trace: false,
            op_ns: AtomicU64::new(0),
        }
    }

    /// The authenticated user.
    pub fn user(&self) -> UserId {
        self.session.user
    }

    /// The grid this connection brokers.
    pub fn grid(&self) -> &'g Grid {
        self.grid
    }

    /// The contact server.
    pub fn contact_server(&self) -> ServerId {
        self.server
    }

    /// Change the replica-selection policy (ablation A3).
    pub fn set_policy(&mut self, policy: ReplicaPolicy) {
        self.policy = policy;
    }

    /// Change how multi-replica storage legs execute (the sequential mode
    /// is the measurable ablation in bench E6/E7).
    pub fn set_fanout_mode(&mut self, mode: FanoutMode) {
        self.fanout = mode;
    }

    /// The connection's current fan-out mode.
    pub fn fanout_mode(&self) -> FanoutMode {
        self.fanout
    }

    /// Change how hard storage attempts retry transient errors
    /// ([`RetryBudget::none`] is the ablation arm of bench E3).
    pub fn set_retry_budget(&mut self, budget: RetryBudget) {
        self.retry = budget;
    }

    /// The connection's current retry budget.
    pub fn retry_budget(&self) -> RetryBudget {
        self.retry
    }

    /// Opt in (or out) of graceful degradation: when no fresh replica is
    /// reachable, a read may serve a `Stale` copy, flagged by
    /// `Receipt::served_stale`. Off by default — stale bytes must never
    /// surprise a caller.
    pub fn set_allow_stale(&mut self, allow: bool) {
        self.allow_stale = allow;
    }

    /// Whether this connection accepts stale reads as a last resort.
    pub fn allow_stale(&self) -> bool {
        self.allow_stale
    }

    /// Record a span in the grid's trace ring for every finished op on
    /// this connection (no-op when grid observability is off).
    pub fn set_tracing(&mut self, on: bool) {
        self.trace = on;
    }

    /// Whether this connection records spans.
    pub fn tracing(&self) -> bool {
        self.trace
    }

    /// Drain the simulated nanoseconds charged by this connection's ops
    /// since the previous call (resets the accumulator to zero).
    pub fn take_op_ns(&self) -> u64 {
        self.op_ns.swap(0, Ordering::Relaxed)
    }

    /// End the session.
    pub fn logout(self) {
        self.grid.auth.logout(&self.session.ticket);
    }

    // ------------------------------------------------------------ plumbing --

    /// Validate the ticket — every brokered request starts here.
    pub(crate) fn check_session(&self) -> SrbResult<UserId> {
        self.grid.auth.validate(&self.session.ticket)
    }

    pub(crate) fn now(&self) -> Timestamp {
        self.grid.clock.now()
    }

    pub(crate) fn site(&self) -> SiteId {
        self.site
    }

    /// One metadata round trip: contact server → MCAT server.
    pub(crate) fn mcat_rpc(&self) -> SrbResult<Receipt> {
        let mcat_site = self.grid.server(self.grid.mcat_server())?.site;
        let ns = self.grid.network.charge_rpc(self.site(), mcat_site)?;
        let mut r = Receipt::time(ns);
        r.messages = 2;
        if self.server != self.grid.mcat_server() {
            r.hops = 1;
        }
        Ok(r)
    }

    /// Feed a completed top-level op into the observability subsystem:
    /// the per-op latency histogram, the slow-op log, the connection's
    /// route-cost accumulator, and — when tracing is on — a span
    /// covering the whole op.
    pub(crate) fn finish_op(&self, op: &str, subject: &str, start: Timestamp, receipt: &Receipt) {
        self.op_ns.fetch_add(receipt.sim_ns, Ordering::Relaxed);
        if let Some(obs) = self.grid.core_obs() {
            obs.finish_op(op, subject, receipt);
            if self.trace {
                obs.span(op, subject, None, start, receipt.sim_ns);
            }
        }
    }

    pub(crate) fn audit(&self, action: AuditAction, subject: &str, outcome: &str) {
        self.grid.mcat.audit.record(
            &self.grid.mcat.ids,
            self.now(),
            self.session.user,
            action,
            subject,
            outcome,
        );
        // Periodic WAL checkpoints ride the audit path: every mutating op
        // audits, so a due checkpoint lands promptly without a background
        // thread. A failure here means the catalog snapshot failed to
        // serialize — a programming bug caught by tests, not a reason to
        // fail the user's op.
        let _ = self.grid.mcat.maybe_checkpoint();
    }

    /// Fold the durability cost pooled by the catalog's WAL (appends,
    /// group-commit fsyncs, checkpoints) since the last drain into this
    /// op's receipt. A no-op on grids without durability enabled.
    pub(crate) fn absorb_durability(&self, receipt: &mut Receipt) {
        if let Some(wal) = self.grid.mcat.wal() {
            receipt.sim_ns += wal.take_pending_ns();
        }
    }

    pub(crate) fn parse(&self, path: &str) -> SrbResult<LogicalPath> {
        LogicalPath::parse(path)
    }

    /// Pull `bytes` from the resource's site to the contact site and note
    /// the federation hop if the data server differs from the contact.
    pub(crate) fn data_transfer(
        &self,
        resource: srb_types::ResourceId,
        bytes: u64,
    ) -> SrbResult<Receipt> {
        let rsite = self.grid.site_of_resource(resource)?;
        let ns = self
            .grid
            .network
            .charge_transfer(rsite, self.site(), bytes)?;
        let mut r = Receipt::time(ns);
        r.bytes = bytes;
        r.messages = 1;
        let home = self.grid.server_for_resource(resource)?;
        if home != self.server {
            r.hops = 1;
        }
        Ok(r)
    }

    // ---------------------------------------------------------------- read --

    /// Read a byte object (stored or registered file), with transparent
    /// failover across replicas.
    pub fn read(&self, path: &str) -> SrbResult<(Bytes, Receipt)> {
        let (content, receipt) = self.open(path, &[])?;
        match content {
            ObjectContent::Bytes(b) => Ok((b, receipt)),
            _ => Err(SrbError::Unsupported(format!(
                "'{path}' is not a byte object; use open()"
            ))),
        }
    }

    /// Open any object. `args` parameterize partial SQL queries and method
    /// objects.
    pub fn open(&self, path: &str, args: &[String]) -> SrbResult<(ObjectContent, Receipt)> {
        let user = self.check_session()?;
        let start = self.now();
        let mut receipt = self.mcat_rpc()?;
        let result = (|| {
            let lp = self.parse(path)?;
            let ds_id = self.grid.mcat.resolve_dataset(&lp)?;
            let ds = self.grid.mcat.datasets.resolve_links(ds_id)?;
            self.grid
                .mcat
                .require_dataset(Some(user), ds.id, Permission::Read)?;
            ds.read_allowed_by_locks(user, self.now())?;
            self.open_resolved(&ds.replicas, args, &mut receipt)
        })();
        match &result {
            Ok(_) => self.audit(AuditAction::Read, path, "ok"),
            Err(e) => self.audit(AuditAction::Read, path, e.code()),
        }
        let content = result?;
        self.finish_op("open", path, start, &receipt);
        Ok((content, receipt))
    }

    /// Dispatch on the replica specs, with failover across byte replicas.
    fn open_resolved(
        &self,
        replicas: &[Replica],
        args: &[String],
        receipt: &mut Receipt,
    ) -> SrbResult<ObjectContent> {
        // Non-byte objects are served through their (single) spec.
        if let Some(first) = replicas.first() {
            match &first.spec {
                AccessSpec::Sql {
                    resource,
                    sql,
                    partial,
                    template,
                } => {
                    let sql = if *partial && !args.is_empty() {
                        format!("{sql} {}", args.join(" "))
                    } else {
                        sql.clone()
                    };
                    return self.open_sql(*resource, &sql, template, receipt);
                }
                AccessSpec::Url { url } => {
                    let (content, ns) = self.grid.web.fetch(url)?;
                    receipt.absorb(&Receipt::time(ns));
                    receipt.bytes += content.len() as u64;
                    return Ok(ObjectContent::Bytes(content));
                }
                AccessSpec::Method {
                    name,
                    is_function,
                    default_args,
                } => {
                    let mut full_args = default_args.clone();
                    full_args.extend_from_slice(args);
                    return self.open_method(name, *is_function, &full_args, receipt);
                }
                AccessSpec::ShadowDir { resource, dir_path } => {
                    let driver = self.grid.driver(*resource)?;
                    let fs = driver.as_fs().ok_or_else(|| {
                        SrbError::Unsupported("shadow directory on non-fs resource".into())
                    })?;
                    let rsite = self.grid.site_of_resource(*resource)?;
                    let ns = self.grid.network.charge_rpc(self.site(), rsite)?;
                    receipt.absorb(&Receipt::time(ns));
                    return Ok(ObjectContent::Listing(fs.cone(dir_path)));
                }
                AccessSpec::Stored { .. } | AccessSpec::RegisteredFile { .. } => {}
            }
        }
        // Byte replicas: policy order + failover (+ stale degradation).
        self.read_with_failover(replicas, receipt)
            .map(ObjectContent::Bytes)
    }

    /// Walk the policy-ordered fresh replicas (open-breaker resources
    /// demoted) with failover; if every fresh replica is unreachable and
    /// the connection opted into degradation, fall back to stale copies,
    /// flagging the receipt.
    fn read_with_failover(&self, replicas: &[Replica], receipt: &mut Receipt) -> SrbResult<Bytes> {
        let ordered =
            self.policy
                .order_with_health(replicas, &self.grid.load, Some(&self.grid.health));
        if ordered.fresh.is_empty() && (!self.allow_stale || ordered.stale.is_empty()) {
            return Err(SrbError::NotFound("object has no readable replica".into()));
        }
        let mut last_err = SrbError::ResourceUnavailable("no replica reachable".into());
        for replica in ordered.fresh {
            receipt.replicas_tried += 1;
            match self.read_replica(replica, receipt) {
                Ok(bytes) => {
                    receipt.served_by = Some(replica.id);
                    return Ok(bytes);
                }
                Err(e) if e.is_retryable() => {
                    last_err = e;
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
        if self.allow_stale {
            for replica in ordered.stale {
                receipt.replicas_tried += 1;
                match self.read_replica(replica, receipt) {
                    Ok(bytes) => {
                        receipt.served_by = Some(replica.id);
                        receipt.served_stale = true;
                        return Ok(bytes);
                    }
                    Err(e) if e.is_retryable() => {
                        last_err = e;
                        continue;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Err(last_err)
    }

    /// Read one byte replica (standalone or container slice).
    fn read_replica(&self, replica: &Replica, receipt: &mut Receipt) -> SrbResult<Bytes> {
        if let Some(slice) = replica.in_container {
            return self.read_container_slice(slice, receipt);
        }
        let (resource, phys_path) = match &replica.spec {
            AccessSpec::Stored {
                resource,
                phys_path,
            }
            | AccessSpec::RegisteredFile {
                resource,
                phys_path,
            } => (*resource, phys_path.as_str()),
            other => {
                return Err(SrbError::Unsupported(format!(
                    "replica of type {} is not byte-readable",
                    other.type_label()
                )))
            }
        };
        self.retry_storage(resource, receipt, |rec| {
            self.read_replica_once(resource, phys_path, rec)
        })
    }

    /// One storage attempt at a replica: fault injection, driver read,
    /// cost charging. Breaker admission and outcome recording happen in
    /// the wrapping [`retry_storage`](Self::retry_storage).
    fn read_replica_once(
        &self,
        resource: srb_types::ResourceId,
        phys_path: &str,
        receipt: &mut Receipt,
    ) -> SrbResult<Bytes> {
        let site = self.grid.site_of_resource(resource)?;
        let injected_ns = self.grid.faults.inject(resource, site)?;
        let driver = self.grid.driver(resource)?;
        let _inflight = self.grid.load.begin(resource);
        let (data, storage_ns) = match driver.driver().read(phys_path) {
            Ok(ok) => ok,
            Err(e) => {
                if let Some(obs) = self.grid.core_obs() {
                    obs.storage_error(driver.kind(), e.code());
                }
                return Err(e);
            }
        };
        if let Some(obs) = self.grid.core_obs() {
            obs.storage_op(driver.kind(), storage_ns);
        }
        let busy_ns = storage_ns + injected_ns;
        self.grid.load.charge(resource, busy_ns);
        receipt.absorb(&Receipt::time(busy_ns));
        let transfer = self.data_transfer(resource, data.len() as u64)?;
        receipt.absorb(&transfer);
        Ok(data)
    }

    fn open_sql(
        &self,
        resource: srb_types::ResourceId,
        sql: &str,
        template: &Template,
        receipt: &mut Receipt,
    ) -> SrbResult<ObjectContent> {
        let site = self.grid.site_of_resource(resource)?;
        let injected_ns = self.grid.faults.inject(resource, site)?;
        receipt.absorb(&Receipt::time(injected_ns));
        let driver = self.grid.driver(resource)?;
        let db = driver
            .as_db()
            .ok_or_else(|| SrbError::Unsupported("SQL object on non-database resource".into()))?;
        let _inflight = self.grid.load.begin(resource);
        let (result, ns) = match db.query(sql) {
            Ok(ok) => ok,
            Err(e) => {
                if let Some(obs) = self.grid.core_obs() {
                    obs.storage_error(driver.kind(), e.code());
                }
                return Err(e);
            }
        };
        if let Some(obs) = self.grid.core_obs() {
            obs.storage_op(driver.kind(), ns);
        }
        self.grid.load.charge(resource, ns);
        receipt.absorb(&Receipt::time(ns));
        let rendered = match template {
            Template::StyleSheet(sheet_ds) => {
                let (sheet_bytes, sheet_receipt) = self.read_dataset_bytes(*sheet_ds)?;
                receipt.absorb(&sheet_receipt);
                let script = TScript::parse(&String::from_utf8_lossy(&sheet_bytes))?;
                script.render(&result)
            }
            builtin => render_template(builtin, &result)
                .ok_or_else(|| SrbError::Internal("built-in template failed to render".into()))?,
        };
        let rendered_len = rendered.len() as u64;
        let transfer = self.data_transfer(resource, rendered_len)?;
        receipt.absorb(&transfer);
        Ok(ObjectContent::Table { result, rendered })
    }

    fn open_method(
        &self,
        name: &str,
        is_function: bool,
        args: &[String],
        receipt: &mut Receipt,
    ) -> SrbResult<ObjectContent> {
        // Find the server whose bin directory holds the command.
        for srv in self.grid.servers() {
            let has = if is_function {
                srv.proxies.has_function(name)
            } else {
                srv.proxies.has_command(name)
            };
            if has {
                let ns = self.grid.network.charge_rpc(self.site(), srv.site)?;
                receipt.absorb(&Receipt::time(ns));
                if srv.id != self.server {
                    receipt.hops += 1;
                }
                let out = if is_function {
                    srv.proxies.run_function(name, args)?
                } else {
                    srv.proxies.run_command(name, args)?
                };
                receipt.bytes += out.len() as u64;
                self.audit(AuditAction::Proxy, name, "ok");
                return Ok(ObjectContent::Bytes(Bytes::from(out)));
            }
        }
        Err(SrbError::NotFound(format!(
            "proxy {} '{name}' not installed on any server",
            if is_function { "function" } else { "command" }
        )))
    }

    /// Read a dataset's bytes by id (internal: style-sheets, copies,
    /// version preservation).
    pub(crate) fn read_dataset_bytes(&self, id: DatasetId) -> SrbResult<(Bytes, Receipt)> {
        let ds = self.grid.mcat.datasets.resolve_links(id)?;
        let mut receipt = Receipt::free();
        let bytes = self.read_with_failover(&ds.replicas, &mut receipt)?;
        Ok((bytes, receipt))
    }

    /// Read a file *inside* a registered directory (read-only access to the
    /// cone; ingestion/update/deletion through the shadow is not allowed —
    /// paper §4 type 2).
    pub fn read_from_directory(
        &self,
        dir_object: &str,
        rel_path: &str,
    ) -> SrbResult<(Bytes, Receipt)> {
        let user = self.check_session()?;
        let lp = self.parse(dir_object)?;
        let mut receipt = self.mcat_rpc()?;
        let ds_id = self.grid.mcat.resolve_dataset(&lp)?;
        let ds = self.grid.mcat.datasets.resolve_links(ds_id)?;
        self.grid
            .mcat
            .require_dataset(Some(user), ds.id, Permission::Read)?;
        let Some(Replica {
            spec: AccessSpec::ShadowDir { resource, dir_path },
            ..
        }) = ds.replicas.first()
        else {
            return Err(SrbError::Unsupported(format!(
                "'{dir_object}' is not a registered directory"
            )));
        };
        let full = format!("{}/{}", dir_path.trim_end_matches('/'), rel_path);
        let site = self.grid.site_of_resource(*resource)?;
        let injected_ns = self.grid.faults.inject(*resource, site)?;
        let driver = self.grid.driver(*resource)?;
        let (data, ns) = driver.driver().read(&full)?;
        receipt.absorb(&Receipt::time(ns + injected_ns));
        receipt.absorb(&self.data_transfer(*resource, data.len() as u64)?);
        self.audit(AuditAction::Read, &format!("{dir_object}:{rel_path}"), "ok");
        Ok((data, receipt))
    }

    // ---------------------------------------------------------- listings --

    /// List a collection: sub-collection names and dataset summaries.
    pub fn list_collection(&self, path: &str) -> SrbResult<CollectionListing> {
        let user = self.check_session()?;
        let lp = self.parse(path)?;
        let receipt = self.mcat_rpc()?;
        let coll = self.grid.mcat.collections.resolve(&lp)?;
        self.grid
            .mcat
            .require_collection(Some(user), coll, Permission::Discover)?;
        let subs = self
            .grid
            .mcat
            .collections
            .children(coll)
            .into_iter()
            .filter_map(|c| c.path.name().map(|n| n.to_string()))
            .collect();
        let datasets = self
            .grid
            .mcat
            .datasets
            .list(coll)
            .into_iter()
            .map(|d| (d.name.clone(), d.data_type.clone(), d.size()))
            .collect();
        Ok((subs, datasets, receipt))
    }

    /// One page of a collection listing through the catalog's resumable
    /// cursor: sub-collection names first, then dataset summaries, at most
    /// `limit` rows per page. `token` is the opaque continuation token the
    /// previous page returned (`None` starts over); the returned token is
    /// `None` once the listing is exhausted. A stale or tampered token
    /// fails with `SrbError::Invalid` — callers restart from page one.
    pub fn list_collection_page(
        &self,
        path: &str,
        token: Option<&str>,
        limit: usize,
    ) -> SrbResult<(CollectionListing, Option<String>)> {
        let user = self.check_session()?;
        let lp = self.parse(path)?;
        let receipt = self.mcat_rpc()?;
        let coll = self.grid.mcat.collections.resolve(&lp)?;
        self.grid
            .mcat
            .require_collection(Some(user), coll, Permission::Discover)?;
        let (subcolls, datasets, next) = self.grid.mcat.list_page(coll, token, limit)?;
        let subs = subcolls
            .into_iter()
            .filter_map(|c| c.path.name().map(|n| n.to_string()))
            .collect();
        let rows = datasets
            .into_iter()
            .map(|d| (d.name.clone(), d.data_type.clone(), d.size()))
            .collect();
        Ok(((subs, rows, receipt), next))
    }

    /// Stat a dataset: (data type, size, replica count, version). For
    /// datasets ingested without an explicit type the data type equals the
    /// structural label ("file", "url", …).
    pub fn stat(&self, path: &str) -> SrbResult<(String, u64, usize, u32)> {
        let user = self.check_session()?;
        let lp = self.parse(path)?;
        let ds_id = self.grid.mcat.resolve_dataset(&lp)?;
        let ds = self.grid.mcat.datasets.resolve_links(ds_id)?;
        self.grid
            .mcat
            .require_dataset(Some(user), ds.id, Permission::Discover)?;
        Ok((
            ds.data_type.clone(),
            ds.size(),
            ds.replicas.len(),
            ds.current_version,
        ))
    }
}

//! Metadata and query operations.
//!
//! "The importance of metadata in SRB comes from the queriability of the
//! metadata." These are MySRB's metadata-handling functions: ingestion at
//! four points (at ingest time, via the insert form, by copying, and by
//! extraction methods), type-oriented schemas, file-based metadata,
//! annotations, and the conjunctive query.

use crate::conn::SrbConnection;
use crate::tlang::TScript;
use srb_mcat::{
    Annotation, AnnotationKind, AuditAction, MetaKind, MetaRow, Query, QueryHit, Subject,
};
use srb_net::Receipt;
use srb_types::{MetaValue, Permission, SrbError, SrbResult, Triplet};

impl SrbConnection<'_> {
    fn subject_of(&self, path: &str) -> SrbResult<Subject> {
        let lp = self.parse(path)?;
        if let Ok(ds) = self.grid.mcat.resolve_dataset(&lp) {
            // Metadata attaches to the link target, as the paper specifies
            // for viewing; link-local metadata is supported by annotating
            // the link object itself, which we keep simple by resolving.
            let resolved = self.grid.mcat.datasets.resolve_links(ds)?;
            Ok(Subject::Dataset(resolved.id))
        } else {
            Ok(Subject::Collection(
                self.grid.mcat.collections.resolve(&lp)?,
            ))
        }
    }

    fn require_subject(&self, subject: Subject, needed: Permission) -> SrbResult<()> {
        match subject {
            Subject::Dataset(d) => self.grid.mcat.require_dataset(Some(self.user()), d, needed),
            Subject::Collection(c) => {
                self.grid
                    .mcat
                    .require_collection(Some(self.user()), c, needed)
            }
        }
    }

    // ------------------------------------------------------------ triplets --

    /// Attach a user-defined triplet. "User-defined metadata and
    /// type-oriented metadata can be ingested only by users who have
    /// 'ownership' permission."
    pub fn add_metadata(&self, path: &str, triplet: Triplet) -> SrbResult<Receipt> {
        self.check_session()?;
        let receipt = self.mcat_rpc()?;
        let subject = self.subject_of(path)?;
        self.require_subject(subject, Permission::Own)?;
        self.grid
            .mcat
            .metadata
            .add(&self.grid.mcat.ids, subject, triplet, MetaKind::UserDefined);
        self.audit(AuditAction::MetaChange, path, "ok");
        Ok(receipt)
    }

    /// Attach a type-oriented (schema) triplet, e.g. Dublin Core.
    pub fn add_schema_metadata(
        &self,
        path: &str,
        schema: &str,
        triplet: Triplet,
    ) -> SrbResult<Receipt> {
        self.check_session()?;
        let receipt = self.mcat_rpc()?;
        let subject = self.subject_of(path)?;
        self.require_subject(subject, Permission::Own)?;
        self.grid.mcat.add_type_metadata(subject, schema, triplet)?;
        self.audit(AuditAction::MetaChange, path, "ok");
        Ok(receipt)
    }

    /// All metadata rows on an object or collection (requires Read).
    pub fn metadata(&self, path: &str) -> SrbResult<Vec<MetaRow>> {
        self.check_session()?;
        let subject = self.subject_of(path)?;
        self.require_subject(subject, Permission::Read)?;
        Ok(self.grid.mcat.metadata.for_subject(subject))
    }

    /// Update one row's value/units (Own).
    pub fn update_metadata(
        &self,
        path: &str,
        meta_id: srb_types::MetaId,
        value: MetaValue,
        units: &str,
    ) -> SrbResult<Receipt> {
        self.check_session()?;
        let receipt = self.mcat_rpc()?;
        let subject = self.subject_of(path)?;
        self.require_subject(subject, Permission::Own)?;
        self.grid
            .mcat
            .metadata
            .update(meta_id, value, units.to_string())?;
        self.audit(AuditAction::MetaChange, path, "ok");
        Ok(receipt)
    }

    /// Delete one metadata row (Own).
    pub fn delete_metadata(&self, path: &str, meta_id: srb_types::MetaId) -> SrbResult<Receipt> {
        self.check_session()?;
        let receipt = self.mcat_rpc()?;
        let subject = self.subject_of(path)?;
        self.require_subject(subject, Permission::Own)?;
        self.grid.mcat.metadata.remove(meta_id)?;
        self.audit(AuditAction::MetaChange, path, "ok");
        Ok(receipt)
    }

    /// Copy user/type metadata from another object (ingestion method 3).
    pub fn copy_metadata(&self, from: &str, to: &str) -> SrbResult<usize> {
        self.check_session()?;
        let src = self.subject_of(from)?;
        let dst = self.subject_of(to)?;
        self.require_subject(src, Permission::Read)?;
        self.require_subject(dst, Permission::Own)?;
        let n = self.grid.mcat.metadata.copy(&self.grid.mcat.ids, src, dst);
        self.audit(AuditAction::MetaChange, &format!("{from} -> {to}"), "ok");
        Ok(n)
    }

    /// Extraction method 4a: run a T-language script over the object's own
    /// content and attach the extracted triplets.
    pub fn extract_metadata(&self, path: &str, script: &str) -> SrbResult<Vec<Triplet>> {
        self.check_session()?;
        let subject = self.subject_of(path)?;
        self.require_subject(subject, Permission::Own)?;
        let Subject::Dataset(ds) = subject else {
            return Err(SrbError::Unsupported(
                "metadata extraction applies to datasets".into(),
            ));
        };
        let (bytes, _) = self.read_dataset_bytes(ds)?;
        let tscript = TScript::parse(script)?;
        let triplets = tscript.extract(&String::from_utf8_lossy(&bytes));
        for t in &triplets {
            self.grid.mcat.metadata.add(
                &self.grid.mcat.ids,
                subject,
                t.clone(),
                MetaKind::UserDefined,
            );
        }
        self.audit(AuditAction::MetaChange, path, "ok");
        Ok(triplets)
    }

    /// Extraction method 4b: extract from a *second* object (e.g. a DICOM
    /// header file) and attach to the first.
    pub fn extract_metadata_from(
        &self,
        source: &str,
        target: &str,
        script: &str,
    ) -> SrbResult<Vec<Triplet>> {
        self.check_session()?;
        let src = self.subject_of(source)?;
        let dst = self.subject_of(target)?;
        self.require_subject(src, Permission::Read)?;
        self.require_subject(dst, Permission::Own)?;
        let Subject::Dataset(src_ds) = src else {
            return Err(SrbError::Unsupported("source must be a dataset".into()));
        };
        let (bytes, _) = self.read_dataset_bytes(src_ds)?;
        let tscript = TScript::parse(script)?;
        let triplets = tscript.extract(&String::from_utf8_lossy(&bytes));
        for t in &triplets {
            self.grid.mcat.metadata.add(
                &self.grid.mcat.ids,
                dst,
                t.clone(),
                MetaKind::FileBased(src_ds),
            );
        }
        self.audit(AuditAction::MetaChange, target, "ok");
        Ok(triplets)
    }

    /// Associate a file already in SRB as a metadata-carrying file for
    /// another object ("file-based metadata … for viewing"). One file may
    /// serve many objects.
    pub fn attach_meta_file(&self, target: &str, carrier: &str) -> SrbResult<Receipt> {
        self.check_session()?;
        let receipt = self.mcat_rpc()?;
        let dst = self.subject_of(target)?;
        self.require_subject(dst, Permission::Own)?;
        let carrier_lp = self.parse(carrier)?;
        let carrier_ds = self.grid.mcat.resolve_dataset(&carrier_lp)?;
        self.grid.mcat.metadata.attach_meta_file(dst, carrier_ds);
        self.audit(AuditAction::MetaChange, target, "ok");
        Ok(receipt)
    }

    /// Render a subject's file-based metadata. Carrier files hold either
    /// `name|value|units` lines (the paper's triplet format) or XML
    /// metadata documents (the paper's "later release" format — see
    /// [`crate::xmlmeta`]); the format is auto-detected per carrier.
    pub fn view_meta_files(&self, path: &str) -> SrbResult<Vec<Triplet>> {
        self.check_session()?;
        let subject = self.subject_of(path)?;
        self.require_subject(subject, Permission::Read)?;
        let mut out = Vec::new();
        for carrier in self.grid.mcat.metadata.meta_files_of(subject) {
            let (bytes, _) = self.read_dataset_bytes(carrier)?;
            let text = String::from_utf8_lossy(&bytes);
            if crate::xmlmeta::looks_like_xml(&text) {
                out.extend(crate::xmlmeta::parse_xml_triplets(&text)?);
                continue;
            }
            for line in text.lines() {
                let mut parts = line.splitn(3, '|');
                let name = parts.next().unwrap_or("").trim();
                if name.is_empty() {
                    continue;
                }
                let value = parts.next().unwrap_or("").trim();
                let units = parts.next().unwrap_or("").trim();
                out.push(Triplet::new(name, MetaValue::parse(value), units));
            }
        }
        Ok(out)
    }

    // --------------------------------------------------------- annotations --

    /// Annotate an object — any user with *read* permission may.
    pub fn annotate(
        &self,
        path: &str,
        kind: AnnotationKind,
        location: &str,
        text: &str,
    ) -> SrbResult<Receipt> {
        self.check_session()?;
        let receipt = self.mcat_rpc()?;
        let subject = self.subject_of(path)?;
        self.require_subject(subject, Permission::Annotate)?;
        self.grid.mcat.annotations.add(
            &self.grid.mcat.ids,
            subject,
            self.user(),
            self.now(),
            kind,
            location,
            text,
        );
        self.audit(AuditAction::MetaChange, path, "ok");
        Ok(receipt)
    }

    /// List an object's annotations.
    pub fn annotations(&self, path: &str) -> SrbResult<Vec<Annotation>> {
        self.check_session()?;
        let subject = self.subject_of(path)?;
        self.require_subject(subject, Permission::Read)?;
        Ok(self.grid.mcat.annotations.for_subject(subject))
    }

    /// Delete one's own annotation.
    pub fn delete_annotation(&self, id: srb_types::AnnotationId) -> SrbResult<()> {
        self.check_session()?;
        self.grid.mcat.annotations.remove(id, self.user())
    }

    // --------------------------------------------------------------- query --

    /// Run a conjunctive query; hits the user may not Discover are
    /// filtered out.
    pub fn query(&self, q: &Query) -> SrbResult<(Vec<QueryHit>, Receipt)> {
        let user = self.check_session()?;
        let receipt = self.mcat_rpc()?;
        let hits = self.grid.mcat.query(q)?;
        let visible = hits
            .into_iter()
            .filter(|h| {
                self.grid
                    .mcat
                    .effective_on_dataset(Some(user), h.dataset)
                    .map(|p| p.allows(Permission::Read))
                    .unwrap_or(false)
            })
            .collect();
        self.audit(AuditAction::Query, &q.scope.to_string(), "ok");
        Ok((visible, receipt))
    }

    /// Paging helper for the MySRB result listing: run `q` with an
    /// *unordered* limit of `n`, letting the catalog short-circuit
    /// candidate verification as soon as `n` hits confirm ("show me some
    /// matches fast"). The hits are real matches, sorted among themselves,
    /// but not necessarily the first `n` in global path order; permission
    /// filtering happens afterwards, so fewer than `n` rows may come back
    /// even when more matches exist.
    pub fn query_first(&self, q: &Query, n: usize) -> SrbResult<(Vec<QueryHit>, Receipt)> {
        let q = q.clone().first_hits(n);
        self.query(&q)
    }

    /// One ordered page of query results through the catalog's resumable
    /// cursor (`token` from the previous page, `None` to start). Pages
    /// are in path order and cost O(page) verification regardless of how
    /// deep the cursor is; a catalog mutation in between invalidates the
    /// token with `SrbError::Invalid` and the caller restarts. Hits the
    /// user may not Read are filtered *after* paging, so a page may come
    /// back short while more pages remain.
    pub fn query_page(
        &self,
        q: &Query,
        token: Option<&str>,
        page: usize,
    ) -> SrbResult<(Vec<QueryHit>, Option<String>, Receipt)> {
        let user = self.check_session()?;
        let receipt = self.mcat_rpc()?;
        let (hits, next) = self.grid.mcat.query_page(q, token, page)?;
        let visible = hits
            .into_iter()
            .filter(|h| {
                self.grid
                    .mcat
                    .effective_on_dataset(Some(user), h.dataset)
                    .map(|p| p.allows(Permission::Read))
                    .unwrap_or(false)
            })
            .collect();
        self.audit(AuditAction::Query, &q.scope.to_string(), "ok");
        Ok((visible, next, receipt))
    }

    /// The scan-path baseline of the same query (ablation A1).
    pub fn query_scan(&self, q: &Query) -> SrbResult<(Vec<QueryHit>, Receipt)> {
        let user = self.check_session()?;
        let receipt = self.mcat_rpc()?;
        let hits = self.grid.mcat.query_scan(q)?;
        let visible = hits
            .into_iter()
            .filter(|h| {
                self.grid
                    .mcat
                    .effective_on_dataset(Some(user), h.dataset)
                    .map(|p| p.allows(Permission::Read))
                    .unwrap_or(false)
            })
            .collect();
        self.audit(AuditAction::Query, &q.scope.to_string(), "ok");
        Ok((visible, receipt))
    }

    // ----------------------------------------------------------------- acl --

    /// Grant a permission level to a user on an object or collection
    /// (Own required; "the selection should be done by the owner").
    pub fn grant(
        &self,
        path: &str,
        grantee: srb_types::UserId,
        level: Permission,
    ) -> SrbResult<()> {
        self.check_session()?;
        let subject = self.subject_of(path)?;
        self.require_subject(subject, Permission::Own)?;
        match subject {
            Subject::Dataset(d) => self.grid.mcat.datasets.update(d, |ds| {
                ds.acl.grant_user(grantee, level);
                Ok(())
            })?,
            Subject::Collection(c) => {
                let mut acl = self.grid.mcat.collections.get(c)?.acl;
                acl.grant_user(grantee, level);
                self.grid.mcat.collections.set_acl(c, acl)?;
            }
        }
        self.audit(AuditAction::AclChange, path, "ok");
        Ok(())
    }

    /// Create a user group (any authenticated user may; the creator is the
    /// first member).
    pub fn create_group(&self, name: &str) -> SrbResult<srb_types::GroupId> {
        let user = self.check_session()?;
        let g = self
            .grid
            .mcat
            .users
            .create_group(&self.grid.mcat.ids, name)?;
        self.grid.mcat.users.add_to_group(user, g)?;
        Ok(g)
    }

    /// Add a user to a group (group members may extend their group).
    pub fn add_to_group(
        &self,
        group: srb_types::GroupId,
        member: srb_types::UserId,
    ) -> SrbResult<()> {
        let user = self.check_session()?;
        let grp = self.grid.mcat.users.get_group(group)?;
        if !grp.members.contains(&user) && !self.grid.mcat.users.get(user)?.is_admin {
            return Err(SrbError::PermissionDenied(format!(
                "only members may extend group '{}'",
                grp.name
            )));
        }
        self.grid.mcat.users.add_to_group(member, group)
    }

    /// Grant a permission level to a *group* on an object or collection
    /// (Own required).
    pub fn grant_group(
        &self,
        path: &str,
        group: srb_types::GroupId,
        level: Permission,
    ) -> SrbResult<()> {
        self.check_session()?;
        let subject = self.subject_of(path)?;
        self.require_subject(subject, Permission::Own)?;
        match subject {
            Subject::Dataset(d) => self.grid.mcat.datasets.update(d, |ds| {
                ds.acl.grant_group(group, level);
                Ok(())
            })?,
            Subject::Collection(c) => {
                let mut acl = self.grid.mcat.collections.get(c)?.acl;
                acl.grant_group(group, level);
                self.grid.mcat.collections.set_acl(c, acl)?;
            }
        }
        self.audit(AuditAction::AclChange, path, "ok");
        Ok(())
    }

    /// Set the anonymous/public level on an object or collection.
    pub fn grant_public(&self, path: &str, level: Permission) -> SrbResult<()> {
        self.check_session()?;
        let subject = self.subject_of(path)?;
        self.require_subject(subject, Permission::Own)?;
        match subject {
            Subject::Dataset(d) => self.grid.mcat.datasets.update(d, |ds| {
                ds.acl.public = level;
                Ok(())
            })?,
            Subject::Collection(c) => {
                let mut acl = self.grid.mcat.collections.get(c)?.acl;
                acl.public = level;
                self.grid.mcat.collections.set_acl(c, acl)?;
            }
        }
        self.audit(AuditAction::AclChange, path, "ok");
        Ok(())
    }
}

//! Data-movement operations: ingest, register, replicate, copy, move,
//! link, delete, and collection management (paper §5, "Data Movement
//! Operations").

use crate::conn::SrbConnection;
use crate::fanout::{self, FanoutOutcome, StoreLeg};
use bytes::Bytes;
use srb_mcat::{AccessSpec, AuditAction, MetaKind, NewDataset, ReplicaStatus, Subject, Template};
use srb_net::Receipt;
use srb_types::{
    sha256_hex, CollectionId, DatasetId, LogicalPath, Permission, ResourceId, SrbError, SrbResult,
    Triplet,
};
use std::collections::HashSet;

/// How to place ingested data.
#[derive(Debug, Clone, Default)]
pub struct IngestOptions {
    /// Target resource name — physical ("unix-sdsc") or logical
    /// ("logrsrc1", which fans out to synchronous replicas).
    pub resource: Option<String>,
    /// Target container name. "A container specification on ingestion
    /// overrides a resource specification."
    pub container: Option<String>,
    /// Data type (drives type-oriented metadata and extraction methods).
    pub data_type: String,
    /// User metadata supplied at ingest time (validated against the
    /// collection's structural requirements).
    pub metadata: Vec<Triplet>,
}

impl IngestOptions {
    /// Ingest to a named resource.
    pub fn to_resource(name: &str) -> Self {
        IngestOptions {
            resource: Some(name.to_string()),
            data_type: "generic".to_string(),
            ..IngestOptions::default()
        }
    }

    /// Ingest into a named container.
    pub fn into_container(name: &str) -> Self {
        IngestOptions {
            container: Some(name.to_string()),
            data_type: "generic".to_string(),
            ..IngestOptions::default()
        }
    }

    /// Set the data type.
    pub fn with_type(mut self, data_type: &str) -> Self {
        self.data_type = data_type.to_string();
        self
    }

    /// Attach a metadata triplet.
    pub fn with_metadata(mut self, t: Triplet) -> Self {
        self.metadata.push(t);
        self
    }
}

/// Registration specs for the paper's five registered-object types.
#[derive(Debug, Clone)]
pub enum RegisterSpec {
    /// Type 1: a file in a file system, archive, or as a database LOB.
    File {
        /// Resource holding the file.
        resource: String,
        /// Physical path within the resource.
        phys_path: String,
    },
    /// Type 2: a directory (shadow directory object).
    Directory {
        /// Resource holding the directory.
        resource: String,
        /// Directory path.
        dir_path: String,
    },
    /// Type 3: a SQL query against a database resource.
    Sql {
        /// Database resource to query.
        resource: String,
        /// Query text (must begin with SELECT).
        sql: String,
        /// Partial query completed at retrieval time.
        partial: bool,
        /// Rendering template.
        template: Template,
    },
    /// Type 4: a URL.
    Url {
        /// The URL.
        url: String,
    },
    /// Type 5: a method object (proxy command or proxy function).
    Method {
        /// Registered command/function name.
        name: String,
        /// True for in-server proxy functions.
        is_function: bool,
        /// Default command-line arguments.
        default_args: Vec<String>,
    },
}

impl SrbConnection<'_> {
    // --------------------------------------------------------- collections --

    /// Create a collection (and any missing ancestors).
    pub fn make_collection(&self, path: &str) -> SrbResult<Receipt> {
        let user = self.check_session()?;
        let lp = self.parse(path)?;
        let receipt = self.mcat_rpc()?;
        let mut cur = LogicalPath::root();
        let mut cur_id = self.grid.mcat.collections.root();
        for comp in lp.components() {
            let next = cur.child(comp)?;
            match self.grid.mcat.collections.resolve(&next) {
                Ok(id) => cur_id = id,
                Err(_) => {
                    self.grid
                        .mcat
                        .require_collection(Some(user), cur_id, Permission::Write)
                        .or_else(|e| {
                            // The admin may build anywhere.
                            if self.grid.mcat.users.get(user)?.is_admin {
                                Ok(())
                            } else {
                                Err(e)
                            }
                        })?;
                    cur_id = self.grid.mcat.collections.create(
                        &self.grid.mcat.ids,
                        cur_id,
                        comp,
                        user,
                        self.now(),
                    )?;
                }
            }
            cur = next;
        }
        self.audit(AuditAction::Ingest, path, "ok");
        Ok(receipt)
    }

    /// Delete a collection. `recursive` removes contained datasets and
    /// sub-collections; otherwise the collection must be empty.
    pub fn delete_collection(&self, path: &str, recursive: bool) -> SrbResult<Receipt> {
        let user = self.check_session()?;
        let lp = self.parse(path)?;
        let mut receipt = self.mcat_rpc()?;
        let coll = self.grid.mcat.collections.resolve_nofollow(&lp)?;
        self.grid
            .mcat
            .require_collection(Some(user), coll, Permission::Own)?;
        // A linked collection node is just unlinked.
        if self.grid.mcat.collections.get(coll)?.link_target.is_some() {
            self.grid.mcat.collections.delete(coll)?;
            self.audit(AuditAction::Delete, path, "ok");
            return Ok(receipt);
        }
        let datasets = self.grid.mcat.datasets.list(coll);
        let subs = self.grid.mcat.collections.children(coll);
        if !recursive && (!datasets.is_empty() || !subs.is_empty()) {
            return Err(SrbError::Invalid(format!("collection '{path}' not empty")));
        }
        if recursive {
            for sub in subs {
                let r = self.delete_collection(&sub.path.to_string(), true)?;
                receipt.absorb(&r);
            }
            for d in datasets {
                let dpath = self.grid.mcat.dataset_path(d.id)?;
                let r = self.delete(&dpath.to_string(), None)?;
                receipt.absorb(&r);
            }
        }
        self.grid.mcat.collections.delete(coll)?;
        self.audit(AuditAction::Delete, path, "ok");
        Ok(receipt)
    }

    // -------------------------------------------------------------- ingest --

    /// Ingest a new file at `path`. A logical-resource target fans the
    /// bytes out to every member concurrently (one shared buffer, one
    /// checksum); members whose resource is down get a `Stale` replica row
    /// repairable via [`SrbConnection::sync_replicas`], as long as at
    /// least one member stored the bytes.
    pub fn ingest(
        &self,
        path: &str,
        data: impl Into<Bytes>,
        opts: IngestOptions,
    ) -> SrbResult<Receipt> {
        let data: Bytes = data.into();
        let user = self.check_session()?;
        let start = self.now();
        let lp = self.parse(path)?;
        let name = lp
            .name()
            .ok_or_else(|| SrbError::Invalid("cannot ingest at the root".into()))?;
        let parent = lp
            .parent()
            .ok_or_else(|| SrbError::Invalid("cannot ingest at the root".into()))?;
        let mut receipt = self.mcat_rpc()?;
        let coll = self.grid.mcat.collections.resolve(&parent)?;
        self.grid
            .mcat
            .require_collection(Some(user), coll, Permission::Write)?;
        self.grid.mcat.validate_structural(coll, &opts.metadata)?;

        // Container placement overrides resource placement.
        if let Some(container) = &opts.container {
            let r = self.ingest_into_container_impl(coll, name, &data, container, &opts, user)?;
            receipt.absorb(&r);
            self.audit(AuditAction::Ingest, path, "ok");
            self.absorb_durability(&mut receipt);
            return Ok(receipt);
        }

        let resource_name = opts
            .resource
            .as_deref()
            .ok_or_else(|| SrbError::Invalid("ingest needs a resource or container".into()))?;
        let targets = self.grid.mcat.resources.resolve_targets(resource_name)?;
        let checksum = sha256_hex(&data);
        let legs: Vec<StoreLeg> = targets
            .iter()
            .map(|rid| StoreLeg {
                resource: *rid,
                phys_path: Self::phys_path(coll, name),
                overwrite: false,
            })
            .collect();
        let fan = self.store_fanout(&legs, &data);
        receipt.absorb(&fan.receipt);
        let ds = self.commit_fanout_dataset(
            coll,
            name,
            &opts.data_type,
            user,
            &legs,
            &fan,
            data.len() as u64,
            &checksum,
        )?;
        self.attach_ingest_metadata(ds, &opts.metadata);
        self.audit(AuditAction::Ingest, path, "ok");
        self.absorb_durability(&mut receipt);
        self.finish_op("ingest", path, start, &receipt);
        Ok(receipt)
    }

    /// Shared catalog commit for `ingest`/`copy`: the legs ran, now create
    /// the dataset row on the caller thread, in leg order. A fatal leg
    /// error aborts the whole operation (stored bytes are rolled back
    /// best-effort); if nothing stored, the first leg error propagates;
    /// retryable failures become `Stale` replica rows whose bytes arrive
    /// at the next resync.
    #[allow(clippy::too_many_arguments)]
    fn commit_fanout_dataset(
        &self,
        coll: CollectionId,
        name: &str,
        data_type: &str,
        user: srb_types::UserId,
        legs: &[StoreLeg],
        fan: &FanoutOutcome,
        size: u64,
        checksum: &str,
    ) -> SrbResult<DatasetId> {
        if let Some(e) = fan.first_fatal() {
            self.undo_stored_legs(legs, &fan.results);
            return Err(e);
        }
        if fan.successes() == 0 {
            return Err(fan.first_err().unwrap_or_else(|| {
                SrbError::NotFound(format!(
                    "no physical resource behind the target for '{name}'"
                ))
            }));
        }
        let mut replicas = Vec::with_capacity(legs.len());
        let mut stale_nums: Vec<u32> = Vec::new();
        for (i, (leg, result)) in legs.iter().zip(&fan.results).enumerate() {
            let spec = AccessSpec::Stored {
                resource: leg.resource,
                phys_path: leg.phys_path.clone(),
            };
            match result {
                Ok(_) => replicas.push((spec, size, Some(checksum.to_string()))),
                Err(_) => {
                    stale_nums.push((i + 1) as u32);
                    replicas.push((spec, size, None));
                }
            }
        }
        let ds = self.grid.mcat.datasets.create(
            &self.grid.mcat.ids,
            coll,
            name,
            data_type,
            user,
            replicas,
            self.now(),
        )?;
        if !stale_nums.is_empty() {
            self.grid.mcat.datasets.update(ds, |d| {
                for r in d.replicas.iter_mut() {
                    if stale_nums.contains(&r.repl_num) {
                        r.status = ReplicaStatus::Stale;
                    }
                }
                Ok(())
            })?;
            if let Some(obs) = self.grid.core_obs() {
                obs.legs_stale.add(stale_nums.len() as u64);
            }
        }
        Ok(ds)
    }

    /// Overwrite an object's data; all up replicas are updated
    /// synchronously (fanning out concurrently under the connection's
    /// [`crate::fanout::FanoutMode`]), replicas on failed resources are
    /// marked stale. If a leg fails fatally after other replicas accepted
    /// the bytes, the partial staleness vector is committed *before* the
    /// error propagates, so the catalog never claims a missed write was
    /// applied.
    pub fn write(&self, path: &str, data: impl Into<Bytes>) -> SrbResult<Receipt> {
        let data: Bytes = data.into();
        let user = self.check_session()?;
        let start = self.now();
        let lp = self.parse(path)?;
        let mut receipt = self.mcat_rpc()?;
        let ds_id = self.grid.mcat.resolve_dataset(&lp)?;
        let ds = self.grid.mcat.datasets.resolve_links(ds_id)?;
        self.grid
            .mcat
            .require_dataset(Some(user), ds.id, Permission::Write)?;
        ds.write_allowed_by_locks(user, self.now())?;
        // Reject unsupported replica kinds before any bytes move.
        for replica in &ds.replicas {
            if replica.in_container.is_some() {
                continue;
            }
            match &replica.spec {
                AccessSpec::Stored { .. } => {}
                AccessSpec::RegisteredFile { .. } => {
                    return Err(SrbError::Unsupported(
                        "cannot write through a registered file (not under SRB control)".into(),
                    ))
                }
                other => {
                    return Err(SrbError::Unsupported(format!(
                        "cannot write a {} object",
                        other.type_label()
                    )))
                }
            }
        }
        let checksum = sha256_hex(&data);
        // Container slices rewrite inline (they share one container file
        // and must not race); standalone stored replicas fan out.
        let mut staleness: Vec<(u32, ReplicaStatus)> = Vec::new();
        let mut legs: Vec<StoreLeg> = Vec::new();
        let mut leg_nums: Vec<u32> = Vec::new();
        for replica in &ds.replicas {
            if let Some(slice) = replica.in_container {
                let r = self.rewrite_container_slice(ds.id, slice, &data)?;
                receipt.absorb(&r);
                staleness.push((replica.repl_num, ReplicaStatus::UpToDate));
                continue;
            }
            if let AccessSpec::Stored {
                resource,
                phys_path,
            } = &replica.spec
            {
                legs.push(StoreLeg {
                    resource: *resource,
                    phys_path: phys_path.clone(),
                    overwrite: true,
                });
                leg_nums.push(replica.repl_num);
            }
        }
        let fan = self.store_fanout(&legs, &data);
        receipt.absorb(&fan.receipt);
        for (num, result) in leg_nums.iter().zip(&fan.results) {
            let status = if result.is_ok() {
                ReplicaStatus::UpToDate
            } else {
                ReplicaStatus::Stale
            };
            staleness.push((*num, status));
        }
        if !staleness.iter().any(|(_, s)| *s == ReplicaStatus::UpToDate) {
            // Nothing accepted the write: every replica still holds the
            // old (mutually consistent) version, so nothing goes stale.
            return Err(fan.first_fatal().unwrap_or_else(|| {
                SrbError::ResourceUnavailable("no replica accepted the write".into())
            }));
        }
        let now = self.now();
        self.grid.mcat.datasets.update(ds.id, |d| {
            for (num, status) in &staleness {
                if let Some(r) = d.replicas.iter_mut().find(|r| r.repl_num == *num) {
                    r.status = *status;
                    if *status == ReplicaStatus::UpToDate {
                        r.size = data.len() as u64;
                        r.checksum = Some(checksum.clone());
                    }
                }
            }
            d.modified = now;
            Ok(())
        })?;
        // Accounting invariant (the chaos oracle asserts it): legs_stale
        // counts transitions *into* Stale and repairs counts transitions
        // *out* (a write landing on a previously-stale replica repairs it),
        // so legs_stale − repairs equals the catalog's live stale count.
        if let Some(obs) = self.grid.core_obs() {
            let mut went_stale = 0u64;
            let mut repaired = 0u64;
            for (num, status) in &staleness {
                let was_stale = ds
                    .replicas
                    .iter()
                    .find(|r| r.repl_num == *num)
                    .map(|r| r.status == ReplicaStatus::Stale)
                    .unwrap_or(false);
                match (was_stale, *status == ReplicaStatus::Stale) {
                    (false, true) => went_stale += 1,
                    (true, false) => repaired += 1,
                    _ => {}
                }
            }
            obs.legs_stale.add(went_stale);
            obs.repairs.add(repaired);
        }
        if let Some(e) = fan.first_fatal() {
            self.audit(AuditAction::Write, path, e.code());
            return Err(e);
        }
        self.audit(AuditAction::Write, path, "ok");
        self.absorb_durability(&mut receipt);
        self.finish_op("write", path, start, &receipt);
        Ok(receipt)
    }

    /// Re-ingest: replace the data, keeping all linked metadata (paper:
    /// "a user can reingest a file (i.e., all metadata associated with the
    /// file by the SRB are still linked to it)").
    pub fn reingest(&self, path: &str, data: impl Into<Bytes>) -> SrbResult<Receipt> {
        self.write(path, data.into())
    }

    // --------------------------------------------------------- bulk ingest --

    /// Ingest many small files into one collection in a single brokered
    /// call — the batched counterpart of [`SrbConnection::ingest`] for
    /// archive-bound workloads where per-file round trips dominate.
    ///
    /// The whole batch pays for *one* session check, *one* structural-
    /// metadata validation, *one* MCAT round trip, *one* audit row, and
    /// two catalog lock acquisitions (dataset rows, metadata rows); the
    /// physical stores fan out across files under the connection's
    /// [`crate::fanout::FanoutMode`], with each file's checksum computed
    /// inside its own leg so hashing parallelizes too.
    ///
    /// All-or-nothing at the catalog: a duplicate name (in the collection
    /// or within the batch), a fatal storage error, or a file no target
    /// accepted aborts the call, rolls back any stored bytes best-effort,
    /// and leaves the catalog untouched. A file that reaches *some* but
    /// not all targets gets `Stale` rows for the missed ones, exactly
    /// like single-file ingest. Returns the created dataset ids in batch
    /// order plus the composed receipt.
    pub fn ingest_bulk(
        &self,
        coll_path: &str,
        files: Vec<(String, Bytes)>,
        opts: &IngestOptions,
    ) -> SrbResult<(Vec<DatasetId>, Receipt)> {
        let user = self.check_session()?;
        if opts.container.is_some() {
            return Err(SrbError::Unsupported(
                "bulk ingest into a container is not supported; use per-file ingest".into(),
            ));
        }
        let lp = self.parse(coll_path)?;
        let mut receipt = self.mcat_rpc()?;
        let coll = self.grid.mcat.collections.resolve(&lp)?;
        self.grid
            .mcat
            .require_collection(Some(user), coll, Permission::Write)?;
        self.grid.mcat.validate_structural(coll, &opts.metadata)?;
        let resource_name = opts
            .resource
            .as_deref()
            .ok_or_else(|| SrbError::Invalid("bulk ingest needs a resource".into()))?;
        let targets = self.grid.mcat.resources.resolve_targets(resource_name)?;
        if targets.is_empty() {
            return Err(SrbError::NotFound(format!(
                "no physical resource behind '{resource_name}'"
            )));
        }
        // Reject duplicate names before any bytes move — one read guard
        // covers the whole batch.
        {
            let batch = self.grid.mcat.datasets.batch();
            let mut seen: HashSet<&str> = HashSet::with_capacity(files.len());
            for (name, _) in &files {
                if batch.contains_name(coll, name) || !seen.insert(name.as_str()) {
                    return Err(SrbError::AlreadyExists(format!(
                        "dataset '{name}' in collection {coll}"
                    )));
                }
            }
        }
        // One leg per file: hash, then push to every target. The legs are
        // pure storage I/O; every catalog mutation happens after the join,
        // in batch order, so parallel and sequential runs commit
        // identical state.
        struct BulkLeg {
            checksum: String,
            stores: Vec<SrbResult<Receipt>>,
            cost: Receipt,
        }
        let mode = self.fanout_mode();
        let leg_results: Vec<BulkLeg> = fanout::run_legs(mode, files.len(), |i| {
            let (name, data) = &files[i];
            let checksum = sha256_hex(data);
            let phys = Self::phys_path(coll, name);
            let mut cost = Receipt::free();
            let stores: Vec<SrbResult<Receipt>> = targets
                .iter()
                .map(|rid| {
                    let r = self.store_bytes_retry(*rid, &phys, data, false);
                    if let Ok(rr) = &r {
                        cost.absorb(rr);
                    }
                    r
                })
                .collect();
            BulkLeg {
                checksum,
                stores,
                cost,
            }
        });
        let leg_costs: Vec<Receipt> = leg_results.iter().map(|l| l.cost.clone()).collect();
        let (bulk_cost, wait_ns) = fanout::compose_with_wait(mode, &leg_costs);
        receipt.absorb(&bulk_cost);
        if let Some(obs) = self.grid.core_obs() {
            obs.legs_dispatched
                .add((files.len() * targets.len()) as u64);
            obs.queue_wait.observe(wait_ns);
        }
        // A fatal error anywhere, or a file no target accepted, aborts the
        // batch before the catalog is touched.
        let mut abort: Option<SrbError> = leg_results
            .iter()
            .flat_map(|l| l.stores.iter())
            .filter_map(|r| r.as_ref().err())
            .find(|e| !e.is_retryable())
            .cloned();
        if abort.is_none() {
            abort = leg_results
                .iter()
                .find(|l| l.stores.iter().all(|r| r.is_err()))
                .and_then(|l| l.stores.iter().filter_map(|r| r.as_ref().err()).next())
                .cloned();
        }
        if let Some(e) = abort {
            for ((name, _), leg) in files.iter().zip(&leg_results) {
                let phys = Self::phys_path(coll, name);
                for (rid, r) in targets.iter().zip(&leg.stores) {
                    if r.is_ok() {
                        if let Ok(driver) = self.grid.driver(*rid) {
                            let _ = driver.driver().delete(&phys);
                        }
                    }
                }
            }
            return Err(e);
        }
        // Catalog commit: one write-locked batch for the dataset rows, one
        // for the metadata rows, one audit record for the whole batch.
        let rows: Vec<NewDataset> = files
            .iter()
            .zip(&leg_results)
            .map(|((name, data), leg)| NewDataset {
                name: name.clone(),
                replicas: targets
                    .iter()
                    .zip(&leg.stores)
                    .map(|(rid, r)| {
                        let spec = AccessSpec::Stored {
                            resource: *rid,
                            phys_path: Self::phys_path(coll, name),
                        };
                        match r {
                            Ok(_) => (
                                spec,
                                data.len() as u64,
                                Some(leg.checksum.clone()),
                                ReplicaStatus::UpToDate,
                            ),
                            Err(_) => (spec, data.len() as u64, None, ReplicaStatus::Stale),
                        }
                    })
                    .collect(),
            })
            .collect();
        if let Some(obs) = self.grid.core_obs() {
            let stale = rows
                .iter()
                .flat_map(|r| r.replicas.iter())
                .filter(|(_, _, _, s)| *s == ReplicaStatus::Stale)
                .count();
            obs.legs_stale.add(stale as u64);
            let failed = leg_results
                .iter()
                .flat_map(|l| l.stores.iter())
                .filter(|r| r.is_err())
                .count();
            obs.legs_failed.add(failed as u64);
        }
        let ids = self.grid.mcat.datasets.create_batch(
            &self.grid.mcat.ids,
            coll,
            &opts.data_type,
            user,
            rows,
            self.now(),
        )?;
        if !opts.metadata.is_empty() {
            self.grid.mcat.metadata.add_batch(
                &self.grid.mcat.ids,
                ids.iter().flat_map(|ds| {
                    opts.metadata
                        .iter()
                        .map(move |t| (Subject::Dataset(*ds), t.clone(), MetaKind::UserDefined))
                }),
            );
        }
        self.audit(
            AuditAction::Ingest,
            &format!("{coll_path} [bulk {} files]", files.len()),
            "ok",
        );
        Ok((ids, receipt))
    }

    // ------------------------------------------------------------ register --

    /// Register an external object (paper §4's five types). No data is
    /// copied; SRB stores a pointer/spec.
    pub fn register(
        &self,
        path: &str,
        spec: RegisterSpec,
        opts: IngestOptions,
    ) -> SrbResult<Receipt> {
        let user = self.check_session()?;
        let lp = self.parse(path)?;
        let name = lp
            .name()
            .ok_or_else(|| SrbError::Invalid("cannot register at the root".into()))?;
        let parent = lp
            .parent()
            .ok_or_else(|| SrbError::Invalid("cannot register at the root".into()))?;
        let receipt = self.mcat_rpc()?;
        let coll = self.grid.mcat.collections.resolve(&parent)?;
        self.grid
            .mcat
            .require_collection(Some(user), coll, Permission::Write)?;
        self.grid.mcat.validate_structural(coll, &opts.metadata)?;
        let (access, size) = self.resolve_register_spec(&spec)?;
        let data_type = if opts.data_type.is_empty() || opts.data_type == "generic" {
            access.type_label().to_string()
        } else {
            opts.data_type.clone()
        };
        let ds = self.grid.mcat.datasets.create(
            &self.grid.mcat.ids,
            coll,
            name,
            &data_type,
            user,
            vec![(access, size, None)],
            self.now(),
        )?;
        self.attach_ingest_metadata(ds, &opts.metadata);
        self.audit(AuditAction::Register, path, "ok");
        Ok(receipt)
    }

    pub(crate) fn resolve_register_spec(
        &self,
        spec: &RegisterSpec,
    ) -> SrbResult<(AccessSpec, u64)> {
        Ok(match spec {
            RegisterSpec::File {
                resource,
                phys_path,
            } => {
                let rid = self.grid.resource_id(resource)?;
                let driver = self.grid.driver(rid)?;
                let stat = driver.driver().stat(phys_path)?;
                (
                    AccessSpec::RegisteredFile {
                        resource: rid,
                        phys_path: phys_path.clone(),
                    },
                    stat.size,
                )
            }
            RegisterSpec::Directory { resource, dir_path } => {
                let rid = self.grid.resource_id(resource)?;
                let driver = self.grid.driver(rid)?;
                if driver.as_fs().is_none() {
                    return Err(SrbError::Unsupported(
                        "shadow directories require a file-system resource".into(),
                    ));
                }
                (
                    AccessSpec::ShadowDir {
                        resource: rid,
                        dir_path: dir_path.clone(),
                    },
                    0,
                )
            }
            RegisterSpec::Sql {
                resource,
                sql,
                partial,
                template,
            } => {
                // "For security reasons, we recommend that one register only
                // 'select' commands" — we enforce it.
                if !sql.trim_start().to_ascii_lowercase().starts_with("select") {
                    return Err(SrbError::Invalid(
                        "registered SQL must start with SELECT".into(),
                    ));
                }
                let rid = self.grid.resource_id(resource)?;
                if self.grid.driver(rid)?.as_db().is_none() {
                    return Err(SrbError::Unsupported(
                        "SQL objects require a database resource".into(),
                    ));
                }
                (
                    AccessSpec::Sql {
                        resource: rid,
                        sql: sql.clone(),
                        partial: *partial,
                        template: template.clone(),
                    },
                    0,
                )
            }
            RegisterSpec::Url { url } => (AccessSpec::Url { url: url.clone() }, 0),
            RegisterSpec::Method {
                name,
                is_function,
                default_args,
            } => (
                AccessSpec::Method {
                    name: name.clone(),
                    is_function: *is_function,
                    default_args: default_args.clone(),
                },
                0,
            ),
        })
    }

    // ----------------------------------------------------------- replicate --

    /// Create a new physical replica on `resource_name`. "The new replica
    /// inherits all metadata associated with its siblings."
    pub fn replicate(&self, path: &str, resource_name: &str) -> SrbResult<Receipt> {
        let user = self.check_session()?;
        let start = self.now();
        let lp = self.parse(path)?;
        let mut receipt = self.mcat_rpc()?;
        let ds_id = self.grid.mcat.resolve_dataset(&lp)?;
        let ds = self.grid.mcat.datasets.resolve_links(ds_id)?;
        self.grid
            .mcat
            .require_dataset(Some(user), ds.id, Permission::Write)?;
        if ds.replicas.iter().any(|r| r.in_container.is_some()) {
            return Err(SrbError::Unsupported(
                "replication of files inside a container is not supported by this \
                 operation (the container replicates as a whole)"
                    .into(),
            ));
        }
        let (data, read_receipt) = self.read_dataset_bytes(ds.id)?;
        receipt.absorb(&read_receipt);
        let targets = self.grid.mcat.resources.resolve_targets(resource_name)?;
        let checksum = sha256_hex(&data);
        let base = Self::phys_path(ds.coll, &ds.name);
        let next = ds.max_repl_num() + 1;
        let legs: Vec<StoreLeg> = targets
            .iter()
            .enumerate()
            .map(|(i, rid)| StoreLeg {
                resource: *rid,
                phys_path: format!("{base}.r{}", next + i as u32),
                overwrite: false,
            })
            .collect();
        let fan = self.store_fanout(&legs, &data);
        receipt.absorb(&fan.receipt);
        self.commit_fanout_replicas(ds.id, &legs, &fan, data.len() as u64, &checksum)?;
        self.audit(AuditAction::Replicate, path, "ok");
        self.absorb_durability(&mut receipt);
        self.finish_op("replicate", path, start, &receipt);
        Ok(receipt)
    }

    /// Shared catalog commit for `replicate`/`ingest_replica`: add one
    /// replica row per leg, in leg order — `UpToDate` for stored legs,
    /// `Stale` (repairable at resync) for legs whose resource was down.
    /// Commits every successful leg *before* propagating a fatal leg
    /// error; with no successes at all, the first leg error propagates
    /// and the catalog is untouched.
    fn commit_fanout_replicas(
        &self,
        ds: DatasetId,
        legs: &[StoreLeg],
        fan: &FanoutOutcome,
        size: u64,
        checksum: &str,
    ) -> SrbResult<()> {
        if fan.successes() == 0 {
            if let Some(e) = fan.first_err() {
                return Err(e);
            }
            return Ok(()); // zero targets: nothing to do
        }
        for (leg, result) in legs.iter().zip(&fan.results) {
            let spec = AccessSpec::Stored {
                resource: leg.resource,
                phys_path: leg.phys_path.clone(),
            };
            match result {
                Ok(_) => {
                    self.grid.mcat.datasets.add_replica(
                        &self.grid.mcat.ids,
                        ds,
                        spec,
                        size,
                        Some(checksum.to_string()),
                        self.now(),
                    )?;
                }
                Err(e) if e.is_retryable() => {
                    self.grid.mcat.datasets.add_replica_with_status(
                        &self.grid.mcat.ids,
                        ds,
                        spec,
                        size,
                        None,
                        ReplicaStatus::Stale,
                        self.now(),
                    )?;
                    if let Some(obs) = self.grid.core_obs() {
                        obs.legs_stale.inc();
                    }
                }
                Err(_) => {} // fatal: no row; error propagates below
            }
        }
        if let Some(e) = fan.first_fatal() {
            return Err(e);
        }
        Ok(())
    }

    /// Register another spec as a replica of an existing object ("register
    /// replicate"; SRB "does not check whether a registered replica is
    /// really an equal of the other copy").
    pub fn register_replica(&self, path: &str, spec: RegisterSpec) -> SrbResult<Receipt> {
        let user = self.check_session()?;
        let lp = self.parse(path)?;
        let receipt = self.mcat_rpc()?;
        let ds_id = self.grid.mcat.resolve_dataset(&lp)?;
        let ds = self.grid.mcat.datasets.resolve_links(ds_id)?;
        self.grid
            .mcat
            .require_dataset(Some(user), ds.id, Permission::Write)?;
        let (access, size) = self.resolve_register_spec(&spec)?;
        self.grid.mcat.datasets.add_replica(
            &self.grid.mcat.ids,
            ds.id,
            access,
            size,
            None,
            self.now(),
        )?;
        self.audit(AuditAction::Replicate, path, "ok");
        Ok(receipt)
    }

    /// Ingest new bytes as a replica ("ingest replica": e.g. a tiff and a
    /// gif of the same image; SRB "does not check for syntactic or semantic
    /// equality").
    pub fn ingest_replica(
        &self,
        path: &str,
        data: impl Into<Bytes>,
        resource_name: &str,
    ) -> SrbResult<Receipt> {
        let data: Bytes = data.into();
        let user = self.check_session()?;
        let lp = self.parse(path)?;
        let mut receipt = self.mcat_rpc()?;
        let ds_id = self.grid.mcat.resolve_dataset(&lp)?;
        let ds = self.grid.mcat.datasets.resolve_links(ds_id)?;
        self.grid
            .mcat
            .require_dataset(Some(user), ds.id, Permission::Write)?;
        let targets = self.grid.mcat.resources.resolve_targets(resource_name)?;
        let checksum = sha256_hex(&data);
        let base = Self::phys_path(ds.coll, &ds.name);
        let next = ds.max_repl_num() + 1;
        let legs: Vec<StoreLeg> = targets
            .iter()
            .enumerate()
            .map(|(i, rid)| StoreLeg {
                resource: *rid,
                phys_path: format!("{base}.ir{}", next + i as u32),
                overwrite: false,
            })
            .collect();
        let fan = self.store_fanout(&legs, &data);
        receipt.absorb(&fan.receipt);
        self.commit_fanout_replicas(ds.id, &legs, &fan, data.len() as u64, &checksum)?;
        self.audit(AuditAction::Replicate, path, "ok");
        Ok(receipt)
    }

    // ------------------------------------------------------------ copy/move --

    /// Copy an object to a new path. "The copy command does not copy any
    /// user-defined metadata or annotations … these two objects are
    /// considered to be entirely different and unconnected."
    pub fn copy(&self, src: &str, dst: &str, resource_name: &str) -> SrbResult<Receipt> {
        let user = self.check_session()?;
        let src_lp = self.parse(src)?;
        let dst_lp = self.parse(dst)?;
        let mut receipt = self.mcat_rpc()?;
        let src_id = self.grid.mcat.resolve_dataset(&src_lp)?;
        let src_ds = self.grid.mcat.datasets.resolve_links(src_id)?;
        self.grid
            .mcat
            .require_dataset(Some(user), src_ds.id, Permission::Read)?;
        // "Currently we do not support copy of URL, SQL or method objects."
        if !src_ds
            .replicas
            .first()
            .map(|r| r.spec.is_byte_addressable())
            .unwrap_or(false)
        {
            return Err(SrbError::Unsupported(format!(
                "copy of {} objects is not supported",
                src_ds.type_label()
            )));
        }
        let dst_name = dst_lp
            .name()
            .ok_or_else(|| SrbError::Invalid("destination is the root".into()))?;
        let dst_parent = dst_lp
            .parent()
            .ok_or_else(|| SrbError::Invalid("destination is the root".into()))?;
        let dst_coll = self.grid.mcat.collections.resolve(&dst_parent)?;
        self.grid
            .mcat
            .require_collection(Some(user), dst_coll, Permission::Write)?;
        let (data, read_receipt) = self.read_dataset_bytes(src_ds.id)?;
        receipt.absorb(&read_receipt);
        let targets = self.grid.mcat.resources.resolve_targets(resource_name)?;
        let checksum = sha256_hex(&data);
        let legs: Vec<StoreLeg> = targets
            .iter()
            .map(|rid| StoreLeg {
                resource: *rid,
                phys_path: Self::phys_path(dst_coll, dst_name),
                overwrite: false,
            })
            .collect();
        let fan = self.store_fanout(&legs, &data);
        receipt.absorb(&fan.receipt);
        self.commit_fanout_dataset(
            dst_coll,
            dst_name,
            &src_ds.data_type,
            user,
            &legs,
            &fan,
            data.len() as u64,
            &checksum,
        )?;
        self.audit(AuditAction::Copy, &format!("{src} -> {dst}"), "ok");
        Ok(receipt)
    }

    /// Logical move: re-home the object (or collection) in the name space;
    /// "the user-defined metadata remains unchanged".
    pub fn move_logical(&self, src: &str, dst: &str) -> SrbResult<Receipt> {
        let user = self.check_session()?;
        let src_lp = self.parse(src)?;
        let dst_lp = self.parse(dst)?;
        let receipt = self.mcat_rpc()?;
        let dst_name = dst_lp
            .name()
            .ok_or_else(|| SrbError::Invalid("destination is the root".into()))?;
        let dst_parent = dst_lp
            .parent()
            .ok_or_else(|| SrbError::Invalid("destination is the root".into()))?;
        let dst_coll = self.grid.mcat.collections.resolve(&dst_parent)?;
        self.grid
            .mcat
            .require_collection(Some(user), dst_coll, Permission::Write)?;
        // Dataset move, or collection move?
        if let Ok(ds) = self.grid.mcat.resolve_dataset(&src_lp) {
            self.grid
                .mcat
                .require_dataset(Some(user), ds, Permission::Own)?;
            self.grid
                .mcat
                .datasets
                .move_dataset(ds, dst_coll, dst_name)?;
        } else {
            let coll = self.grid.mcat.collections.resolve_nofollow(&src_lp)?;
            self.grid
                .mcat
                .require_collection(Some(user), coll, Permission::Own)?;
            self.grid
                .mcat
                .collections
                .move_collection(coll, dst_coll, dst_name)?;
        }
        self.audit(AuditAction::Move, &format!("{src} -> {dst}"), "ok");
        Ok(receipt)
    }

    /// Physical move: relocate the bytes of an ingested object to another
    /// resource, keeping the logical path. "Container-based files cannot be
    /// moved using this operation."
    pub fn move_physical(
        &self,
        path: &str,
        repl_num: u32,
        resource_name: &str,
    ) -> SrbResult<Receipt> {
        let user = self.check_session()?;
        let lp = self.parse(path)?;
        let mut receipt = self.mcat_rpc()?;
        let ds_id = self.grid.mcat.resolve_dataset(&lp)?;
        let ds = self.grid.mcat.datasets.resolve_links(ds_id)?;
        self.grid
            .mcat
            .require_dataset(Some(user), ds.id, Permission::Own)?;
        let replica = ds
            .replicas
            .iter()
            .find(|r| r.repl_num == repl_num)
            .ok_or_else(|| SrbError::NotFound(format!("replica #{repl_num} of '{path}'")))?;
        if replica.in_container.is_some() {
            return Err(SrbError::Unsupported(
                "container-based files cannot be moved with this operation".into(),
            ));
        }
        let AccessSpec::Stored {
            resource: old_rid,
            phys_path: old_path,
        } = replica.spec.clone()
        else {
            return Err(SrbError::Unsupported(
                "physical move applies only to ingested files".into(),
            ));
        };
        let targets = self.grid.mcat.resources.resolve_targets(resource_name)?;
        let new_rid = *targets.first().ok_or_else(|| {
            SrbError::NotFound(format!("no physical resource behind '{resource_name}'"))
        })?;
        let mut tmp = Receipt::free();
        let data = self.read_replica_bytes(replica, &mut tmp)?;
        receipt.absorb(&tmp);
        let new_path = format!("{}.mv{}", Self::phys_path(ds.coll, &ds.name), repl_num);
        let r = self.store_bytes_retry(new_rid, &new_path, &data, false)?;
        receipt.absorb(&r);
        // Best effort: remove the old copy (the old resource may be down).
        if let Ok(driver) = self.grid.driver(old_rid) {
            let _ = driver.driver().delete(&old_path);
        }
        self.grid.mcat.datasets.update(ds.id, |d| {
            let rep = d
                .replicas
                .iter_mut()
                .find(|r| r.repl_num == repl_num)
                .ok_or_else(|| {
                    SrbError::NotFound(format!("replica {repl_num} vanished during move"))
                })?;
            rep.spec = AccessSpec::Stored {
                resource: new_rid,
                phys_path: new_path.clone(),
            };
            Ok(())
        })?;
        self.audit(AuditAction::Move, path, "ok");
        Ok(receipt)
    }

    // ---------------------------------------------------------------- link --

    /// Soft-link an object into another collection (Unix-style; chains
    /// collapse; ACL of the original governs).
    pub fn link(&self, target: &str, link_path: &str) -> SrbResult<Receipt> {
        let user = self.check_session()?;
        let target_lp = self.parse(target)?;
        let link_lp = self.parse(link_path)?;
        let receipt = self.mcat_rpc()?;
        let link_name = link_lp
            .name()
            .ok_or_else(|| SrbError::Invalid("link path is the root".into()))?;
        let link_parent = link_lp
            .parent()
            .ok_or_else(|| SrbError::Invalid("link path is the root".into()))?;
        let link_coll = self.grid.mcat.collections.resolve(&link_parent)?;
        self.grid
            .mcat
            .require_collection(Some(user), link_coll, Permission::Write)?;
        if let Ok(ds) = self.grid.mcat.resolve_dataset(&target_lp) {
            self.grid
                .mcat
                .require_dataset(Some(user), ds, Permission::Read)?;
            self.grid.mcat.datasets.create_link(
                &self.grid.mcat.ids,
                link_coll,
                link_name,
                ds,
                user,
                self.now(),
            )?;
        } else {
            let coll = self.grid.mcat.collections.resolve(&target_lp)?;
            self.grid
                .mcat
                .require_collection(Some(user), coll, Permission::Read)?;
            self.grid.mcat.collections.link(
                &self.grid.mcat.ids,
                link_coll,
                link_name,
                coll,
                user,
                self.now(),
            )?;
        }
        self.audit(AuditAction::Link, &format!("{target} <- {link_path}"), "ok");
        Ok(receipt)
    }

    // -------------------------------------------------------------- delete --

    /// Delete an object, "one replica at a time": `Some(n)` removes replica
    /// `n`; `None` removes everything. "When the last replica is deleted
    /// all the metadata and annotations are also deleted." Registered
    /// objects are unlinked without touching the physical object; deleting
    /// a link unlinks it.
    pub fn delete(&self, path: &str, repl_num: Option<u32>) -> SrbResult<Receipt> {
        let user = self.check_session()?;
        let lp = self.parse(path)?;
        let receipt = self.mcat_rpc()?;
        let ds_id = self.grid.mcat.resolve_dataset(&lp)?;
        let ds = self.grid.mcat.datasets.get(ds_id)?;
        // "A linked file cannot be deleted through the link; a delete
        // operation on a link basically performs an unlink operation."
        if ds.link_target.is_some() {
            self.grid
                .mcat
                .require_dataset(Some(user), ds_id, Permission::Read)?;
            self.grid.mcat.datasets.delete(ds_id)?;
            self.grid.mcat.metadata.remove_all(Subject::Dataset(ds_id));
            self.grid
                .mcat
                .annotations
                .remove_all(Subject::Dataset(ds_id));
            self.audit(AuditAction::Delete, path, "unlink");
            return Ok(receipt);
        }
        self.grid
            .mcat
            .require_dataset(Some(user), ds_id, Permission::Own)?;
        ds.write_allowed_by_locks(user, self.now())?;
        let nums: Vec<u32> = match repl_num {
            Some(n) => vec![n],
            None => ds.replicas.iter().map(|r| r.repl_num).collect(),
        };
        let mut last_deleted = ds.replicas.is_empty();
        for n in nums {
            let (replica, was_last) = self.grid.mcat.datasets.remove_replica(ds_id, n)?;
            last_deleted = was_last;
            self.dispose_replica(ds_id, &replica);
        }
        if last_deleted {
            self.grid.mcat.datasets.delete(ds_id)?;
            self.grid.mcat.metadata.remove_all(Subject::Dataset(ds_id));
            self.grid
                .mcat
                .annotations
                .remove_all(Subject::Dataset(ds_id));
        }
        self.audit(AuditAction::Delete, path, "ok");
        Ok(receipt)
    }

    /// Physically dispose of an SRB-controlled replica's bytes; registered
    /// specs leave the physical object untouched.
    fn dispose_replica(&self, ds: DatasetId, replica: &srb_mcat::Replica) {
        if let Some(slice) = replica.in_container {
            let _ = self.grid.mcat.containers.remove_member(slice.container, ds);
            return;
        }
        if let AccessSpec::Stored {
            resource,
            phys_path,
        } = &replica.spec
        {
            if let Ok(driver) = self.grid.driver(*resource) {
                let _ = driver.driver().delete(phys_path);
            }
        }
    }

    // ------------------------------------------------------------- migrate --

    /// Recursively move every SRB-stored object under a collection onto a
    /// new resource, "without changing the name by which the data is
    /// discovered and accessed" (the persistence capability).
    pub fn migrate_collection(&self, path: &str, resource_name: &str) -> SrbResult<Receipt> {
        let user = self.check_session()?;
        let lp = self.parse(path)?;
        let mut receipt = self.mcat_rpc()?;
        let root = self.grid.mcat.collections.resolve(&lp)?;
        self.grid
            .mcat
            .require_collection(Some(user), root, Permission::Own)?;
        let mut colls = vec![root];
        colls.extend(self.grid.mcat.collections.descendants(root));
        for coll in colls {
            for ds in self.grid.mcat.datasets.list(coll) {
                let replica_nums: Vec<u32> = ds
                    .replicas
                    .iter()
                    .filter(|r| r.spec.is_srb_controlled() && r.in_container.is_none())
                    .map(|r| r.repl_num)
                    .collect();
                if replica_nums.is_empty() {
                    continue;
                }
                let dpath = self.grid.mcat.dataset_path(ds.id)?.to_string();
                for num in replica_nums {
                    let r = self.move_physical(&dpath, num, resource_name)?;
                    receipt.absorb(&r);
                }
            }
        }
        self.audit(
            AuditAction::Move,
            &format!("{path} => {resource_name}"),
            "ok",
        );
        Ok(receipt)
    }

    // ------------------------------------------------------------ plumbing --

    pub(crate) fn phys_path(coll: CollectionId, name: &str) -> String {
        format!("srb/c{}/{name}", coll.raw())
    }

    /// Push bytes to a resource (create or overwrite), charging transfer +
    /// storage costs and load. One raw attempt — breaker admission,
    /// retry, and outcome recording live in
    /// [`store_bytes_retry`](Self::store_bytes_retry).
    pub(crate) fn store_bytes(
        &self,
        resource: ResourceId,
        phys_path: &str,
        data: &[u8],
        overwrite: bool,
    ) -> SrbResult<Receipt> {
        let site = self.grid.site_of_resource(resource)?;
        let injected_ns = self.grid.faults.inject(resource, site)?;
        let driver = self.grid.driver(resource)?;
        let _inflight = self.grid.load.begin(resource);
        let stored = if overwrite {
            driver.driver().write(phys_path, data)
        } else {
            driver.driver().create(phys_path, data)
        };
        let ns = match stored {
            Ok(ns) => ns,
            Err(e) => {
                if let Some(obs) = self.grid.core_obs() {
                    obs.storage_error(driver.kind(), e.code());
                }
                return Err(e);
            }
        };
        if let Some(obs) = self.grid.core_obs() {
            obs.storage_op(driver.kind(), ns);
        }
        let storage_ns = injected_ns + ns;
        self.grid.load.charge(resource, storage_ns);
        let net_ns = self
            .grid
            .network
            .charge_transfer(self.site(), site, data.len() as u64)?;
        let mut r = Receipt::time(storage_ns + net_ns);
        r.bytes = data.len() as u64;
        r.messages = 1;
        if self.grid.server_for_resource(resource)? != self.server {
            r.hops = 1;
        }
        Ok(r)
    }

    /// Read one replica's bytes (no failover; used by physical move).
    pub(crate) fn read_replica_bytes(
        &self,
        replica: &srb_mcat::Replica,
        receipt: &mut Receipt,
    ) -> SrbResult<Bytes> {
        if let Some(slice) = replica.in_container {
            return self.read_container_slice(slice, receipt);
        }
        match &replica.spec {
            AccessSpec::Stored {
                resource,
                phys_path,
            }
            | AccessSpec::RegisteredFile {
                resource,
                phys_path,
            } => {
                let site = self.grid.site_of_resource(*resource)?;
                let injected_ns = self.grid.faults.inject(*resource, site)?;
                let driver = self.grid.driver(*resource)?;
                let (data, ns) = driver.driver().read(phys_path)?;
                receipt.absorb(&Receipt::time(ns + injected_ns));
                receipt.absorb(&self.data_transfer(*resource, data.len() as u64)?);
                Ok(data)
            }
            other => Err(SrbError::Unsupported(format!(
                "replica of type {} has no bytes",
                other.type_label()
            ))),
        }
    }

    fn attach_ingest_metadata(&self, ds: DatasetId, metadata: &[Triplet]) {
        for t in metadata {
            self.grid.mcat.metadata.add(
                &self.grid.mcat.ids,
                Subject::Dataset(ds),
                t.clone(),
                srb_mcat::MetaKind::UserDefined,
            );
        }
    }
}

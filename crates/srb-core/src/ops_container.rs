//! Container operations.
//!
//! A container aggregates many small objects into one physical block. Its
//! placement is a *logical resource*: the cache-class member holds the
//! working copy; archive-class members hold the synchronized copy. Reading
//! a member object over the WAN costs one cache range-read instead of one
//! archive staging per file — the latency claim benchmarked in E2.

use crate::conn::SrbConnection;
use crate::grid::ResourceDriver;
use crate::ops_write::IngestOptions;
use bytes::Bytes;
use srb_mcat::dataset::ContainerSlice;
use srb_mcat::{AccessSpec, AuditAction, ContainerRecord, Subject};
use srb_net::Receipt;
use srb_storage::DriverKind;
use srb_types::{sha256_hex, CollectionId, ResourceId, SrbError, SrbResult, UserId};
use std::sync::Arc;

impl SrbConnection<'_> {
    /// Create a container on a logical resource.
    pub fn create_container(
        &self,
        name: &str,
        logical_resource: &str,
        max_size: u64,
    ) -> SrbResult<Receipt> {
        self.check_session()?;
        let receipt = self.mcat_rpc()?;
        let lr = self.grid.logical_resource_id(logical_resource)?;
        self.grid
            .mcat
            .containers
            .create(&self.grid.mcat.ids, name, lr, max_size, self.now())?;
        self.audit(AuditAction::Ingest, &format!("container {name}"), "ok");
        Ok(receipt)
    }

    /// The container's working-copy (cache-class) resource and the archive
    /// members, resolved from its logical resource.
    pub(crate) fn container_members(
        &self,
        record: &ContainerRecord,
    ) -> SrbResult<(ResourceId, Vec<ResourceId>)> {
        let lr = self
            .grid
            .mcat
            .resources
            .get_logical(record.logical_resource)?;
        let mut cache = None;
        let mut archives = Vec::new();
        for rid in &lr.members {
            match self.grid.driver(*rid)?.kind() {
                DriverKind::Archive => archives.push(*rid),
                _ if cache.is_none() => cache = Some(*rid),
                _ => {}
            }
        }
        let cache = cache.or_else(|| archives.first().copied()).ok_or_else(|| {
            SrbError::Invalid(format!(
                "container '{}' has no usable member resource",
                record.name
            ))
        })?;
        Ok((cache, archives))
    }

    pub(crate) fn container_phys_path(record: &ContainerRecord) -> String {
        format!("containers/{}", record.name)
    }

    /// Ingest into a container (called from [`SrbConnection::ingest`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn ingest_into_container_impl(
        &self,
        coll: CollectionId,
        name: &str,
        data: &[u8],
        container_name: &str,
        opts: &IngestOptions,
        user: UserId,
    ) -> SrbResult<Receipt> {
        let record = self
            .grid
            .mcat
            .containers
            .find(container_name)
            .ok_or_else(|| SrbError::NotFound(format!("container '{container_name}'")))?;
        let (cache_rid, _) = self.container_members(&record)?;
        let ds = self.grid.mcat.datasets.create(
            &self.grid.mcat.ids,
            coll,
            name,
            &opts.data_type,
            user,
            Vec::new(),
            self.now(),
        )?;
        let offset = match self
            .grid
            .mcat
            .containers
            .append_member(record.id, ds, data.len() as u64)
        {
            Ok(o) => o,
            Err(e) => {
                // Roll back the dataset row so the name is reusable.
                let _ = self.grid.mcat.datasets.delete(ds);
                return Err(e);
            }
        };
        let ct_path = Self::container_phys_path(&record);
        let site = self.grid.site_of_resource(cache_rid)?;
        let injected_ns = self.grid.faults.inject(cache_rid, site)?;
        let driver = self.grid.driver(cache_rid)?;
        let storage_ns = injected_ns + driver.driver().append(&ct_path, data)?;
        self.grid.load.charge(cache_rid, storage_ns);
        let net_ns = self
            .grid
            .network
            .charge_transfer(self.site(), site, data.len() as u64)?;
        let mut receipt = Receipt::time(storage_ns + net_ns);
        receipt.bytes = data.len() as u64;
        let repl_num = self.grid.mcat.datasets.add_replica(
            &self.grid.mcat.ids,
            ds,
            AccessSpec::Stored {
                resource: cache_rid,
                phys_path: ct_path,
            },
            data.len() as u64,
            Some(sha256_hex(data)),
            self.now(),
        )?;
        let slice = ContainerSlice {
            container: record.id,
            offset,
            len: data.len() as u64,
        };
        self.grid.mcat.datasets.update(ds, |d| {
            let r = d
                .replicas
                .iter_mut()
                .find(|r| r.repl_num == repl_num)
                .ok_or_else(|| {
                    SrbError::NotFound(format!("replica #{repl_num} vanished during ingest"))
                })?;
            r.in_container = Some(slice);
            Ok(())
        })?;
        for t in &opts.metadata {
            self.grid.mcat.metadata.add(
                &self.grid.mcat.ids,
                Subject::Dataset(ds),
                t.clone(),
                srb_mcat::MetaKind::UserDefined,
            );
        }
        Ok(receipt)
    }

    /// Synchronize the container's working copy onto its archive members.
    /// "Replication of a container (and its objects) is done by the SRB
    /// system using semantics associated with the logical resource."
    pub fn sync_container(&self, name: &str) -> SrbResult<Receipt> {
        self.check_session()?;
        let mut receipt = self.mcat_rpc()?;
        let record = self
            .grid
            .mcat
            .containers
            .find(name)
            .ok_or_else(|| SrbError::NotFound(format!("container '{name}'")))?;
        let (cache_rid, archives) = self.container_members(&record)?;
        let ct_path = Self::container_phys_path(&record);
        let cache_driver = self.grid.driver(cache_rid)?;
        let (data, read_ns) = cache_driver.driver().read(&ct_path)?;
        receipt.absorb(&Receipt::time(read_ns));
        let cache_site = self.grid.site_of_resource(cache_rid)?;
        for rid in archives {
            let site = self.grid.site_of_resource(rid)?;
            let injected_ns = self.grid.faults.inject(rid, site)?;
            let driver = self.grid.driver(rid)?;
            let net_ns = self
                .grid
                .network
                .charge_transfer(cache_site, site, data.len() as u64)?;
            let write_ns = injected_ns + driver.driver().write(&ct_path, &data)?;
            self.grid.load.charge(rid, write_ns);
            receipt.absorb(&Receipt::time(net_ns + write_ns));
            receipt.bytes += data.len() as u64;
        }
        self.grid.mcat.containers.mark_synced(record.id)?;
        self.audit(AuditAction::Replicate, &format!("container {name}"), "ok");
        Ok(receipt)
    }

    /// Read one member slice, trying the cache copy first and transparently
    /// re-staging the whole container from an archive member on a miss.
    pub(crate) fn read_container_slice(
        &self,
        slice: ContainerSlice,
        receipt: &mut Receipt,
    ) -> SrbResult<Bytes> {
        let record = self.grid.mcat.containers.get(slice.container)?;
        let (cache_rid, archives) = self.container_members(&record)?;
        let ct_path = Self::container_phys_path(&record);
        let cache_site = self.grid.site_of_resource(cache_rid)?;
        if self.grid.faults.is_up(cache_rid, cache_site) {
            let driver = self.grid.driver(cache_rid)?;
            match driver
                .driver()
                .read_range(&ct_path, slice.offset, slice.len)
            {
                Ok((data, ns)) => {
                    self.grid.load.charge(cache_rid, ns);
                    receipt.absorb(&Receipt::time(ns));
                    receipt.absorb(&self.data_transfer(cache_rid, data.len() as u64)?);
                    return Ok(data);
                }
                Err(SrbError::NotFound(_)) => { /* purged: fall to archive */ }
                Err(e) => return Err(e),
            }
        }
        // Cache miss or cache down: recall from an archive member.
        for rid in &archives {
            let site = self.grid.site_of_resource(*rid)?;
            if !self.grid.faults.is_up(*rid, site) {
                continue;
            }
            let driver = self.grid.driver(*rid)?;
            let (whole, ns) = driver.driver().read(&ct_path)?;
            self.grid.load.charge(*rid, ns);
            receipt.absorb(&Receipt::time(ns));
            // Re-populate the cache copy (best effort — the cache may be
            // full of pinned objects or down).
            if self.grid.faults.is_up(cache_rid, cache_site) {
                if let Ok(cd) = self.grid.driver(cache_rid) {
                    let net_ns =
                        self.grid
                            .network
                            .charge_transfer(site, cache_site, whole.len() as u64)?;
                    receipt.absorb(&Receipt::time(net_ns));
                    if let Ok(wns) = cd.driver().write(&ct_path, &whole) {
                        receipt.absorb(&Receipt::time(wns));
                    }
                }
            }
            let start = (slice.offset as usize).min(whole.len());
            let end = ((slice.offset + slice.len) as usize).min(whole.len());
            let data = whole.slice(start..end);
            receipt.absorb(&self.data_transfer(*rid, data.len() as u64)?);
            return Ok(data);
        }
        Err(SrbError::ResourceUnavailable(format!(
            "container '{}' unreachable on all members",
            record.name
        )))
    }

    /// Update a member object in place: the new bytes are appended at the
    /// container's tail and the member's slice is repointed (tar-like: the
    /// old bytes become a hole until the container is rewritten).
    pub(crate) fn rewrite_container_slice(
        &self,
        ds: srb_types::DatasetId,
        old: ContainerSlice,
        data: &[u8],
    ) -> SrbResult<Receipt> {
        let record = self.grid.mcat.containers.get(old.container)?;
        let (cache_rid, _) = self.container_members(&record)?;
        self.grid.mcat.containers.remove_member(old.container, ds)?;
        let offset =
            self.grid
                .mcat
                .containers
                .append_member(old.container, ds, data.len() as u64)?;
        let ct_path = Self::container_phys_path(&record);
        let site = self.grid.site_of_resource(cache_rid)?;
        let injected_ns = self.grid.faults.inject(cache_rid, site)?;
        let driver = self.grid.driver(cache_rid)?;
        let storage_ns = injected_ns + driver.driver().append(&ct_path, data)?;
        let net_ns = self
            .grid
            .network
            .charge_transfer(self.site(), site, data.len() as u64)?;
        let mut receipt = Receipt::time(storage_ns + net_ns);
        receipt.bytes = data.len() as u64;
        let slice = ContainerSlice {
            container: old.container,
            offset,
            len: data.len() as u64,
        };
        let checksum = sha256_hex(data);
        self.grid.mcat.datasets.update(ds, |d| {
            for r in d.replicas.iter_mut() {
                if r.in_container == Some(old) {
                    r.in_container = Some(slice);
                    r.size = data.len() as u64;
                    r.checksum = Some(checksum.clone());
                }
            }
            Ok(())
        })?;
        Ok(receipt)
    }

    /// Force the container's working copy out of every non-archive member
    /// (experiment helper: models cache purge so the next read pays the
    /// archive recall).
    pub fn purge_container_cache(&self, name: &str) -> SrbResult<()> {
        let record = self
            .grid
            .mcat
            .containers
            .find(name)
            .ok_or_else(|| SrbError::NotFound(format!("container '{name}'")))?;
        if !record.synced {
            return Err(SrbError::Invalid(format!(
                "container '{name}' has unsynchronized data; sync before purging"
            )));
        }
        let (cache_rid, archives) = self.container_members(&record)?;
        if archives.is_empty() {
            return Err(SrbError::Invalid(format!(
                "container '{name}' has no archive member to recall from"
            )));
        }
        let ct_path = Self::container_phys_path(&record);
        let driver: Arc<ResourceDriver> = self.grid.driver(cache_rid)?;
        let _ = driver.driver().delete(&ct_path);
        // Also push the archive members' own staging state to tape.
        for rid in archives {
            if let Some(a) = self.grid.driver(rid)?.as_archive() {
                a.purge_staged();
            }
        }
        Ok(())
    }
}

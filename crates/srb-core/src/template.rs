//! Built-in rendering templates for registered SQL objects.
//!
//! Paper §4: "mySRB supports three built-in templates … HTMLREL prints the
//! result as a relational table in HTML format, … HTMLNEST prints the
//! result as a nested table in HTML, and … XMLREL prints the result in XML
//! using a simple DTD." User style-sheets are T-language ([`crate::tlang`]).

use srb_mcat::Template;
use srb_storage::sql::QueryResult;

/// Escape text for inclusion in HTML/XML.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// Render a query result as a flat relational HTML table.
pub fn html_rel(r: &QueryResult) -> String {
    let mut out = String::from("<table border=\"1\">\n<tr>");
    for c in &r.columns {
        out.push_str("<th>");
        out.push_str(&escape(c));
        out.push_str("</th>");
    }
    out.push_str("</tr>\n");
    for row in &r.rows {
        out.push_str("<tr>");
        for v in row {
            out.push_str("<td>");
            out.push_str(&escape(&v.render()));
            out.push_str("</td>");
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</table>\n");
    out
}

/// Render as a nested HTML table: rows are grouped by the first column,
/// each group becoming an inner table of the remaining columns.
pub fn html_nest(r: &QueryResult) -> String {
    if r.columns.is_empty() {
        return "<table></table>\n".to_string();
    }
    let mut out = String::from("<table border=\"1\">\n");
    let mut i = 0;
    while i < r.rows.len() {
        let group_key = r.rows[i][0].render();
        out.push_str("<tr><td>");
        out.push_str(&escape(&group_key));
        out.push_str("</td><td><table>\n");
        while i < r.rows.len() && r.rows[i][0].render() == group_key {
            out.push_str("<tr>");
            for v in &r.rows[i][1..] {
                out.push_str("<td>");
                out.push_str(&escape(&v.render()));
                out.push_str("</td>");
            }
            out.push_str("</tr>\n");
            i += 1;
        }
        out.push_str("</table></td></tr>\n");
    }
    out.push_str("</table>\n");
    out
}

/// Render as XML with the paper's "simple DTD": a `<result>` of `<row>`s
/// whose children are named after the columns.
pub fn xml_rel(r: &QueryResult) -> String {
    let mut out = String::from("<?xml version=\"1.0\"?>\n<result>\n");
    for row in &r.rows {
        out.push_str("  <row>\n");
        for (c, v) in r.columns.iter().zip(row.iter()) {
            let tag = xml_tag(c);
            out.push_str("    <");
            out.push_str(&tag);
            out.push('>');
            out.push_str(&escape(&v.render()));
            out.push_str("</");
            out.push_str(&tag);
            out.push_str(">\n");
        }
        out.push_str("  </row>\n");
    }
    out.push_str("</result>\n");
    out
}

fn xml_tag(column: &str) -> String {
    let mut tag: String = column
        .chars()
        .map(|c| if c.is_alphanumeric() { c } else { '_' })
        .collect();
    if tag
        .chars()
        .next()
        .map(|c| c.is_ascii_digit())
        .unwrap_or(true)
    {
        tag.insert(0, '_');
    }
    tag
}

/// Dispatch on a catalog [`Template`]. `StyleSheet` must be resolved by the
/// caller (it needs to read the sheet from SRB) — this renders the three
/// built-ins.
pub fn render_template(t: &Template, r: &QueryResult) -> Option<String> {
    match t {
        Template::HtmlRel => Some(html_rel(r)),
        Template::HtmlNest => Some(html_nest(r)),
        Template::XmlRel => Some(xml_rel(r)),
        Template::StyleSheet(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srb_storage::sql::SqlEngine;

    fn result() -> QueryResult {
        let e = SqlEngine::new();
        e.execute("CREATE TABLE t (family, name)").unwrap();
        e.execute(
            "INSERT INTO t VALUES ('vulture','condor'), ('vulture','buzzard'), ('owl','barn owl')",
        )
        .unwrap();
        e.execute("SELECT family, name FROM t").unwrap()
    }

    #[test]
    fn html_rel_is_a_flat_table() {
        let html = html_rel(&result());
        assert!(html.starts_with("<table"));
        assert_eq!(html.matches("<tr>").count(), 4); // header + 3 rows
        assert!(html.contains("<th>family</th>"));
        assert!(html.contains("<td>condor</td>"));
    }

    #[test]
    fn html_nest_groups_by_first_column() {
        let html = html_nest(&result());
        // Two groups: vulture, owl.
        assert_eq!(html.matches("<td><table>").count(), 2);
        assert!(html.contains("<td>vulture</td>"));
        assert!(html.contains("<td>barn owl</td>"));
    }

    #[test]
    fn xml_rel_uses_column_tags() {
        let xml = xml_rel(&result());
        assert!(xml.starts_with("<?xml"));
        assert_eq!(xml.matches("<row>").count(), 3);
        assert!(xml.contains("<name>condor</name>"));
        assert!(xml.contains("<family>owl</family>"));
    }

    #[test]
    fn escaping_prevents_markup_injection() {
        let e = SqlEngine::new();
        e.execute("CREATE TABLE t (v)").unwrap();
        e.execute("INSERT INTO t VALUES ('<script>alert(1)</script>')")
            .unwrap();
        let r = e.execute("SELECT v FROM t").unwrap();
        for rendered in [html_rel(&r), html_nest(&r), xml_rel(&r)] {
            assert!(!rendered.contains("<script>"));
            assert!(rendered.contains("&lt;script&gt;"));
        }
        assert_eq!(escape("a&b<c>\"d'"), "a&amp;b&lt;c&gt;&quot;d&#39;");
    }

    #[test]
    fn weird_column_names_become_valid_tags() {
        assert_eq!(xml_tag("birds.name"), "birds_name");
        assert_eq!(xml_tag("2mass"), "_2mass");
        assert_eq!(xml_tag(""), "_");
    }

    #[test]
    fn dispatch_renders_builtins_only() {
        let r = result();
        assert!(render_template(&Template::HtmlRel, &r).is_some());
        assert!(render_template(&Template::HtmlNest, &r).is_some());
        assert!(render_template(&Template::XmlRel, &r).is_some());
        assert!(render_template(&Template::StyleSheet(srb_types::DatasetId(1)), &r).is_none());
    }
}

//! Maintenance operations: replica resynchronization, checksum
//! verification, and container compaction.
//!
//! The paper requires that "the consistency of the replicas should be
//! maintained with very little effort on the part of the users" (§2).
//! Writes mark unreachable replicas *stale*; [`SrbConnection::sync_replicas`]
//! is the one-call repair. Containers accumulate holes when members are
//! updated or deleted (tar-like semantics);
//! [`SrbConnection::compact_container`] rewrites them. Checksum
//! verification closes the loop on the integrity metadata SRB keeps per
//! replica.

use crate::conn::SrbConnection;
use crate::fanout::StoreLeg;
use srb_mcat::dataset::ContainerSlice;
use srb_mcat::{AccessSpec, AuditAction, ReplicaStatus};
use srb_net::Receipt;
use srb_types::{sha256_hex, DatasetId, Permission, SrbError, SrbResult, UserId};

/// Outcome of verifying one replica's checksum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChecksumStatus {
    /// Recomputed digest matches the catalog.
    Ok,
    /// Digest mismatch — the physical copy is corrupt or was modified
    /// behind SRB's back.
    Mismatch {
        /// What the catalog recorded.
        expected: String,
        /// What the bytes hash to now.
        actual: String,
    },
    /// The catalog holds no checksum for this replica (registered objects).
    NoChecksum,
    /// The replica's resource is currently unreachable.
    Unreachable,
}

/// What happened to one dataset during a [`SrbConnection::repair_stale`]
/// sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairOutcome {
    /// This many stale replicas were brought back up to date.
    Repaired(usize),
    /// Every stale replica sits on a resource whose circuit breaker is
    /// still `Open` — re-syncing now would hammer a known-bad resource,
    /// so the sweep left it for a later pass.
    SkippedBreakerOpen,
    /// The repair attempt itself failed (recorded, not propagated, so one
    /// bad dataset does not abort the sweep).
    Failed(String),
}

/// Audit line of one dataset's visit in a repair sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairReport {
    /// The dataset visited.
    pub dataset: DatasetId,
    /// What the sweep did with it.
    pub outcome: RepairOutcome,
}

impl SrbConnection<'_> {
    /// Repair every stale replica of an object from an up-to-date one.
    /// Returns the number of replicas repaired.
    pub fn sync_replicas(&self, path: &str) -> SrbResult<(usize, Receipt)> {
        let user = self.check_session()?;
        let lp = self.parse(path)?;
        let mut receipt = self.mcat_rpc()?;
        let ds_id = self.grid.mcat.resolve_dataset(&lp)?;
        let repaired = self.resync_dataset(ds_id, user, &mut receipt)?;
        if repaired > 0 {
            self.audit(AuditAction::Replicate, path, "resync");
        }
        Ok((repaired, receipt))
    }

    /// Repair one dataset's stale replicas from a fresh copy (the core of
    /// both [`SrbConnection::sync_replicas`] and the sweep).
    fn resync_dataset(
        &self,
        ds_id: DatasetId,
        user: UserId,
        receipt: &mut Receipt,
    ) -> SrbResult<usize> {
        let ds = self.grid.mcat.datasets.resolve_links(ds_id)?;
        self.grid
            .mcat
            .require_dataset(Some(user), ds.id, Permission::Write)?;
        let stale: Vec<_> = ds
            .replicas
            .iter()
            .filter(|r| r.status == ReplicaStatus::Stale)
            .cloned()
            .collect();
        if stale.is_empty() {
            return Ok(0);
        }
        let (fresh, read_receipt) = self.read_dataset_bytes(ds.id)?;
        receipt.absorb(&read_receipt);
        let checksum = sha256_hex(&fresh);
        // One leg per repairable stale replica; registered replicas cannot
        // be rewritten. Catalog commits happen after the join, in leg
        // order, on this thread.
        let mut legs: Vec<StoreLeg> = Vec::new();
        let mut leg_nums: Vec<u32> = Vec::new();
        for replica in &stale {
            if let AccessSpec::Stored {
                resource,
                phys_path,
            } = &replica.spec
            {
                legs.push(StoreLeg {
                    resource: *resource,
                    phys_path: phys_path.clone(),
                    overwrite: true,
                });
                leg_nums.push(replica.repl_num);
            }
        }
        let fan = self.store_fanout(&legs, &fresh);
        receipt.absorb(&fan.receipt);
        let repaired_nums: Vec<u32> = leg_nums
            .iter()
            .zip(&fan.results)
            .filter(|(_, r)| r.is_ok())
            .map(|(n, _)| *n)
            .collect();
        let repaired = repaired_nums.len();
        if repaired > 0 {
            if let Some(obs) = self.grid.core_obs() {
                obs.repairs.add(repaired as u64);
            }
        }
        if !repaired_nums.is_empty() {
            let now = self.now();
            self.grid.mcat.datasets.update(ds.id, |d| {
                for rep in d.replicas.iter_mut() {
                    if repaired_nums.contains(&rep.repl_num) {
                        rep.status = ReplicaStatus::UpToDate;
                        rep.size = fresh.len() as u64;
                        rep.checksum = Some(checksum.clone());
                    }
                }
                d.modified = now;
                Ok(())
            })?;
        }
        // Retryable failures stay stale for the next resync; a fatal leg
        // error propagates only after the successful repairs are
        // committed above.
        if let Some(e) = fan.first_fatal() {
            return Err(e);
        }
        Ok(repaired)
    }

    /// Sweep the whole catalog for stale replicas and re-sync each dataset
    /// whose target resources have recovered. A dataset whose stale
    /// replicas all sit behind a still-`Open` circuit breaker is skipped —
    /// the sweep runs again once the breaker's cool-down lets a probe
    /// through (half-open). Each visit leaves an audit record; per-dataset
    /// failures are reported, not propagated, so one bad dataset cannot
    /// abort the sweep.
    pub fn repair_stale(&self) -> SrbResult<(Vec<RepairReport>, Receipt)> {
        let user = self.check_session()?;
        let mut receipt = self.mcat_rpc()?;
        let mut reports = Vec::new();
        for (ds_id, resources) in self.grid.mcat.datasets.with_stale_replicas() {
            let subject = format!("dataset {ds_id}");
            let all_open = resources.iter().all(|r| self.grid.health.is_open(*r));
            if all_open {
                self.audit(AuditAction::Replicate, &subject, "repair-skip-breaker");
                reports.push(RepairReport {
                    dataset: ds_id,
                    outcome: RepairOutcome::SkippedBreakerOpen,
                });
                continue;
            }
            match self.resync_dataset(ds_id, user, &mut receipt) {
                Ok(n) => {
                    self.audit(AuditAction::Replicate, &subject, "repair");
                    reports.push(RepairReport {
                        dataset: ds_id,
                        outcome: RepairOutcome::Repaired(n),
                    });
                }
                Err(e) => {
                    self.audit(AuditAction::Replicate, &subject, e.code());
                    reports.push(RepairReport {
                        dataset: ds_id,
                        outcome: RepairOutcome::Failed(e.code().to_string()),
                    });
                }
            }
        }
        Ok((reports, receipt))
    }

    /// Verify every replica's stored checksum against its current bytes.
    /// Returns `(repl_num, status)` pairs.
    pub fn verify_checksums(&self, path: &str) -> SrbResult<Vec<(u32, ChecksumStatus)>> {
        let user = self.check_session()?;
        let lp = self.parse(path)?;
        let ds_id = self.grid.mcat.resolve_dataset(&lp)?;
        let ds = self.grid.mcat.datasets.resolve_links(ds_id)?;
        self.grid
            .mcat
            .require_dataset(Some(user), ds.id, Permission::Read)?;
        let mut out = Vec::new();
        for replica in &ds.replicas {
            if !replica.spec.is_byte_addressable() {
                continue;
            }
            let Some(expected) = replica.checksum.clone() else {
                out.push((replica.repl_num, ChecksumStatus::NoChecksum));
                continue;
            };
            let mut tmp = Receipt::free();
            match self.read_replica_bytes(replica, &mut tmp) {
                Ok(bytes) => {
                    let actual = sha256_hex(&bytes);
                    if actual == expected {
                        out.push((replica.repl_num, ChecksumStatus::Ok));
                    } else {
                        out.push((
                            replica.repl_num,
                            ChecksumStatus::Mismatch { expected, actual },
                        ));
                    }
                }
                Err(e) if e.is_retryable() => {
                    out.push((replica.repl_num, ChecksumStatus::Unreachable));
                }
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Rewrite a container, dropping the holes left by member updates and
    /// deletions. Member offsets are rebased; the archive copy is marked
    /// out-of-sync (run [`SrbConnection::sync_container`] afterwards).
    /// Returns the number of bytes reclaimed.
    pub fn compact_container(&self, name: &str) -> SrbResult<(u64, Receipt)> {
        self.check_session()?;
        let mut receipt = self.mcat_rpc()?;
        let record = self
            .grid
            .mcat
            .containers
            .find(name)
            .ok_or_else(|| SrbError::NotFound(format!("container '{name}'")))?;
        let (cache_rid, _) = self.container_members(&record)?;
        let ct_path = Self::container_phys_path(&record);
        let driver = self.grid.driver(cache_rid)?;
        let (old_bytes, read_ns) = driver.driver().read(&ct_path)?;
        receipt.absorb(&Receipt::time(read_ns));
        // Build the compacted image and the new slice table.
        let mut new_bytes = Vec::with_capacity(old_bytes.len());
        let mut moves: Vec<(srb_types::DatasetId, ContainerSlice, ContainerSlice)> = Vec::new();
        for m in &record.members {
            let start = (m.offset as usize).min(old_bytes.len());
            let end = ((m.offset + m.len) as usize).min(old_bytes.len());
            let new_offset = new_bytes.len() as u64;
            new_bytes.extend_from_slice(&old_bytes[start..end]);
            moves.push((
                m.dataset,
                ContainerSlice {
                    container: record.id,
                    offset: m.offset,
                    len: m.len,
                },
                ContainerSlice {
                    container: record.id,
                    offset: new_offset,
                    len: (end - start) as u64,
                },
            ));
        }
        let reclaimed = (old_bytes.len() - new_bytes.len()) as u64;
        if reclaimed == 0 {
            return Ok((0, receipt));
        }
        let write_ns = driver.driver().write(&ct_path, &new_bytes)?;
        receipt.absorb(&Receipt::time(write_ns));
        // Rewrite the catalog: replica slices first, then the container
        // record (rebuild members + size through the existing table ops).
        for (ds, old, new) in &moves {
            self.grid.mcat.datasets.update(*ds, |d| {
                for r in d.replicas.iter_mut() {
                    if r.in_container == Some(*old) {
                        r.in_container = Some(*new);
                    }
                }
                Ok(())
            })?;
        }
        self.grid.mcat.containers.rewrite_members(
            record.id,
            moves
                .iter()
                .map(|(ds, _, new)| (*ds, new.offset, new.len))
                .collect(),
            new_bytes.len() as u64,
        )?;
        self.audit(AuditAction::Write, &format!("container {name}"), "compact");
        Ok((reclaimed, receipt))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::GridBuilder;
    use crate::ops_write::IngestOptions;
    use crate::SrbConnection;

    fn fixture() -> (crate::Grid, srb_types::ServerId) {
        let mut gb = GridBuilder::new();
        let site = gb.site("s");
        let srv = gb.server("srv", site);
        gb.fs_resource("fs1", srv)
            .fs_resource("fs2", srv)
            .cache_resource("cache", srv, 1 << 20)
            .archive_resource("tape", srv)
            .logical_resource("lr", &["fs1", "fs2"])
            .logical_resource("ct-store", &["cache", "tape"]);
        let grid = gb.build();
        grid.register_user("u", "d", "pw").unwrap();
        (grid, srv)
    }

    #[test]
    fn sync_replicas_repairs_stale_copies() {
        let (grid, srv) = fixture();
        let conn = SrbConnection::connect(&grid, srv, "u", "d", "pw").unwrap();
        conn.ingest("/home/u/f", b"v1", IngestOptions::to_resource("lr"))
            .unwrap();
        grid.fail_resource("fs2").unwrap();
        conn.write("/home/u/f", b"v2").unwrap();
        grid.restore_resource("fs2").unwrap();
        let (repaired, receipt) = conn.sync_replicas("/home/u/f").unwrap();
        assert_eq!(repaired, 1);
        assert!(receipt.bytes >= 2);
        // Now both replicas serve the new content — fail the primary and
        // check.
        grid.fail_resource("fs1").unwrap();
        assert_eq!(&conn.read("/home/u/f").unwrap().0[..], b"v2");
        // Idempotent: nothing left to repair.
        grid.restore_resource("fs1").unwrap();
        assert_eq!(conn.sync_replicas("/home/u/f").unwrap().0, 0);
    }

    #[test]
    fn sync_replicas_skips_still_down_resources() {
        let (grid, srv) = fixture();
        let conn = SrbConnection::connect(&grid, srv, "u", "d", "pw").unwrap();
        conn.ingest("/home/u/f", b"v1", IngestOptions::to_resource("lr"))
            .unwrap();
        grid.fail_resource("fs2").unwrap();
        conn.write("/home/u/f", b"v2").unwrap();
        // fs2 still down: repair finds nothing repairable but succeeds.
        let (repaired, _) = conn.sync_replicas("/home/u/f").unwrap();
        assert_eq!(repaired, 0);
    }

    #[test]
    fn repair_stale_sweep_respects_breaker_then_repairs() {
        let (grid, srv) = fixture();
        let conn = SrbConnection::connect(&grid, srv, "u", "d", "pw").unwrap();
        conn.ingest("/home/u/f", b"v1", IngestOptions::to_resource("lr"))
            .unwrap();
        grid.fail_resource("fs2").unwrap();
        conn.write("/home/u/f", b"v2").unwrap(); // fs2 replica goes stale
        let fs2 = grid.resource_id("fs2").unwrap();
        // Accumulate enough failures to trip fs2's breaker, then bring
        // the resource back: the breaker's memory outlives the outage.
        for _ in 0..8 {
            grid.health.record(fs2, false);
        }
        assert!(grid.health.is_open(fs2));
        grid.restore_resource("fs2").unwrap();
        // Breaker still open (cool-down not elapsed): the sweep skips.
        let (reports, _) = conn.repair_stale().unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].outcome, RepairOutcome::SkippedBreakerOpen);
        // Simulated cool-down elapses; the sweep's write is the half-open
        // probe and the repair goes through.
        grid.clock.advance(grid.health.config().cooldown_ns);
        let (reports, _) = conn.repair_stale().unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].outcome, RepairOutcome::Repaired(1));
        // Nothing stale left: the next sweep is empty.
        assert!(conn.repair_stale().unwrap().0.is_empty());
        // The repaired copy really serves the new content.
        grid.fail_resource("fs1").unwrap();
        assert_eq!(&conn.read("/home/u/f").unwrap().0[..], b"v2");
        // The sweep left audit records.
        let audit = grid.mcat.audit.dump();
        assert!(audit.iter().any(|a| a.outcome == "repair-skip-breaker"));
        assert!(audit.iter().any(|a| a.outcome == "repair"));
    }

    #[test]
    fn verify_checksums_detects_corruption() {
        let (grid, srv) = fixture();
        let conn = SrbConnection::connect(&grid, srv, "u", "d", "pw").unwrap();
        conn.ingest("/home/u/f", b"good data", IngestOptions::to_resource("lr"))
            .unwrap();
        let ok = conn.verify_checksums("/home/u/f").unwrap();
        assert_eq!(ok.len(), 2);
        assert!(ok.iter().all(|(_, s)| *s == ChecksumStatus::Ok));
        // Corrupt one physical copy behind SRB's back.
        let ds = grid
            .mcat
            .resolve_dataset(&srb_types::LogicalPath::parse("/home/u/f").unwrap())
            .unwrap();
        let d = grid.mcat.datasets.get(ds).unwrap();
        let AccessSpec::Stored {
            resource,
            phys_path,
        } = &d.replicas[0].spec
        else {
            panic!()
        };
        grid.driver(*resource)
            .unwrap()
            .driver()
            .write(phys_path, b"tampered!")
            .unwrap();
        let results = conn.verify_checksums("/home/u/f").unwrap();
        assert!(results
            .iter()
            .any(|(_, s)| matches!(s, ChecksumStatus::Mismatch { .. })));
        assert!(results.iter().any(|(_, s)| *s == ChecksumStatus::Ok));
        // A down resource reports Unreachable rather than erroring.
        grid.fail_resource("fs1").unwrap();
        let results = conn.verify_checksums("/home/u/f").unwrap();
        assert!(results
            .iter()
            .any(|(_, s)| *s == ChecksumStatus::Unreachable));
    }

    #[test]
    fn compact_container_reclaims_holes() {
        let (grid, srv) = fixture();
        let conn = SrbConnection::connect(&grid, srv, "u", "d", "pw").unwrap();
        conn.create_container("ct", "ct-store", 1 << 16).unwrap();
        conn.ingest("/home/u/a", b"aaaa", IngestOptions::into_container("ct"))
            .unwrap();
        conn.ingest("/home/u/b", b"bbbb", IngestOptions::into_container("ct"))
            .unwrap();
        conn.ingest("/home/u/c", b"cccc", IngestOptions::into_container("ct"))
            .unwrap();
        // Delete the middle member and update the first: two holes.
        conn.delete("/home/u/b", None).unwrap();
        conn.write("/home/u/a", b"AAAAAA").unwrap();
        let before = grid.mcat.containers.find("ct").unwrap();
        assert_eq!(before.size, 4 + 4 + 4 + 6);
        let (reclaimed, _) = conn.compact_container("ct").unwrap();
        assert_eq!(reclaimed, 8); // old a (4) + deleted b (4)
        let after = grid.mcat.containers.find("ct").unwrap();
        assert_eq!(after.size, 10); // c(4) + new a(6)
        assert!(!after.synced);
        // Every member still reads back correctly.
        assert_eq!(&conn.read("/home/u/a").unwrap().0[..], b"AAAAAA");
        assert_eq!(&conn.read("/home/u/c").unwrap().0[..], b"cccc");
        // Compacting a tight container is a no-op.
        let (reclaimed2, _) = conn.compact_container("ct").unwrap();
        assert_eq!(reclaimed2, 0);
        // After a sync, purge + recall still works with the new offsets.
        conn.sync_container("ct").unwrap();
        conn.purge_container_cache("ct").unwrap();
        assert_eq!(&conn.read("/home/u/c").unwrap().0[..], b"cccc");
    }
}

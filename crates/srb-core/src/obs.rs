//! Grid-side observability plumbing: pre-registered metric handles for
//! the hot paths `srb-core` owns.
//!
//! One [`CoreObs`] is built per grid when observability is enabled
//! (the default; see [`crate::GridBuilder::observability`]). Subsystems
//! below this crate (breakers, fault injection, the query planner) get
//! their handles attached separately at grid construction; everything the
//! broker itself instruments — fan-out legs, retries, repairs, storage
//! driver ops, whole-operation latency — goes through this struct so the
//! per-event cost is a `fetch_add` on a cached handle.

use srb_net::Receipt;
use srb_obs::{Counter, Histogram, MetricsRegistry, Obs, OpCost};
use srb_storage::DriverKind;
use srb_types::Timestamp;

/// Convert a finished operation's receipt into the slow-op cost record.
pub fn op_cost(receipt: &Receipt) -> OpCost {
    OpCost {
        sim_ns: receipt.sim_ns,
        bytes: receipt.bytes,
        messages: receipt.messages,
        hops: receipt.hops as u64,
        replicas_tried: receipt.replicas_tried as u64,
        retries: receipt.retries as u64,
        served_stale: receipt.served_stale,
    }
}

/// Cached metric handles for the broker's own hot paths.
#[derive(Debug, Clone)]
pub struct CoreObs {
    /// The shared registry / tracer / slow-op log.
    pub obs: Obs,
    /// `fanout.legs_dispatched`: storage legs handed to the fan-out engine.
    pub legs_dispatched: Counter,
    /// `fanout.legs_failed`: legs that returned an error.
    pub legs_failed: Counter,
    /// `fanout.legs_stale`: replica rows committed as stale because their
    /// leg failed while the write as a whole was acknowledged.
    pub legs_stale: Counter,
    /// `fanout.queue_wait_ns`: simulated time a leg waited for a virtual
    /// lane before its transfer began.
    pub queue_wait: Histogram,
    /// `health.retries`: transient-failure retries performed by the retry
    /// engine.
    pub retries: Counter,
    /// `health.backoff_ns`: total simulated backoff charged before
    /// retries.
    pub backoff_ns: Counter,
    /// `health.repairs`: stale replica rows brought back up to date by
    /// resync.
    pub repairs: Counter,
    /// `core.pool_hits`: pooled connects served from cached auth state.
    pub pool_hits: Counter,
    /// `core.pool_misses`: pooled connects that ran the full handshake.
    pub pool_misses: Counter,
}

impl CoreObs {
    /// Register every fixed-label handle against `obs`'s registry.
    pub fn new(obs: Obs) -> CoreObs {
        let m = &obs.metrics;
        CoreObs {
            legs_dispatched: m.counter("fanout.legs_dispatched", ""),
            legs_failed: m.counter("fanout.legs_failed", ""),
            legs_stale: m.counter("fanout.legs_stale", ""),
            queue_wait: m.histogram("fanout.queue_wait_ns", ""),
            retries: m.counter("health.retries", ""),
            backoff_ns: m.counter("health.backoff_ns", ""),
            repairs: m.counter("health.repairs", ""),
            pool_hits: m.counter("core.pool_hits", ""),
            pool_misses: m.counter("core.pool_misses", ""),
            obs,
        }
    }

    /// The registry behind the cached handles.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.obs.metrics
    }

    /// Count one storage-driver operation of `sim_ns` simulated cost
    /// against the driver family's `storage.ops` / `storage.op_ns`.
    pub fn storage_op(&self, kind: DriverKind, sim_ns: u64) {
        let label = kind.name();
        self.obs.metrics.counter("storage.ops", label).inc();
        self.obs
            .metrics
            .histogram("storage.op_ns", label)
            .observe(sim_ns);
    }

    /// Count one failed storage-driver operation (`storage.errors`),
    /// labelled by driver family and sub-labelled by error code via the
    /// `storage.error_codes` counter.
    pub fn storage_error(&self, kind: DriverKind, code: &str) {
        self.obs
            .metrics
            .counter("storage.errors", kind.name())
            .inc();
        self.obs.metrics.counter("storage.error_codes", code).inc();
    }

    /// Report a finished top-level operation: observe its whole-op
    /// latency histogram (`core.op_ns`, labelled by op) and offer it to
    /// the slow-op log.
    pub fn finish_op(&self, op: &str, subject: &str, receipt: &Receipt) {
        self.obs
            .metrics
            .histogram("core.op_ns", op)
            .observe(receipt.sim_ns);
        self.obs.slow.record(op, subject, op_cost(receipt));
    }

    /// Record a post-hoc span for a finished operation (per-connection
    /// tracing); returns the span id for child legs.
    pub fn span(
        &self,
        name: &str,
        label: &str,
        parent: Option<srb_obs::SpanId>,
        start: Timestamp,
        dur_ns: u64,
    ) -> srb_obs::SpanId {
        self.obs.tracer.record(name, label, parent, start, dur_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srb_types::SimClock;

    #[test]
    fn op_cost_mirrors_receipt() {
        let r = Receipt {
            sim_ns: 42,
            bytes: 7,
            messages: 3,
            hops: 1,
            replicas_tried: 2,
            retries: 1,
            served_stale: true,
            ..Default::default()
        };
        let c = op_cost(&r);
        assert_eq!(c.sim_ns, 42);
        assert_eq!(c.bytes, 7);
        assert_eq!(c.messages, 3);
        assert_eq!(c.hops, 1);
        assert_eq!(c.replicas_tried, 2);
        assert_eq!(c.retries, 1);
        assert!(c.served_stale);
    }

    #[test]
    fn finish_op_feeds_histogram_and_slow_log() {
        let core = CoreObs::new(Obs::new(SimClock::new()));
        let r = Receipt {
            sim_ns: 9_999,
            ..Default::default()
        };
        core.finish_op("open", "/zoo/a", &r);
        let snap = core.obs.snapshot();
        assert_eq!(snap.histograms["core.op_ns"]["open"].count, 1);
        assert_eq!(snap.slow_ops.len(), 1);
        assert_eq!(snap.slow_ops[0].cost.sim_ns, 9_999);
    }

    #[test]
    fn storage_counters_label_by_driver_kind() {
        let core = CoreObs::new(Obs::new(SimClock::new()));
        core.storage_op(DriverKind::FileSystem, 1_000);
        core.storage_error(DriverKind::Archive, "TIMEOUT");
        let snap = core.obs.snapshot();
        assert_eq!(snap.counter("storage.ops", "file-system"), 1);
        assert_eq!(snap.counter("storage.errors", "archive"), 1);
        assert_eq!(snap.counter("storage.error_codes", "TIMEOUT"), 1);
    }
}

//! Method objects: remote proxy commands and proxy functions.
//!
//! Paper §4, object type 5: "The first type of method object runs an
//! executable program that is invoked by the SRB as a remote proxy command.
//! A proxy command is an executable that is available in the bin directory
//! of a SRB server and is made available for execution by the SRB
//! administrator … The second method is an invocation of a proxy function
//! inside SRB."
//!
//! Commands are closures registered per server (the "bin directory"); only
//! administrators may register them — the paper's security precaution.

use srb_types::sync::{LockRank, RwLock};
use srb_types::{SrbError, SrbResult};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

type CommandFn = Box<dyn Fn(&[String]) -> Vec<u8> + Send + Sync>;

/// The per-server registry of executable proxy commands and functions.
pub struct ProxyRegistry {
    commands: RwLock<HashMap<String, CommandFn>>,
    functions: RwLock<HashMap<String, CommandFn>>,
    invocations: AtomicU64,
}

impl Default for ProxyRegistry {
    fn default() -> Self {
        ProxyRegistry {
            commands: RwLock::new(LockRank::CoreState, "core.proxy.commands", HashMap::new()),
            functions: RwLock::new(LockRank::CoreState, "core.proxy.functions", HashMap::new()),
            invocations: AtomicU64::new(0),
        }
    }
}

impl ProxyRegistry {
    /// Empty registry with the built-in proxy functions installed.
    pub fn new(server_name: &str) -> Self {
        let reg = ProxyRegistry::default();
        // `srbps` — the paper's worked example: "shows the process status
        // similar to 'ps' command in Unix".
        let name = server_name.to_string();
        reg.install_command("srbps", move |args| {
            let flags = if args.is_empty() {
                String::new()
            } else {
                format!(" (flags: {})", args.join(" "))
            };
            format!("PID   CMD\n1     srbMaster [{name}]\n2     srbServer [{name}]{flags}\n")
                .into_bytes()
        });
        reg
    }

    /// Install an executable into the server's bin directory
    /// (administrator action).
    pub fn install_command<F>(&self, name: &str, f: F)
    where
        F: Fn(&[String]) -> Vec<u8> + Send + Sync + 'static,
    {
        self.commands.write().insert(name.to_string(), Box::new(f));
    }

    /// Install an in-server proxy function (e.g. a metadata extractor).
    pub fn install_function<F>(&self, name: &str, f: F)
    where
        F: Fn(&[String]) -> Vec<u8> + Send + Sync + 'static,
    {
        self.functions.write().insert(name.to_string(), Box::new(f));
    }

    /// Execute a registered command with user-supplied arguments; the
    /// result is "piped back to the browser".
    pub fn run_command(&self, name: &str, args: &[String]) -> SrbResult<Vec<u8>> {
        let g = self.commands.read();
        let f = g.get(name).ok_or_else(|| {
            SrbError::NotFound(format!("proxy command '{name}' not in server bin"))
        })?;
        self.invocations.fetch_add(1, Ordering::Relaxed);
        Ok(f(args))
    }

    /// Invoke a proxy function.
    pub fn run_function(&self, name: &str, args: &[String]) -> SrbResult<Vec<u8>> {
        let g = self.functions.read();
        let f = g
            .get(name)
            .ok_or_else(|| SrbError::NotFound(format!("proxy function '{name}'")))?;
        self.invocations.fetch_add(1, Ordering::Relaxed);
        Ok(f(args))
    }

    /// Does the named command exist?
    pub fn has_command(&self, name: &str) -> bool {
        self.commands.read().contains_key(name)
    }

    /// Does the named function exist?
    pub fn has_function(&self, name: &str) -> bool {
        self.functions.read().contains_key(name)
    }

    /// Total invocations (commands + functions).
    pub fn invocation_count(&self) -> u64 {
        self.invocations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_srbps_works() {
        let reg = ProxyRegistry::new("srb-sdsc");
        let out = reg.run_command("srbps", &[]).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("srbMaster [srb-sdsc]"));
        assert!(reg.has_command("srbps"));
    }

    #[test]
    fn command_line_parameters_passed_through() {
        let reg = ProxyRegistry::new("s");
        let out = reg.run_command("srbps", &["-ef".to_string()]).unwrap();
        assert!(String::from_utf8(out).unwrap().contains("flags: -ef"));
    }

    #[test]
    fn custom_commands_and_functions() {
        let reg = ProxyRegistry::new("s");
        reg.install_command("echo", |args| args.join(" ").into_bytes());
        reg.install_function("double", |args| {
            let n: i64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0);
            (n * 2).to_string().into_bytes()
        });
        assert_eq!(
            reg.run_command("echo", &["a".into(), "b".into()]).unwrap(),
            b"a b"
        );
        assert_eq!(reg.run_function("double", &["21".into()]).unwrap(), b"42");
        assert_eq!(reg.invocation_count(), 2);
    }

    #[test]
    fn unknown_names_rejected() {
        let reg = ProxyRegistry::new("s");
        assert!(matches!(
            reg.run_command("rm", &[]),
            Err(SrbError::NotFound(_))
        ));
        assert!(reg.run_function("nope", &[]).is_err());
        assert!(!reg.has_function("nope"));
    }
}

//! Replica selection policies.
//!
//! The paper's federation replicates "to provide load balancing" and for
//! fault tolerance, "automatically redirecting access to a replica on a
//! separate storage system when the first storage system is unavailable".
//! The policy decides the *order* in which replicas are tried; failover
//! walks that order skipping unavailable resources. `LeastLoaded` is the
//! default; `Random` and `FirstAlive` are the ablation baselines (A3).

use srb_mcat::{Replica, ReplicaStatus};
use srb_net::{HealthRegistry, LoadTracker};
use srb_types::ResourceId;

/// The candidates a read walks, grouped by how desperate the caller is.
#[derive(Debug)]
pub struct OrderedReplicas<'a> {
    /// Fresh (up-to-date) replicas in try order. Replicas on open-breaker
    /// resources are demoted behind every healthy one — the breaker's job
    /// is exactly to keep known-bad resources from being tried first —
    /// but kept as a last resort when nothing healthier exists.
    pub fresh: Vec<&'a Replica>,
    /// Stale byte replicas, policy-ordered. Only served under the
    /// connection's explicit stale opt-in, and flagged in the receipt.
    pub stale: Vec<&'a Replica>,
}

/// How to order candidate replicas for a read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicaPolicy {
    /// Prefer the replica whose resource has the least outstanding load
    /// (in-flight operations, then accumulated busy time).
    #[default]
    LeastLoaded,
    /// Deterministic pseudo-random order, seeded per request.
    Random(u64),
    /// Catalog order: always try replica #1 first (the naive baseline).
    FirstAlive,
}

impl ReplicaPolicy {
    /// Order the byte-addressable, up-to-date replicas for a read attempt.
    /// Convenience wrapper over [`ReplicaPolicy::order_with_health`] with
    /// no breaker consultation; stale replicas are excluded entirely.
    pub fn order<'a>(&self, replicas: &'a [Replica], load: &LoadTracker) -> Vec<&'a Replica> {
        self.order_with_health(replicas, load, None).fresh
    }

    /// Order candidate replicas for a read attempt, consulting the health
    /// registry when given: fresh replicas whose resource's breaker is
    /// `Open` are demoted behind every non-open one (stable within each
    /// group, so the policy order is preserved). Stale byte replicas come
    /// back separately for graceful degradation.
    pub fn order_with_health<'a>(
        &self,
        replicas: &'a [Replica],
        load: &LoadTracker,
        health: Option<&HealthRegistry>,
    ) -> OrderedReplicas<'a> {
        let fresh = self.sort(
            replicas
                .iter()
                .filter(|r| r.spec.is_byte_addressable() && r.status == ReplicaStatus::UpToDate)
                .collect(),
            load,
        );
        let stale = self.sort(
            replicas
                .iter()
                .filter(|r| r.spec.is_byte_addressable() && r.status == ReplicaStatus::Stale)
                .collect(),
            load,
        );
        let fresh = match health {
            Some(h) => {
                let (closed, open): (Vec<&Replica>, Vec<&Replica>) = fresh
                    .into_iter()
                    .partition(|r| !r.spec.resource().is_some_and(|res| h.is_open(res)));
                let mut v = closed;
                v.extend(open);
                v
            }
            None => fresh,
        };
        OrderedReplicas { fresh, stale }
    }

    /// Apply the policy's ordering to an already-filtered candidate list.
    fn sort<'a>(&self, mut fresh: Vec<&'a Replica>, load: &LoadTracker) -> Vec<&'a Replica> {
        match self {
            ReplicaPolicy::FirstAlive => {
                fresh.sort_by_key(|r| r.repl_num);
            }
            ReplicaPolicy::LeastLoaded => {
                fresh.sort_by_key(|r| {
                    (
                        r.spec
                            .resource()
                            .map(|res| load.score(res))
                            .unwrap_or(u128::MAX),
                        r.repl_num,
                    )
                });
            }
            ReplicaPolicy::Random(seed) => {
                // Fisher–Yates with a splitmix64 stream — deterministic per
                // seed, no allocation beyond the output vec.
                let mut state = seed.wrapping_add(0x9e3779b97f4a7c15);
                let mut next = || {
                    state = state.wrapping_add(0x9e3779b97f4a7c15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                    z ^ (z >> 31)
                };
                for i in (1..fresh.len()).rev() {
                    let j = (next() % (i as u64 + 1)) as usize;
                    fresh.swap(i, j);
                }
            }
        }
        fresh
    }

    /// The resource the policy would pick first (for tests and the MySRB
    /// replica display).
    pub fn pick(&self, replicas: &[Replica], load: &LoadTracker) -> Option<ResourceId> {
        self.order(replicas, load)
            .first()
            .and_then(|r| r.spec.resource())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srb_mcat::AccessSpec;
    use srb_types::{ReplicaId, Timestamp};

    fn replica(num: u32, resource: u64, status: ReplicaStatus) -> Replica {
        Replica {
            id: ReplicaId(num as u64),
            repl_num: num,
            spec: AccessSpec::Stored {
                resource: ResourceId(resource),
                phys_path: format!("/p{num}"),
            },
            size: 10,
            checksum: None,
            in_container: None,
            status,
            pinned_until: None,
            created: Timestamp(0),
        }
    }

    #[test]
    fn first_alive_uses_catalog_order() {
        let reps = vec![
            replica(2, 20, ReplicaStatus::UpToDate),
            replica(1, 10, ReplicaStatus::UpToDate),
        ];
        let load = LoadTracker::new();
        let order = ReplicaPolicy::FirstAlive.order(&reps, &load);
        assert_eq!(order[0].repl_num, 1);
        assert_eq!(order[1].repl_num, 2);
    }

    #[test]
    fn least_loaded_prefers_idle_resource() {
        let reps = vec![
            replica(1, 10, ReplicaStatus::UpToDate),
            replica(2, 20, ReplicaStatus::UpToDate),
        ];
        let load = LoadTracker::new();
        load.charge(ResourceId(10), 1_000_000);
        let order = ReplicaPolicy::LeastLoaded.order(&reps, &load);
        assert_eq!(order[0].spec.resource(), Some(ResourceId(20)));
        assert_eq!(
            ReplicaPolicy::LeastLoaded.pick(&reps, &load),
            Some(ResourceId(20))
        );
    }

    #[test]
    fn stale_replicas_excluded() {
        let reps = vec![
            replica(1, 10, ReplicaStatus::Stale),
            replica(2, 20, ReplicaStatus::UpToDate),
        ];
        let load = LoadTracker::new();
        for policy in [
            ReplicaPolicy::FirstAlive,
            ReplicaPolicy::LeastLoaded,
            ReplicaPolicy::Random(1),
        ] {
            let order = policy.order(&reps, &load);
            assert_eq!(order.len(), 1);
            assert_eq!(order[0].repl_num, 2);
        }
    }

    #[test]
    fn open_breaker_resources_demoted_but_not_dropped() {
        use srb_net::{BreakerConfig, HealthRegistry};
        use srb_types::SimClock;
        let reps = vec![
            replica(1, 10, ReplicaStatus::UpToDate),
            replica(2, 20, ReplicaStatus::UpToDate),
        ];
        let load = LoadTracker::new();
        let health = HealthRegistry::new(SimClock::new(), BreakerConfig::default());
        // Trip resource 10's breaker; catalog-order policy would try it
        // first, but health-aware ordering demotes it behind resource 20.
        for _ in 0..8 {
            health.record(ResourceId(10), false);
        }
        let ordered = ReplicaPolicy::FirstAlive.order_with_health(&reps, &load, Some(&health));
        assert_eq!(ordered.fresh.len(), 2);
        assert_eq!(ordered.fresh[0].spec.resource(), Some(ResourceId(20)));
        assert_eq!(ordered.fresh[1].spec.resource(), Some(ResourceId(10)));
        // Without the registry the catalog order stands.
        let plain = ReplicaPolicy::FirstAlive.order_with_health(&reps, &load, None);
        assert_eq!(plain.fresh[0].spec.resource(), Some(ResourceId(10)));
    }

    #[test]
    fn stale_replicas_surface_in_their_own_group() {
        let reps = vec![
            replica(1, 10, ReplicaStatus::Stale),
            replica(2, 20, ReplicaStatus::UpToDate),
            replica(3, 30, ReplicaStatus::Stale),
        ];
        let load = LoadTracker::new();
        let ordered = ReplicaPolicy::FirstAlive.order_with_health(&reps, &load, None);
        assert_eq!(ordered.fresh.len(), 1);
        assert_eq!(ordered.fresh[0].repl_num, 2);
        let stale_nums: Vec<u32> = ordered.stale.iter().map(|r| r.repl_num).collect();
        assert_eq!(stale_nums, vec![1, 3]);
    }

    #[test]
    fn non_byte_replicas_excluded() {
        let mut url = replica(1, 10, ReplicaStatus::UpToDate);
        url.spec = AccessSpec::Url {
            url: "http://x/".into(),
        };
        let reps = vec![url, replica(2, 20, ReplicaStatus::UpToDate)];
        let load = LoadTracker::new();
        let order = ReplicaPolicy::FirstAlive.order(&reps, &load);
        assert_eq!(order.len(), 1);
        assert_eq!(order[0].repl_num, 2);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_covers_all() {
        let reps: Vec<Replica> = (1..=8)
            .map(|i| replica(i, i as u64 * 10, ReplicaStatus::UpToDate))
            .collect();
        let load = LoadTracker::new();
        let a: Vec<u32> = ReplicaPolicy::Random(7)
            .order(&reps, &load)
            .iter()
            .map(|r| r.repl_num)
            .collect();
        let b: Vec<u32> = ReplicaPolicy::Random(7)
            .order(&reps, &load)
            .iter()
            .map(|r| r.repl_num)
            .collect();
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort();
        assert_eq!(sorted, (1..=8).collect::<Vec<_>>());
        // Different seeds give different orders (with 8! permutations the
        // chance of collision across 3 seeds is negligible).
        let c: Vec<u32> = ReplicaPolicy::Random(8)
            .order(&reps, &load)
            .iter()
            .map(|r| r.repl_num)
            .collect();
        let d: Vec<u32> = ReplicaPolicy::Random(9)
            .order(&reps, &load)
            .iter()
            .map(|r| r.repl_num)
            .collect();
        assert!(a != c || a != d);
    }
}

//! Federated zones: peered MCATs presenting one logical grid.
//!
//! The paper's deployments ran a single MCAT at SDSC, but SRB was designed
//! as *federated* middleware — later SRB releases (and the EU DataGrid /
//! ILDG federations built on the same shape) peered autonomous **zones**,
//! each owning its own catalog, resources and durability log, joined by
//! wide-area links. This module reproduces that shape:
//!
//! * A [`Zone`] wraps one [`Grid`](crate::Grid) — its own MCAT, storage
//!   resources and WAL device — exactly as built by
//!   [`GridBuilder`](crate::GridBuilder). Every zone in a federation runs
//!   on **one shared [`SimClock`]**, so cross-zone costs advance a single
//!   timeline (pass the federation's clock via
//!   [`GridBuilder::clock`](crate::GridBuilder::clock)).
//! * A [`Federation`] joins zones with peering links
//!   ([`LinkSpec`](srb_net::LinkSpec) latency/bandwidth), each link backed
//!   by its own entry in a federation-level
//!   [`FaultPlan`](srb_net::FaultPlan) (partitions, seeded flaky modes)
//!   and a per-link circuit breaker.
//! * **Cross-zone registration** ([`Federation::register_remote`]) writes
//!   a remote-replica pointer (`srb+zone://zone/path`) plus WAL-logged
//!   home-zone provenance into a peer catalog.
//! * **Federated queries** ([`FedConnection`]) fan out to reachable peer
//!   zones through the PR-3 work-pulling fan-out engine, merge hits
//!   deterministically with zone tags, and keep cursor pagination O(page)
//!   via composite zone+cursor tokens.
//! * **Subscription replication** ([`Federation::subscribe`] +
//!   [`Federation::pump`]) drains LSN-ordered catalog deltas exported from
//!   the publisher's PR-9 WAL over the link, applying them to the
//!   subscriber's catalog in bounded batches with measurable lag.
//!
//! Locking: federation state introduces two ranks above `CoreState` —
//! `ZoneFed` (the subscription registry) and `ZoneLink` (one link's
//! outbox/cursor state) — so the pump may hold link state while applying
//! deltas into a zone's catalog tables without inverting the hierarchy.

mod federation;
mod query;
mod replication;

pub use federation::{Federation, ZoneId, ZoneLinkStatus};
pub use query::{FedConnection, ZoneHit};
pub use replication::{PumpReport, SubscriptionStatus};

use srb_types::SimClock;
use std::sync::Arc;

/// One autonomous zone: a complete grid (MCAT + resources + WAL) under a
/// federation-unique name.
pub struct Zone {
    name: String,
    /// The zone's grid. Public so callers can open ordinary
    /// [`SrbConnection`](crate::SrbConnection)s against the zone.
    pub grid: crate::Grid,
    contact: srb_types::ServerId,
    device: Arc<srb_storage::LogDevice>,
}

impl Zone {
    /// The zone's federation-unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The server peers connect to for catalog traffic.
    pub fn contact(&self) -> srb_types::ServerId {
        self.contact
    }

    /// The zone's WAL device — the source of replication deltas.
    pub fn device(&self) -> &Arc<srb_storage::LogDevice> {
        &self.device
    }

    /// The zone's virtual clock (shared across the federation).
    pub fn clock(&self) -> &SimClock {
        &self.grid.clock
    }
}

//! Remote-zone query routing.
//!
//! A [`FedConnection`] bundles one ordinary [`SrbConnection`] per
//! reachable zone — the *home* zone's connection is mandatory, peers are
//! best-effort (a zone that doesn't know the user is simply not queried).
//! Queries fan out to every reachable peer through the PR-3 fan-out
//! engine, each remote leg paying its peering-link round trip (and
//! drawing from the link's fault plan), and hits come back tagged with
//! the zone they live in, merged in a deterministic `(path, zone)` order.
//!
//! Pagination stays O(page) across zones with a composite cursor
//! `z<zone-index>:<inner-token>`: zones are walked in index order, each
//! delegating to its own resumable catalog cursor, so no zone ever
//! materializes more than one page.

use crate::fanout::{run_legs, FanoutMode};
use crate::zone::federation::{Federation, ZoneId};
use crate::SrbConnection;
use srb_mcat::{Query, QueryHit};
use srb_net::Receipt;
use srb_types::{SrbError, SrbResult};

/// A query hit tagged with the zone whose catalog produced it.
#[derive(Debug, Clone)]
pub struct ZoneHit {
    /// Name of the zone the hit lives in.
    pub zone: String,
    /// The underlying catalog hit.
    pub hit: QueryHit,
}

/// A federated session: one authenticated connection per zone that
/// recognizes the user, anchored at a home zone.
pub struct FedConnection<'f> {
    fed: &'f Federation,
    home: usize,
    /// Indexed by zone index; `None` where sign-on failed (unknown user).
    conns: Vec<Option<SrbConnection<'f>>>,
}

impl Federation {
    /// Sign on at `home` and opportunistically at every peer zone.
    ///
    /// The home sign-on must succeed; peers that reject the credentials
    /// (federated zones manage users autonomously) are skipped and simply
    /// never queried.
    pub fn connect(
        &self,
        home: ZoneId,
        name: &str,
        domain: &str,
        password: &str,
    ) -> SrbResult<FedConnection<'_>> {
        self.zone(home)?;
        let mut conns = Vec::new();
        for (zid, zone) in self.zones() {
            let conn = SrbConnection::connect(&zone.grid, zone.contact(), name, domain, password);
            match conn {
                Ok(c) => conns.push(Some(c)),
                Err(_) if zid != home => conns.push(None),
                Err(e) => return Err(e),
            }
        }
        Ok(FedConnection {
            fed: self,
            home: home.0,
            conns,
        })
    }
}

impl<'f> FedConnection<'f> {
    /// The home zone.
    pub fn home(&self) -> ZoneId {
        ZoneId(self.home)
    }

    /// The home zone's plain connection, for non-federated operations.
    pub fn home_conn(&self) -> &SrbConnection<'f> {
        // The constructor guarantees the home slot is always populated.
        match &self.conns[self.home] {
            Some(c) => c,
            None => unreachable!("home connection is mandatory"),
        }
    }

    /// Zone indexes this connection can currently query: the home zone
    /// plus signed-on peers whose link from home is up. Always ascending —
    /// the `z<zone>:` pagination cursor locates its leg (and skips past a
    /// stale one) by ordered comparison, which a home-first order would
    /// break whenever home's index exceeds a peer's.
    fn legs(&self) -> Vec<usize> {
        (0..self.conns.len())
            .filter(|&i| {
                i == self.home
                    || (self.conns[i].is_some() && self.fed.link_up(ZoneId(self.home), ZoneId(i)))
            })
            .collect()
    }

    /// Run a conjunctive query against every reachable zone in parallel.
    ///
    /// Remote legs pay their peering-link round trip and draw from the
    /// link's fault plan; a leg that faults mid-query is dropped (its
    /// zone contributes no hits) rather than failing the whole query.
    /// Hits are merged in deterministic `(path, zone)` order; receipts
    /// max-compose across legs as parallel work.
    pub fn query(&self, q: &Query) -> SrbResult<(Vec<ZoneHit>, Receipt)> {
        let legs = self.legs();
        let fed = self.fed;
        let home = self.home;
        self.fed
            .metrics()
            .counter("zone.query_legs", "")
            .add(legs.len() as u64);
        let results: Vec<SrbResult<(usize, Vec<QueryHit>, Receipt)>> =
            run_legs(FanoutMode::Parallel, legs.len(), |i| {
                let z = legs[i];
                let link_ns = if z == home {
                    0
                } else {
                    fed.charge_link_rpc(home, z)?
                };
                let conn = self.conns[z]
                    .as_ref()
                    .ok_or_else(|| SrbError::Internal("leg without connection".into()))?;
                let (hits, mut receipt) = conn.query(q)?;
                receipt.absorb(&Receipt::time(link_ns));
                Ok((z, hits, receipt))
            });
        let mut merged = Vec::new();
        let mut receipt = Receipt::free();
        for (leg_no, res) in results.into_iter().enumerate() {
            match res {
                Ok((z, hits, r)) => {
                    receipt.join_parallel(&r);
                    let zone = fed.zone(ZoneId(z))?.name().to_string();
                    merged.extend(hits.into_iter().map(|hit| ZoneHit {
                        zone: zone.clone(),
                        hit,
                    }));
                }
                Err(e) if legs[leg_no] == home => return Err(e),
                Err(_) => {
                    fed.metrics().counter("zone.query_leg_failures", "").inc();
                }
            }
        }
        merged.sort_by(|a, b| (&a.hit.path, &a.zone).cmp(&(&b.hit.path, &b.zone)));
        Ok((merged, receipt))
    }

    /// One page of federated query results.
    ///
    /// Zones are visited sequentially in index order (home's position
    /// included), each through its own resumable cursor, so the composite
    /// token `z<zone>:<inner>` resumes exactly where the last page
    /// stopped — in the middle of a zone or at the boundary to the next.
    /// Per-zone pages shortened by permission filtering are topped up
    /// from the same zone before moving on.
    pub fn query_page(
        &self,
        q: &Query,
        token: Option<&str>,
        page: usize,
    ) -> SrbResult<(Vec<ZoneHit>, Option<String>, Receipt)> {
        if page == 0 {
            return Err(SrbError::Invalid("page size must be positive".into()));
        }
        let legs = self.legs();
        let (start_zone, mut inner): (usize, Option<String>) = match token {
            None => (legs.first().copied().unwrap_or(self.home), None),
            Some(t) => parse_token(t)?,
        };
        let fed = self.fed;
        let mut out = Vec::new();
        let mut receipt = Receipt::free();
        let mut pos = legs
            .iter()
            .position(|&z| z >= start_zone)
            .unwrap_or(legs.len());
        // A stale token can point at a zone that has since dropped off the
        // reachable list; resuming at the next reachable zone is the same
        // contract a single-zone cursor offers after catalog drift. The
        // inner token belongs to the dropped zone's cursor, so it must not
        // be replayed against the zone we land on instead.
        if legs.get(pos) != Some(&start_zone) {
            inner = None;
        }
        while pos < legs.len() {
            let z = legs[pos];
            let conn = match self.conns[z].as_ref() {
                Some(c) => c,
                None => {
                    pos += 1;
                    inner = None;
                    continue;
                }
            };
            if z != self.home {
                match fed.charge_link_rpc(self.home, z) {
                    Ok(ns) => receipt.absorb(&Receipt::time(ns)),
                    Err(_) => {
                        fed.metrics().counter("zone.query_leg_failures", "").inc();
                        pos += 1;
                        inner = None;
                        continue;
                    }
                }
            }
            let zone = fed.zone(ZoneId(z))?.name().to_string();
            while out.len() < page {
                let want = page - out.len();
                let (hits, next, r) = conn.query_page(q, inner.as_deref(), want)?;
                receipt.absorb(&r);
                out.extend(hits.into_iter().map(|hit| ZoneHit {
                    zone: zone.clone(),
                    hit,
                }));
                inner = next;
                if inner.is_none() {
                    break;
                }
            }
            if out.len() >= page {
                let next = match &inner {
                    Some(t) => Some(format!("z{z}:{t}")),
                    None => legs.get(pos + 1).map(|&nz| format!("z{nz}:")),
                };
                return Ok((out, next, receipt));
            }
            pos += 1;
            inner = None;
        }
        Ok((out, None, receipt))
    }
}

/// Split a composite `z<zone>:<inner>` cursor token.
fn parse_token(t: &str) -> SrbResult<(usize, Option<String>)> {
    let rest = t
        .strip_prefix('z')
        .ok_or_else(|| SrbError::Invalid(format!("bad federated cursor: {t}")))?;
    let (zone, inner) = rest
        .split_once(':')
        .ok_or_else(|| SrbError::Invalid(format!("bad federated cursor: {t}")))?;
    let zone: usize = zone
        .parse()
        .map_err(|_| SrbError::Invalid(format!("bad federated cursor: {t}")))?;
    let inner = if inner.is_empty() {
        None
    } else {
        Some(inner.to_string())
    };
    Ok((zone, inner))
}

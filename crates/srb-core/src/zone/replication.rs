//! Subscription-style asynchronous replication between zones.
//!
//! A subscriber zone mirrors a publisher's collection subtree under a
//! local prefix (`/zones/<publisher><subtree>`). The mirror is driven by
//! **catalog deltas**: LSN-ordered redo records exported straight from
//! the publisher's PR-9 WAL ([`srb_mcat::export_deltas`]), shipped over
//! the peering link into a per-subscription outbox, and applied to the
//! subscriber's catalog in bounded batches by [`Federation::pump`].
//!
//! Zones have independent id generators, so raw rows are never merged.
//! Each subscription keeps remote→local id maps and re-materializes every
//! delta through the subscriber's own table APIs — which WAL-logs the
//! mirror writes, making the subscriber independently durable. Applied
//! this way, full-row-image `Put`s are idempotent upserts and `Delete`s
//! tolerate absence, exactly as on recovery replay.
//!
//! When the publisher's checkpoint prunes the log past the subscription's
//! fetch cursor, the gap is unrecoverable from deltas and the
//! subscription falls back to a **resync**: rebuild the mirror from a
//! full subtree walk, then resume delta fetches from the publisher's
//! current durable LSN.

use crate::zone::federation::{ensure_collection, Federation, ZoneId};
use crate::zone::Zone;
use srb_mcat::dataset::AccessSpec;
use srb_mcat::metadata::{MetaKind, Subject};
use srb_mcat::{
    export_deltas, Dataset, Delta, DeltaFetch, Mcat, WalOp, ZONE_HOME_ATTR, ZONE_PATH_ATTR,
    ZONE_URL_SCHEME,
};
use srb_types::sync::{LockRank, Mutex};
use srb_types::{
    CollectionId, DatasetId, LogicalPath, Lsn, MetaId, MetaValue, SrbError, SrbResult, Triplet,
};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// One zone's mirror of a collection in the publisher's subtree.
struct MirrorColl {
    local: CollectionId,
    /// The collection's path in the publisher zone (provenance for
    /// datasets created under it).
    src_path: LogicalPath,
}

/// One subscription: `dst` mirrors `src`'s subtree at `src_root` under
/// `dst_root`. Immutable routing fields plus the `ZoneLink`-ranked pump
/// state.
pub(crate) struct Subscription {
    pub(crate) src: usize,
    pub(crate) dst: usize,
    pub(crate) src_root: LogicalPath,
    pub(crate) dst_root: LogicalPath,
    state: Mutex<SubInner>,
}

/// Pump state: the fetch cursor, the outbox of shipped-but-unapplied
/// deltas, and the remote→local id maps.
struct SubInner {
    /// Highest publisher LSN fetched into the outbox.
    fetched: Lsn,
    /// Shipped deltas awaiting application, LSN order.
    outbox: VecDeque<Delta>,
    /// Publisher collection id (raw) → mirror.
    colls: HashMap<u64, MirrorColl>,
    /// Publisher dataset id (raw) → local mirror id.
    dss: HashMap<u64, DatasetId>,
    /// Publisher metadata row id (raw) → local row id.
    metas: HashMap<u64, MetaId>,
    /// Lifetime deltas applied.
    applied: u64,
    /// Full-mirror rebuilds forced by checkpoint gaps.
    resyncs: u64,
    /// Worst exposure window seen: commit in the home zone → applied here.
    max_lag_ns: u64,
}

/// What one [`Federation::pump`] round did.
#[derive(Debug, Clone, Copy, Default)]
pub struct PumpReport {
    /// Deltas fetched into outboxes this round.
    pub fetched: usize,
    /// Deltas applied to subscriber catalogs this round.
    pub applied: usize,
    /// Deltas still waiting in outboxes after the round.
    pub pending: usize,
    /// Subscriptions that could not fetch (partitioned / faulted link).
    pub blocked: usize,
    /// Full resyncs forced by publisher checkpoint gaps.
    pub resyncs: usize,
    /// Virtual nanoseconds the round charged to the shared clock.
    pub cost_ns: u64,
    /// Worst exposure window among deltas applied this round.
    pub max_lag_ns: u64,
}

/// Read-only view of one subscription for status pages and experiments.
#[derive(Debug, Clone)]
pub struct SubscriptionStatus {
    /// Publisher zone.
    pub src: ZoneId,
    /// Subscriber zone.
    pub dst: ZoneId,
    /// Subscribed subtree in the publisher.
    pub src_root: String,
    /// Mirror prefix in the subscriber.
    pub dst_root: String,
    /// Highest publisher LSN fetched so far.
    pub fetched_lsn: u64,
    /// Lifetime deltas applied.
    pub applied: u64,
    /// Outbox depth (shipped, not yet applied).
    pub outbox: usize,
    /// Full-mirror rebuilds forced by checkpoint gaps.
    pub resyncs: u64,
    /// Worst exposure window seen, in nanoseconds.
    pub max_lag_ns: u64,
}

impl Federation {
    /// Subscribe `dst` to the publisher subtree `src_root` in `src`.
    ///
    /// Performs the initial full mirror copy synchronously (charging the
    /// link for the export) and returns the mirror's local prefix,
    /// `/zones/<src zone><src_root>`. Subsequent changes flow through
    /// [`Federation::pump`].
    pub fn subscribe(&self, dst: ZoneId, src: ZoneId, src_root: &str) -> SrbResult<String> {
        if dst == src {
            return Err(SrbError::Invalid(
                "a zone cannot subscribe to itself".into(),
            ));
        }
        let src_lp = LogicalPath::parse(src_root)?;
        let src_name = self.zone(src)?.name().to_string();
        self.zone(dst)?;
        let mut dst_root = LogicalPath::root().child("zones")?.child(&src_name)?;
        for part in src_lp.components() {
            dst_root = dst_root.child(part)?;
        }
        {
            let subs = self.subs_registry().read();
            if subs
                .iter()
                .any(|s| s.src == src.0 && s.dst == dst.0 && s.src_root == src_lp)
            {
                return Err(SrbError::AlreadyExists(format!(
                    "subscription {dst} <- {src} {src_root}"
                )));
            }
        }
        let sub = Arc::new(Subscription {
            src: src.0,
            dst: dst.0,
            src_root: src_lp,
            dst_root: dst_root.clone(),
            state: Mutex::new(
                LockRank::ZoneLink,
                "zone.link.sub",
                SubInner {
                    fetched: Lsn::default(),
                    outbox: VecDeque::new(),
                    colls: HashMap::new(),
                    dss: HashMap::new(),
                    metas: HashMap::new(),
                    applied: 0,
                    resyncs: 0,
                    max_lag_ns: 0,
                },
            ),
        });
        {
            let mut inner = sub.state.lock();
            // Handshake round trip first: an unlinked or down pair must
            // fail before any catalog mutation, not leave a fully built
            // mirror behind with no subscription registered.
            let handshake_ns = self.charge_link_rpc(dst.0, src.0)?;
            let copied = self.resync(&sub, &mut inner)?;
            // The initial copy crosses the link like any other transfer;
            // a fault injected mid-copy tears the mirror back down.
            match self.charge_link(src.0, dst.0, copied) {
                Ok(ns) => {
                    self.clock().advance(handshake_ns + ns);
                }
                Err(e) => {
                    teardown_mirror(&mut inner, &self.zones_slice()[dst.0].grid.mcat);
                    return Err(e);
                }
            }
        }
        self.subs_registry().write().push(sub);
        self.metrics().counter("zone.subscriptions", "").inc();
        Ok(dst_root.to_string())
    }

    /// Drive every subscription one round: fetch new publisher deltas
    /// over the link, then apply at most `batch` outbox deltas per
    /// subscription to the subscriber's catalog. Link costs and apply
    /// costs advance the shared clock, so replication lag is measurable
    /// against commit times. Deterministic: subscriptions run in
    /// registration order.
    pub fn pump(&self, batch: usize) -> SrbResult<PumpReport> {
        if batch == 0 {
            return Err(SrbError::Invalid("pump batch must be positive".into()));
        }
        let subs: Vec<Arc<Subscription>> = self.subs_registry().read().clone();
        let mut report = PumpReport::default();
        for sub in &subs {
            let mut inner = sub.state.lock();
            self.pump_one(sub, &mut inner, batch, &mut report)?;
            report.pending += inner.outbox.len();
            self.metrics()
                .gauge("zone.outbox_depth", &link_label(self, sub))
                .set(inner.outbox.len() as i64);
        }
        self.metrics().counter("zone.pump_rounds", "").inc();
        report.cost_ns = report.cost_ns.max(1); // a round is never free
        Ok(report)
    }

    /// Pump until every outbox is dry or `max_rounds` elapses; returns
    /// the cumulative report. The chaos oracle and experiments use this
    /// to drain after heal.
    pub fn pump_until_drained(&self, batch: usize, max_rounds: usize) -> SrbResult<PumpReport> {
        let mut total = PumpReport::default();
        for _ in 0..max_rounds {
            let r = self.pump(batch)?;
            total.fetched += r.fetched;
            total.applied += r.applied;
            total.blocked += r.blocked;
            total.resyncs += r.resyncs;
            total.cost_ns += r.cost_ns;
            total.max_lag_ns = total.max_lag_ns.max(r.max_lag_ns);
            total.pending = r.pending;
            if r.pending == 0 && r.fetched == 0 {
                return Ok(total);
            }
        }
        Ok(total)
    }

    /// Read-only status of every subscription, registration order.
    pub fn subscriptions(&self) -> Vec<SubscriptionStatus> {
        self.subs_registry()
            .read()
            .iter()
            .map(|sub| {
                let inner = sub.state.lock();
                SubscriptionStatus {
                    src: ZoneId(sub.src),
                    dst: ZoneId(sub.dst),
                    src_root: sub.src_root.to_string(),
                    dst_root: sub.dst_root.to_string(),
                    fetched_lsn: inner.fetched.raw(),
                    applied: inner.applied,
                    outbox: inner.outbox.len(),
                    resyncs: inner.resyncs,
                    max_lag_ns: inner.max_lag_ns,
                }
            })
            .collect()
    }

    /// One subscription's round: poll, ship, apply.
    fn pump_one(
        &self,
        sub: &Subscription,
        inner: &mut SubInner,
        batch: usize,
        report: &mut PumpReport,
    ) -> SrbResult<()> {
        let zones = self.zones_slice();
        let src = &zones[sub.src];
        let dst = &zones[sub.dst];

        // --- fetch: poll the publisher and ship new committed deltas ---
        match self.charge_link_rpc(sub.dst, sub.src) {
            Err(_) => report.blocked += 1, // partitioned: apply what we have
            Ok(poll_ns) => {
                let mut fetch_ns = poll_ns;
                match export_deltas(src.device(), inner.fetched)? {
                    DeltaFetch::Resync { .. } => {
                        let copied = self.resync_locked(sub, inner, src, dst)?;
                        inner.resyncs += 1;
                        report.resyncs += 1;
                        self.metrics().counter("zone.resyncs", "").inc();
                        match self.charge_link(sub.src, sub.dst, copied) {
                            Ok(ns) => fetch_ns += ns,
                            Err(_) => report.blocked += 1,
                        }
                    }
                    DeltaFetch::Deltas {
                        deltas,
                        bytes,
                        horizon,
                    } => {
                        // The cursor tracks the *full* fetch horizon, not the
                        // last relevant delta: commit markers and runs of
                        // irrelevant ops (user/resource churn) must not pin
                        // the cursor where a later publisher checkpoint would
                        // prune past it and force a spurious full resync.
                        if deltas.is_empty() {
                            // Nothing to ship; the poll round trip (already
                            // charged) is what moved the horizon.
                            inner.fetched = inner.fetched.max(horizon);
                        } else {
                            match self.charge_link(sub.src, sub.dst, bytes) {
                                Ok(ns) => {
                                    fetch_ns += ns;
                                    inner.fetched = inner.fetched.max(horizon);
                                    let relevant: Vec<Delta> = deltas
                                        .into_iter()
                                        .filter(|d| relevant_op(&d.record.op))
                                        .collect();
                                    report.fetched += relevant.len();
                                    self.metrics()
                                        .counter("zone.deltas_fetched", "")
                                        .add(relevant.len() as u64);
                                    self.metrics().counter("zone.delta_bytes", "").add(bytes);
                                    inner.outbox.extend(relevant);
                                }
                                Err(_) => report.blocked += 1,
                            }
                        }
                    }
                }
                self.clock().advance(fetch_ns);
                report.cost_ns += fetch_ns;
            }
        }

        // --- apply: drain up to `batch` deltas into the mirror ---
        let mut applied = 0usize;
        while applied < batch {
            let Some(delta) = inner.outbox.pop_front() else {
                break;
            };
            let committed_at = delta.committed_at_ns;
            self.apply_delta(sub, inner, dst, delta)?;
            applied += 1;
            inner.applied += 1;
            let lag = self
                .clock()
                .now()
                .nanos()
                .saturating_sub(committed_at)
                .max(1);
            inner.max_lag_ns = inner.max_lag_ns.max(lag);
            report.max_lag_ns = report.max_lag_ns.max(lag);
            self.metrics()
                .histogram("zone.lag_ns", &link_label(self, sub))
                .observe(lag);
        }
        if applied > 0 {
            report.applied += applied;
            self.metrics()
                .counter("zone.deltas_applied", "")
                .add(applied as u64);
            if let Some(wal) = dst.grid.mcat.wal() {
                let apply_ns = wal.take_pending_ns();
                self.clock().advance(apply_ns);
                report.cost_ns += apply_ns;
            }
        }
        Ok(())
    }

    /// Rebuild the mirror from a full publisher subtree walk, then resume
    /// delta fetches from the publisher's current durable LSN. Returns the
    /// bytes the copy would ship (the canonical export size).
    fn resync(&self, sub: &Subscription, inner: &mut SubInner) -> SrbResult<u64> {
        let zones = self.zones_slice();
        self.resync_locked(sub, inner, &zones[sub.src], &zones[sub.dst])
    }

    fn resync_locked(
        &self,
        sub: &Subscription,
        inner: &mut SubInner,
        src: &Zone,
        dst: &Zone,
    ) -> SrbResult<u64> {
        // Fetch cursor first: deltas committed during (virtual-instant)
        // copy would be at higher LSNs and are refetched later.
        inner.fetched = src.device().synced_lsn();
        inner.outbox.clear();

        // Tear down the existing mirror (everything this subscription
        // created).
        let dst_mcat = &dst.grid.mcat;
        teardown_mirror(inner, dst_mcat);

        // Copy the publisher subtree, parents before children.
        let src_mcat = &src.grid.mcat;
        let root_id = src_mcat.collections.resolve(&sub.src_root)?;
        let mut coll_ids = vec![root_id];
        coll_ids.extend(src_mcat.collections.descendants(root_id));
        let mut colls: Vec<_> = coll_ids
            .into_iter()
            .filter_map(|id| src_mcat.collections.get(id).ok())
            .filter(|c| c.link_target.is_none())
            .collect();
        colls.sort_by_key(|c| (c.path.depth(), c.path.to_string()));
        let mut copied = 0u64;
        for coll in colls {
            let mirror_path = coll.path.rebase(&sub.src_root, &sub.dst_root)?;
            let local = ensure_collection(dst_mcat, &mirror_path, dst_mcat.admin())?;
            copied += mirror_path.to_string().len() as u64;
            inner.colls.insert(
                coll.id.raw(),
                MirrorColl {
                    local,
                    src_path: coll.path.clone(),
                },
            );
            for ds in src_mcat.datasets.list(coll.id) {
                if ds.link_target.is_some() {
                    continue;
                }
                copied += ds.name.len() as u64 + 64;
                let meta = src_mcat.metadata.for_subject(Subject::Dataset(ds.id));
                copied += meta.len() as u64 * 48;
                self.mirror_create(inner, src, dst, &ds, coll.path.clone())?;
                for row in meta {
                    if matches!(row.kind, MetaKind::System | MetaKind::FileBased(_)) {
                        continue;
                    }
                    if let Some(&local_ds) = inner.dss.get(&ds.id.raw()) {
                        let new = dst_mcat.metadata.add(
                            &dst_mcat.ids,
                            Subject::Dataset(local_ds),
                            row.triplet.clone(),
                            row.kind.clone(),
                        );
                        inner.metas.insert(row.id.raw(), new);
                    }
                }
            }
        }
        Ok(copied.max(1))
    }

    /// Materialize one publisher dataset row as a local mirror: a remote
    /// pointer replica plus WAL-logged home-zone provenance.
    fn mirror_create(
        &self,
        inner: &mut SubInner,
        src: &Zone,
        dst: &Zone,
        row: &Dataset,
        src_coll_path: LogicalPath,
    ) -> SrbResult<()> {
        let Some(mirror) = inner.colls.get(&row.coll.raw()) else {
            return Ok(()); // parent not mirrored: outside the subtree
        };
        let dst_mcat = &dst.grid.mcat;
        let src_path = src_coll_path.child(&row.name)?;
        let size = row.replicas.iter().map(|r| r.size).max().unwrap_or(0);
        let checksum = row.replicas.first().and_then(|r| r.checksum.clone());
        let url = format!("{ZONE_URL_SCHEME}{}{src_path}", src.name());
        let id = dst_mcat.datasets.create(
            &dst_mcat.ids,
            mirror.local,
            &row.name,
            &row.data_type,
            dst_mcat.admin(),
            vec![(AccessSpec::Url { url }, size, checksum)],
            self.clock().now(),
        )?;
        dst_mcat.metadata.add(
            &dst_mcat.ids,
            Subject::Dataset(id),
            Triplet::new(ZONE_HOME_ATTR, src.name(), ""),
            MetaKind::System,
        );
        dst_mcat.metadata.add(
            &dst_mcat.ids,
            Subject::Dataset(id),
            Triplet::new(ZONE_PATH_ATTR, src_path.to_string().as_str(), ""),
            MetaKind::System,
        );
        inner.dss.insert(row.id.raw(), id);
        Ok(())
    }

    /// Apply one shipped delta to the subscriber's catalog through its own
    /// (WAL-logged) table APIs, translating ids through the mirror maps.
    fn apply_delta(
        &self,
        sub: &Subscription,
        inner: &mut SubInner,
        dst: &Zone,
        delta: Delta,
    ) -> SrbResult<()> {
        let zones = self.zones_slice();
        let src = &zones[sub.src];
        let dst_mcat = &dst.grid.mcat;
        match delta.record.op {
            WalOp::CollectionPut { row } => {
                if row.link_target.is_some() {
                    return Ok(());
                }
                let in_subtree = row.path.starts_with(&sub.src_root);
                if let Some(m) = inner.colls.get(&row.id.raw()) {
                    if m.src_path == row.path {
                        return Ok(()); // attribute-only put: path unchanged
                    }
                    // A publisher-side move/rename re-puts every rebased
                    // node: follow it, or unmirror the branch when the new
                    // path leaves the subscribed subtree (its descendants'
                    // puts arrive unmapped and out of subtree — ignored).
                    if in_subtree {
                        mirror_move(sub, inner, dst_mcat, row.id.raw(), row.path)?;
                    } else {
                        unmirror_branch(inner, dst_mcat, row.id.raw());
                    }
                    return Ok(());
                }
                if !in_subtree {
                    return Ok(());
                }
                let mirror_path = row.path.rebase(&sub.src_root, &sub.dst_root)?;
                let local = ensure_collection(dst_mcat, &mirror_path, dst_mcat.admin())?;
                inner.colls.insert(
                    row.id.raw(),
                    MirrorColl {
                        local,
                        src_path: row.path,
                    },
                );
            }
            WalOp::CollectionDelete { id } => {
                if let Some(m) = inner.colls.remove(&id.raw()) {
                    let _ = dst_mcat.collections.delete(m.local);
                }
            }
            WalOp::DatasetPut { row } => {
                if row.link_target.is_some() {
                    return Ok(());
                }
                match (
                    inner.dss.get(&row.id.raw()).copied(),
                    inner.colls.get(&row.coll.raw()),
                ) {
                    (None, Some(mirror)) => {
                        let src_coll_path = mirror.src_path.clone();
                        self.mirror_create(inner, src, dst, &row, src_coll_path)?;
                    }
                    (Some(local), Some(mirror)) => {
                        let src_path = mirror.src_path.child(&row.name)?;
                        let cur = dst_mcat.datasets.get(local)?;
                        if cur.coll != mirror.local || cur.name != row.name {
                            let mirror_coll = mirror.local;
                            dst_mcat
                                .datasets
                                .move_dataset(local, mirror_coll, &row.name)?;
                            update_prov_path(dst_mcat, local, &src_path)?;
                        }
                        let size = row.replicas.iter().map(|r| r.size).max().unwrap_or(0);
                        let checksum = row.replicas.first().and_then(|r| r.checksum.clone());
                        dst_mcat.datasets.update(local, |d| {
                            d.data_type = row.data_type.clone();
                            if let Some(r0) = d.replicas.first_mut() {
                                r0.size = size;
                                r0.checksum = checksum.clone();
                            }
                            Ok(())
                        })?;
                    }
                    (Some(local), None) => {
                        // Moved out of the subscribed subtree: unmirror.
                        inner.dss.remove(&row.id.raw());
                        if dst_mcat.datasets.delete(local).is_ok() {
                            dst_mcat.metadata.remove_all(Subject::Dataset(local));
                        }
                    }
                    (None, None) => {}
                }
            }
            WalOp::DatasetDelete { id } => {
                if let Some(local) = inner.dss.remove(&id.raw()) {
                    if dst_mcat.datasets.delete(local).is_ok() {
                        dst_mcat.metadata.remove_all(Subject::Dataset(local));
                    }
                }
            }
            WalOp::MetaPut { row } => {
                if matches!(row.kind, MetaKind::System | MetaKind::FileBased(_)) {
                    return Ok(());
                }
                let subject = match row.subject {
                    Subject::Dataset(d) => inner.dss.get(&d.raw()).copied().map(Subject::Dataset),
                    Subject::Collection(c) => inner
                        .colls
                        .get(&c.raw())
                        .map(|m| Subject::Collection(m.local)),
                };
                if let Some(subject) = subject {
                    if let Some(old) = inner.metas.remove(&row.id.raw()) {
                        let _ = dst_mcat.metadata.remove(old);
                    }
                    let new = dst_mcat
                        .metadata
                        .add(&dst_mcat.ids, subject, row.triplet, row.kind);
                    inner.metas.insert(row.id.raw(), new);
                }
            }
            WalOp::MetaDelete { id } => {
                if let Some(old) = inner.metas.remove(&id.raw()) {
                    let _ = dst_mcat.metadata.remove(old);
                }
            }
            // Filtered out at fetch time; tolerated here for robustness.
            _ => {}
        }
        Ok(())
    }
}

/// Remove everything a subscription has mirrored into `dst_mcat`:
/// datasets first, then collections deepest-first (ancestors shared with
/// other mirrors refuse the delete and are kept), then the id maps.
fn teardown_mirror(inner: &mut SubInner, dst_mcat: &Mcat) {
    for local in inner.dss.values() {
        if dst_mcat.datasets.delete(*local).is_ok() {
            dst_mcat.metadata.remove_all(Subject::Dataset(*local));
        }
    }
    let mut mirrored: Vec<&MirrorColl> = inner.colls.values().collect();
    mirrored.sort_by_key(|m| std::cmp::Reverse(m.src_path.depth()));
    for m in mirrored {
        let _ = dst_mcat.collections.delete(m.local); // root mapping: kept
    }
    inner.colls.clear();
    inner.dss.clear();
    inner.metas.clear();
}

/// Follow a publisher-side collection move/rename that stays inside the
/// subscribed subtree: rebase the local mirror collection, refresh the
/// stored `src_path` (later `DatasetPut`s under it derive provenance from
/// it), and re-point the `zone_path` provenance of datasets already
/// mirrored directly under it. The publisher re-puts the moved node
/// before its descendants, so a descendant's put usually finds its local
/// mirror already at the rebased path and only updates the maps.
fn mirror_move(
    sub: &Subscription,
    inner: &mut SubInner,
    dst_mcat: &Mcat,
    src_raw: u64,
    new_src_path: LogicalPath,
) -> SrbResult<()> {
    let local = inner.colls[&src_raw].local;
    let mirror_path = new_src_path.rebase(&sub.src_root, &sub.dst_root)?;
    let cur = dst_mcat.collections.get(local)?;
    if cur.path != mirror_path {
        let parent_lp = mirror_path
            .parent()
            .ok_or_else(|| SrbError::Invalid("mirror path is the root".into()))?;
        let name = mirror_path
            .name()
            .ok_or_else(|| SrbError::Invalid("mirror path is the root".into()))?;
        let parent = ensure_collection(dst_mcat, &parent_lp, dst_mcat.admin())?;
        dst_mcat.collections.move_collection(local, parent, name)?;
    }
    for &local_ds in inner.dss.values() {
        let Ok(d) = dst_mcat.datasets.get(local_ds) else {
            continue;
        };
        if d.coll == local {
            update_prov_path(dst_mcat, local_ds, &new_src_path.child(&d.name)?)?;
        }
    }
    if let Some(m) = inner.colls.get_mut(&src_raw) {
        m.src_path = new_src_path;
    }
    Ok(())
}

/// Unmirror a whole collection branch after the publisher moved it out of
/// the subscribed subtree: delete the mirrored datasets under it, then
/// the mapped collections deepest-first, and drop their map entries.
fn unmirror_branch(inner: &mut SubInner, dst_mcat: &Mcat, src_raw: u64) {
    let Some(root) = inner.colls.get(&src_raw) else {
        return;
    };
    let old_src = root.src_path.clone();
    let mut gone: Vec<(u64, CollectionId, usize)> = inner
        .colls
        .iter()
        .filter(|(_, m)| m.src_path.starts_with(&old_src))
        .map(|(&k, m)| (k, m.local, m.src_path.depth()))
        .collect();
    let locals: HashSet<CollectionId> = gone.iter().map(|&(_, local, _)| local).collect();
    let ds_gone: Vec<u64> = inner
        .dss
        .iter()
        .filter(|(_, &local)| {
            dst_mcat
                .datasets
                .get(local)
                .is_ok_and(|d| locals.contains(&d.coll))
        })
        .map(|(&k, _)| k)
        .collect();
    for k in ds_gone {
        if let Some(local) = inner.dss.remove(&k) {
            if dst_mcat.datasets.delete(local).is_ok() {
                dst_mcat.metadata.remove_all(Subject::Dataset(local));
            }
        }
    }
    gone.sort_by_key(|&(_, _, depth)| std::cmp::Reverse(depth));
    for (k, local, _) in gone {
        inner.colls.remove(&k);
        let _ = dst_mcat.collections.delete(local);
    }
}

/// Which publisher redo ops a subtree subscription can ever care about.
fn relevant_op(op: &WalOp) -> bool {
    matches!(
        op,
        WalOp::CollectionPut { .. }
            | WalOp::CollectionDelete { .. }
            | WalOp::DatasetPut { .. }
            | WalOp::DatasetDelete { .. }
            | WalOp::MetaPut { .. }
            | WalOp::MetaDelete { .. }
    )
}

/// `src->dst` metric label for a subscription's link.
fn link_label(fed: &Federation, sub: &Subscription) -> String {
    let zones = fed.zones_slice();
    format!("{}->{}", zones[sub.src].name(), zones[sub.dst].name())
}

/// Point the mirror's `zone_path` provenance at the dataset's new home
/// path after a publisher-side move/rename.
fn update_prov_path(mcat: &Mcat, local: DatasetId, src_path: &LogicalPath) -> SrbResult<()> {
    for row in mcat.metadata.for_subject(Subject::Dataset(local)) {
        if row.kind == MetaKind::System && row.triplet.name == ZONE_PATH_ATTR {
            mcat.metadata
                .update(row.id, MetaValue::Text(src_path.to_string()), String::new())?;
        }
    }
    Ok(())
}

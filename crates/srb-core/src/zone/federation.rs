//! The federation: zone membership, peering links, cross-zone
//! registration, and the canonical subtree export used to prove
//! convergence.

use crate::grid::Grid;
use crate::zone::replication::Subscription;
use crate::zone::Zone;
use srb_mcat::dataset::AccessSpec;
use srb_mcat::metadata::{MetaKind, Subject};
use srb_mcat::{Mcat, WalConfig, ZONE_HOME_ATTR, ZONE_PATH_ATTR, ZONE_URL_SCHEME};
use srb_net::topology::RPC_MESSAGE_BYTES;
use srb_net::{Admission, BreakerConfig, FaultMode, FaultPlan, HealthRegistry, LinkSpec, Receipt};
use srb_obs::{MetricsRegistry, MetricsSnapshot};
use srb_storage::LogDevice;
use srb_types::sync::{LockRank, RwLock};
use srb_types::{
    CollectionId, LogicalPath, ResourceId, ServerId, SimClock, SiteId, SrbError, SrbResult,
    Triplet, UserId,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Index of a zone within its federation (assignment order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ZoneId(pub usize);

impl std::fmt::Display for ZoneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "zone#{}", self.0)
    }
}

/// The pseudo-site all link pseudo-resources live at in the federation's
/// own fault plan (zone links are not resources of any member grid).
const FED_SITE: SiteId = SiteId(u64::MAX);

/// One directed peering link.
struct LinkInfo {
    spec: LinkSpec,
    /// Synthetic resource id keying this direction in the federation's
    /// fault plan and health registry.
    fault: ResourceId,
}

/// Health/latency summary of one directed link, for status pages.
#[derive(Debug, Clone)]
pub struct ZoneLinkStatus {
    /// Origin zone.
    pub from: ZoneId,
    /// Destination zone.
    pub to: ZoneId,
    /// One-way link latency in microseconds.
    pub latency_us: u64,
    /// Whether the link is currently reachable (no `Down` fault).
    pub up: bool,
}

/// A set of peered zones: membership, links, subscriptions, and the
/// federation-level fault plan, health registry and `zone.*` metrics.
///
/// Zones and links are fixed at setup time (`&mut self`); everything that
/// mutates at run time (subscription cursors, outboxes, fault modes,
/// breakers, metrics) sits behind its own ranked locks, so a federation
/// is shared by reference exactly like a [`Grid`].
pub struct Federation {
    clock: SimClock,
    zones: Vec<Zone>,
    links: HashMap<(usize, usize), LinkInfo>,
    subs: RwLock<Vec<Arc<Subscription>>>,
    faults: FaultPlan,
    health: HealthRegistry,
    metrics: MetricsRegistry,
}

impl Default for Federation {
    fn default() -> Self {
        Federation::new()
    }
}

impl Federation {
    /// An empty federation with a fresh shared clock. Build member grids
    /// with [`GridBuilder::clock`](crate::GridBuilder::clock)`(fed.clock().clone())`
    /// so every zone advances the same timeline.
    pub fn new() -> Self {
        let clock = SimClock::new();
        Federation {
            clock: clock.clone(),
            zones: Vec::new(),
            links: HashMap::new(),
            subs: RwLock::new(LockRank::ZoneFed, "zone.fed.subs", Vec::new()),
            faults: FaultPlan::new(),
            health: HealthRegistry::new(clock, BreakerConfig::default()),
            metrics: MetricsRegistry::new(),
        }
    }

    /// The federation-wide virtual clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The federation's `zone.*` metric registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Deterministic snapshot of the federation's `zone.*` metrics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    // ------------------------------------------------------- membership --

    /// Add a member zone. The grid must have been built on this
    /// federation's clock; if it has no WAL yet, durability is enabled
    /// here over a fresh log device (replication is sourced from the WAL,
    /// so a zone cannot join without one).
    pub fn add_zone(&mut self, name: &str, grid: Grid, contact: ServerId) -> SrbResult<ZoneId> {
        if self.zones.iter().any(|z| z.name == name) {
            return Err(SrbError::AlreadyExists(format!("zone '{name}'")));
        }
        if grid.mcat.wal().is_none() {
            grid.enable_durability(Arc::new(LogDevice::new()), WalConfig::default())?;
        }
        let device = grid
            .mcat
            .wal()
            .map(|w| Arc::clone(w.device()))
            .ok_or_else(|| SrbError::Internal("durability enabled but no WAL".into()))?;
        grid.server(contact)?; // validate the contact server exists
        let id = ZoneId(self.zones.len());
        self.zones.push(Zone {
            name: name.to_string(),
            grid,
            contact,
            device,
        });
        self.metrics
            .gauge("zone.zones", "")
            .set(self.zones.len() as i64);
        Ok(id)
    }

    /// The member zone behind an id.
    pub fn zone(&self, z: ZoneId) -> SrbResult<&Zone> {
        self.zones
            .get(z.0)
            .ok_or_else(|| SrbError::NotFound(format!("{z}")))
    }

    /// All member zones in id order.
    pub fn zones(&self) -> impl Iterator<Item = (ZoneId, &Zone)> {
        self.zones.iter().enumerate().map(|(i, z)| (ZoneId(i), z))
    }

    /// Look a zone up by name.
    pub fn zone_named(&self, name: &str) -> Option<ZoneId> {
        self.zones.iter().position(|z| z.name == name).map(ZoneId)
    }

    /// Number of member zones.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    // ------------------------------------------------------------ links --

    /// Peer two zones with a symmetric link (one link record per
    /// direction, each independently faultable — a real WAN can fail one
    /// way).
    pub fn link(&mut self, a: ZoneId, b: ZoneId, spec: LinkSpec) -> SrbResult<&mut Self> {
        if a == b {
            return Err(SrbError::Invalid(format!("cannot link {a} to itself")));
        }
        for z in [a, b] {
            if z.0 >= self.zones.len() {
                return Err(SrbError::NotFound(format!("{z}")));
            }
        }
        for (from, to) in [(a.0, b.0), (b.0, a.0)] {
            self.links.insert(
                (from, to),
                LinkInfo {
                    spec,
                    fault: link_fault_id(from, to),
                },
            );
        }
        self.metrics
            .gauge("zone.links", "")
            .set((self.links.len() / 2) as i64);
        Ok(self)
    }

    fn link_info(&self, from: usize, to: usize) -> SrbResult<&LinkInfo> {
        self.links.get(&(from, to)).ok_or_else(|| {
            SrbError::NotFound(format!("no link {} -> {}", ZoneId(from), ZoneId(to)))
        })
    }

    /// Partition a zone pair: both directions go hard-down until
    /// [`Federation::heal`].
    pub fn partition(&self, a: ZoneId, b: ZoneId) -> SrbResult<()> {
        for (from, to) in [(a.0, b.0), (b.0, a.0)] {
            let link = self.link_info(from, to)?;
            self.faults.set_mode(link.fault, FaultMode::Down);
        }
        self.metrics.counter("zone.partitions", "").inc();
        Ok(())
    }

    /// Heal a previously partitioned (or otherwise faulted) zone pair.
    /// The pair's own link breakers are reset so replication resumes on
    /// the next pump round instead of waiting out a cooldown; every other
    /// link's breaker history is left untouched.
    pub fn heal(&self, a: ZoneId, b: ZoneId) -> SrbResult<()> {
        for (from, to) in [(a.0, b.0), (b.0, a.0)] {
            let link = self.link_info(from, to)?;
            self.faults.clear_mode(link.fault);
            self.health.reset_resource(link.fault);
        }
        Ok(())
    }

    /// Install a seeded fault mode on one link *direction* (flaky WANs
    /// rarely misbehave symmetrically).
    pub fn set_link_mode(&self, from: ZoneId, to: ZoneId, mode: FaultMode) -> SrbResult<()> {
        let link = self.link_info(from.0, to.0)?;
        self.faults.set_mode(link.fault, mode);
        Ok(())
    }

    /// Clear any fault mode from one link direction.
    pub fn clear_link_mode(&self, from: ZoneId, to: ZoneId) -> SrbResult<()> {
        let link = self.link_info(from.0, to.0)?;
        self.faults.clear_mode(link.fault);
        Ok(())
    }

    /// Is the directed link currently reachable? `false` when the pair is
    /// unlinked, partitioned, or hard-down in this direction.
    pub fn link_up(&self, from: ZoneId, to: ZoneId) -> bool {
        match self.links.get(&(from.0, to.0)) {
            Some(link) => self.faults.is_up(link.fault, FED_SITE),
            None => false,
        }
    }

    /// Status of every directed link, ordered by (from, to) — feeds the
    /// MySRB `/grid-status` federation table.
    pub fn link_statuses(&self) -> Vec<ZoneLinkStatus> {
        let mut keys: Vec<&(usize, usize)> = self.links.keys().collect();
        keys.sort();
        keys.into_iter()
            .map(|&(from, to)| ZoneLinkStatus {
                from: ZoneId(from),
                to: ZoneId(to),
                latency_us: self.links[&(from, to)].spec.latency_us,
                up: self.link_up(ZoneId(from), ZoneId(to)),
            })
            .collect()
    }

    /// Charge one message of `bytes` across the directed link: breaker
    /// admission, one fault-plan draw, then the link's transfer cost.
    /// Returns the virtual nanoseconds to charge, or the injected failure.
    pub(crate) fn charge_link(&self, from: usize, to: usize, bytes: u64) -> SrbResult<u64> {
        let link = self.link_info(from, to)?;
        if self.health.admit(link.fault) == Admission::FastFail {
            self.metrics.counter("zone.link_fastfail", "").inc();
            return Err(SrbError::ResourceUnavailable(format!(
                "link {} -> {} circuit open",
                ZoneId(from),
                ZoneId(to)
            )));
        }
        match self.faults.inject(link.fault, FED_SITE) {
            Ok(extra) => {
                self.health.record(link.fault, true);
                Ok(extra + link.spec.transfer_ns(bytes))
            }
            Err(e) => {
                self.health.record(link.fault, false);
                self.metrics.counter("zone.link_blocked", "").inc();
                Err(e)
            }
        }
    }

    /// One request/response round trip of control traffic on the link.
    pub(crate) fn charge_link_rpc(&self, from: usize, to: usize) -> SrbResult<u64> {
        Ok(self.charge_link(from, to, RPC_MESSAGE_BYTES)? * 2)
    }

    pub(crate) fn zones_slice(&self) -> &[Zone] {
        &self.zones
    }

    pub(crate) fn subs_registry(&self) -> &RwLock<Vec<Arc<Subscription>>> {
        &self.subs
    }

    // -------------------------------------------- cross-zone registration --

    /// Register a dataset that lives in `src` into `dst`'s catalog as a
    /// remote replica with home-zone provenance.
    ///
    /// The pointer row carries an [`AccessSpec::Url`] of the form
    /// `srb+zone://<src zone>/<path>` and two WAL-logged system-metadata
    /// triplets ([`ZONE_HOME_ATTR`], [`ZONE_PATH_ATTR`]) so provenance
    /// survives a crash with the row itself —
    /// [`Mcat::remote_provenance`] fails closed when it does not. Parent
    /// collections of `dst_path` are created as needed, owned by `dst`'s
    /// administrator.
    pub fn register_remote(
        &self,
        src: ZoneId,
        src_path: &str,
        dst: ZoneId,
        dst_path: &str,
    ) -> SrbResult<Receipt> {
        let src_zone = self.zone(src)?;
        let dst_zone = self.zone(dst)?;
        // One control round trip src -> dst carries the registration.
        let mut receipt = Receipt::time(self.charge_link_rpc(src.0, dst.0)?);

        let src_lp = LogicalPath::parse(src_path)?;
        let src_mcat = &src_zone.grid.mcat;
        let ds = src_mcat.datasets.get(src_mcat.resolve_dataset(&src_lp)?)?;
        let size = ds.replicas.iter().map(|r| r.size).max().unwrap_or(0);
        let checksum = ds.replicas.first().and_then(|r| r.checksum.clone());

        let dst_lp = LogicalPath::parse(dst_path)?;
        let name = dst_lp
            .name()
            .ok_or_else(|| SrbError::Invalid("registration target is the root".into()))?;
        let parent_lp = dst_lp
            .parent()
            .ok_or_else(|| SrbError::Invalid("registration target is the root".into()))?;
        let dst_mcat = &dst_zone.grid.mcat;
        let admin = dst_mcat.admin();
        let parent = ensure_collection(dst_mcat, &parent_lp, admin)?;
        let url = format!("{ZONE_URL_SCHEME}{}{src_path}", src_zone.name());
        let now = self.clock.now();
        let id = dst_mcat.datasets.create(
            &dst_mcat.ids,
            parent,
            name,
            &ds.data_type,
            admin,
            vec![(AccessSpec::Url { url }, size, checksum)],
            now,
        )?;
        dst_mcat.metadata.add(
            &dst_mcat.ids,
            Subject::Dataset(id),
            Triplet::new(ZONE_HOME_ATTR, src_zone.name(), ""),
            MetaKind::System,
        );
        dst_mcat.metadata.add(
            &dst_mcat.ids,
            Subject::Dataset(id),
            Triplet::new(ZONE_PATH_ATTR, src_path, ""),
            MetaKind::System,
        );
        if let Some(wal) = dst_mcat.wal() {
            receipt.absorb(&Receipt::time(wal.take_pending_ns()));
        }
        self.metrics.counter("zone.registrations", "").inc();
        Ok(receipt)
    }

    // -------------------------------------------------------- digests --

    /// Canonical export of a collection subtree: one line per collection,
    /// dataset and user-visible metadata triplet, relative to `root`,
    /// deterministically ordered.
    ///
    /// The export deliberately excludes everything zone-local — catalog
    /// ids, owners, ACLs, replica locations and system metadata — so a
    /// publisher subtree and its converged mirror serialize to **the same
    /// bytes**. This is the convergence oracle: replication is correct
    /// exactly when publisher and subscriber exports are byte-identical.
    pub fn subtree_digest(&self, z: ZoneId, root: &str) -> SrbResult<String> {
        subtree_export(&self.zone(z)?.grid.mcat, &LogicalPath::parse(root)?)
    }
}

/// Synthetic fault-plan resource id of the directed link `from -> to`
/// (`0x5A` = 'Z', well clear of grid-assigned resource ids).
fn link_fault_id(from: usize, to: usize) -> ResourceId {
    ResourceId(0x5A00_0000_0000_0000 | ((from as u64) << 24) | to as u64)
}

/// `mkdir -p`: resolve `path`, creating missing ancestors owned by
/// `owner`. Shared by cross-zone registration and the replication mirror.
pub(crate) fn ensure_collection(
    mcat: &Mcat,
    path: &LogicalPath,
    owner: UserId,
) -> SrbResult<CollectionId> {
    let mut cur = mcat.collections.root();
    let mut walked = LogicalPath::root();
    for part in path.components() {
        walked = walked.child(part)?;
        cur = match mcat.collections.resolve(&walked) {
            Ok(id) => id,
            Err(_) => mcat
                .collections
                .create(&mcat.ids, cur, part, owner, mcat.clock.now())?,
        };
    }
    Ok(cur)
}

/// Stable one-word tag for a metadata kind in the canonical export.
fn kind_tag(kind: &MetaKind) -> Option<String> {
    match kind {
        MetaKind::UserDefined => Some("user".to_string()),
        MetaKind::TypeOriented(schema) => Some(format!("type:{schema}")),
        // System and file-based rows are zone-local bookkeeping.
        MetaKind::System | MetaKind::FileBased(_) => None,
    }
}

/// See [`Federation::subtree_digest`].
pub(crate) fn subtree_export(mcat: &Mcat, root: &LogicalPath) -> SrbResult<String> {
    let root_id = mcat.collections.resolve(root)?;
    let mut colls = vec![root_id];
    colls.extend(mcat.collections.descendants(root_id));
    let mut entries: Vec<String> = Vec::new();
    for cid in colls {
        let coll = mcat.collections.get(cid)?;
        if coll.link_target.is_some() {
            continue; // links are zone-local aliases, not content
        }
        let rel = coll.path.rebase(root, &LogicalPath::root())?;
        if !rel.is_root() {
            entries.push(format!("C {rel}"));
        }
        for ds in mcat.datasets.list(cid) {
            if ds.link_target.is_some() {
                continue;
            }
            let ds_rel = rel.child(&ds.name)?;
            let size = ds.replicas.iter().map(|r| r.size).max().unwrap_or(0);
            let checksum = ds
                .replicas
                .first()
                .and_then(|r| r.checksum.clone())
                .unwrap_or_else(|| "-".to_string());
            entries.push(format!("D {ds_rel} {} {size} {checksum}", ds.data_type));
            let mut meta: Vec<String> = mcat
                .metadata
                .for_subject(Subject::Dataset(ds.id))
                .iter()
                .filter_map(|row| {
                    kind_tag(&row.kind).map(|tag| {
                        format!(
                            "M {ds_rel} {tag} {}={} [{}]",
                            row.triplet.name,
                            row.triplet.value.lexical(),
                            row.triplet.units
                        )
                    })
                })
                .collect();
            meta.sort();
            entries.extend(meta);
        }
    }
    entries.sort();
    Ok(entries.join("\n"))
}

//! Metadata values and the MCAT comparison operators.
//!
//! The paper stores user-defined and type-oriented metadata as
//! *(name, value, units)* triplets and exposes eight comparison operators in
//! the MySRB query builder: `=, >, <, <=, >=, <>, like, not like`.
//! `MetaValue` keeps the original lexical form but compares numerically when
//! both sides parse as numbers, matching how curators expect `wingspan > 9`
//! to behave against a value ingested as the string `"12.5"`.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

use crate::error::{SrbError, SrbResult};

/// A metadata value: text, integer or floating point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum MetaValue {
    /// Free text (also the fallback lexical form).
    Text(String),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
}

impl MetaValue {
    /// Parse a lexical form: integer first, then float, else text.
    pub fn parse(s: &str) -> MetaValue {
        if let Ok(i) = s.parse::<i64>() {
            return MetaValue::Int(i);
        }
        if let Ok(f) = s.parse::<f64>() {
            if f.is_finite() {
                return MetaValue::Float(f);
            }
        }
        MetaValue::Text(s.to_string())
    }

    /// Numeric view, when the value is or parses as a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            MetaValue::Int(i) => Some(*i as f64),
            MetaValue::Float(f) => Some(*f),
            MetaValue::Text(s) => s.parse::<f64>().ok().filter(|f| f.is_finite()),
        }
    }

    /// Lexical form (what MySRB displays and what LIKE matches against).
    pub fn lexical(&self) -> String {
        match self {
            MetaValue::Text(s) => s.clone(),
            MetaValue::Int(i) => i.to_string(),
            MetaValue::Float(f) => format!("{f}"),
        }
    }

    /// Total order used by the catalog's value indexes: numbers first (by
    /// numeric value), then text (case-folded, raw tie-break — see
    /// [`text_index_cmp`]). Deterministic for NaN-free values;
    /// `MetaValue::parse` never produces NaN.
    pub fn index_cmp(&self, other: &MetaValue) -> Ordering {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
            (Some(_), None) => Ordering::Less,
            (None, Some(_)) => Ordering::Greater,
            (None, None) => text_index_cmp(&self.lexical(), &other.lexical()),
        }
    }
}

/// The text leg of the index order: case-folded comparison first, raw
/// lexicographic as the tie-break, so two strings compare `Equal` only when
/// they are byte-identical. `LIKE` matches case-insensitively, so keeping
/// case-folded runs contiguous in the ordered index is what lets a prefix
/// pattern (`foo%`) become a bounded range scan; the range operators use the
/// same order (via [`CompareOp::eval`]) so index scans and direct evaluation
/// always agree.
pub fn text_index_cmp(a: &str, b: &str) -> Ordering {
    if a == b {
        return Ordering::Equal;
    }
    match a.to_lowercase().cmp(&b.to_lowercase()) {
        Ordering::Equal => a.cmp(b),
        other => other,
    }
}

/// The literal prefix of a `LIKE` pattern — the characters before the first
/// `%` or `_` wildcard. `None` when the pattern starts with a wildcard.
pub fn like_prefix(pattern: &str) -> Option<String> {
    let prefix: String = pattern
        .chars()
        .take_while(|c| *c != '%' && *c != '_')
        .collect();
    if prefix.is_empty() {
        None
    } else {
        Some(prefix)
    }
}

/// When a `LIKE` pattern can be planned as a bounded prefix scan over the
/// ordered value index, the case-folded prefix to scan from; `None` when the
/// pattern must fall back to a partition scan. A prefix whose first folded
/// character could begin a *numeric* lexical form (digits, sign, leading
/// dot, or the `inf`/`nan` spellings of non-finite floats) is rejected,
/// because numeric keys sort by value — not by lexical prefix — so the scan
/// could miss matches there.
pub fn like_scan_prefix(pattern: &str) -> Option<String> {
    let fold = like_prefix(pattern)?.to_lowercase();
    let first = fold.chars().next()?;
    if first.is_ascii_digit() || matches!(first, '-' | '+' | '.' | 'i' | 'n') {
        return None;
    }
    Some(fold)
}

impl PartialEq for MetaValue {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_f64(), other.as_f64()) {
            (Some(a), Some(b)) => a == b,
            (None, None) => self.lexical() == other.lexical(),
            _ => false,
        }
    }
}

impl Eq for MetaValue {}

impl fmt::Display for MetaValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.lexical())
    }
}

impl From<&str> for MetaValue {
    fn from(s: &str) -> Self {
        MetaValue::parse(s)
    }
}

impl From<i64> for MetaValue {
    fn from(i: i64) -> Self {
        MetaValue::Int(i)
    }
}

impl From<f64> for MetaValue {
    fn from(f: f64) -> Self {
        MetaValue::Float(f)
    }
}

/// A *(name, value, units)* metadata triplet, the paper's unit of
/// descriptive metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Triplet {
    /// Attribute name, e.g. `wingspan`.
    pub name: String,
    /// Attribute value.
    pub value: MetaValue,
    /// Units of the value, e.g. `cm`; empty when unitless.
    pub units: String,
}

impl Triplet {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        value: impl Into<MetaValue>,
        units: impl Into<String>,
    ) -> Self {
        Triplet {
            name: name.into(),
            value: value.into(),
            units: units.into(),
        }
    }
}

/// The eight comparison operators of the MySRB query builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// SQL-style `LIKE` with `%` and `_` wildcards.
    Like,
    /// Negated `LIKE`.
    NotLike,
}

impl CompareOp {
    /// Parse the operator spelling used in the web query form.
    pub fn parse(s: &str) -> SrbResult<CompareOp> {
        Ok(match s.trim().to_ascii_lowercase().as_str() {
            "=" | "==" => CompareOp::Eq,
            "<>" | "!=" => CompareOp::Ne,
            ">" => CompareOp::Gt,
            "<" => CompareOp::Lt,
            ">=" => CompareOp::Ge,
            "<=" => CompareOp::Le,
            "like" => CompareOp::Like,
            "not like" => CompareOp::NotLike,
            other => return Err(SrbError::Parse(format!("unknown operator '{other}'"))),
        })
    }

    /// Evaluate `lhs OP rhs`.
    pub fn eval(self, lhs: &MetaValue, rhs: &MetaValue) -> bool {
        match self {
            CompareOp::Eq => lhs == rhs,
            CompareOp::Ne => lhs != rhs,
            CompareOp::Gt => ordered(lhs, rhs) == Some(Ordering::Greater),
            CompareOp::Lt => ordered(lhs, rhs) == Some(Ordering::Less),
            CompareOp::Ge => matches!(
                ordered(lhs, rhs),
                Some(Ordering::Greater) | Some(Ordering::Equal)
            ),
            CompareOp::Le => matches!(
                ordered(lhs, rhs),
                Some(Ordering::Less) | Some(Ordering::Equal)
            ),
            CompareOp::Like => like_match(&rhs.lexical(), &lhs.lexical()),
            CompareOp::NotLike => !like_match(&rhs.lexical(), &lhs.lexical()),
        }
    }

    /// The spelling shown in the MySRB drop-down.
    pub fn display(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "<>",
            CompareOp::Gt => ">",
            CompareOp::Lt => "<",
            CompareOp::Ge => ">=",
            CompareOp::Le => "<=",
            CompareOp::Like => "like",
            CompareOp::NotLike => "not like",
        }
    }

    /// All operators, in the order the web form lists them.
    pub fn all() -> &'static [CompareOp] {
        &[
            CompareOp::Eq,
            CompareOp::Gt,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Ge,
            CompareOp::Ne,
            CompareOp::Like,
            CompareOp::NotLike,
        ]
    }
}

fn ordered(lhs: &MetaValue, rhs: &MetaValue) -> Option<Ordering> {
    match (lhs.as_f64(), rhs.as_f64()) {
        (Some(a), Some(b)) => a.partial_cmp(&b),
        // Text ranges use the same case-folded order as the value index, so
        // an index range scan and a direct evaluation never disagree.
        (None, None) => Some(text_index_cmp(&lhs.lexical(), &rhs.lexical())),
        // Number vs text is incomparable for range operators.
        _ => None,
    }
}

/// SQL LIKE matcher: `%` matches any run (including empty), `_` any single
/// character. Case-insensitive, as MySRB's search is.
pub fn like_match(pattern: &str, text: &str) -> bool {
    let p: Vec<char> = pattern.to_lowercase().chars().collect();
    let t: Vec<char> = text.to_lowercase().chars().collect();
    // Iterative two-pointer algorithm with backtracking on the last `%`.
    let (mut pi, mut ti) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            pi += 1;
            ti += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            pi = sp + 1;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_prefers_int_then_float_then_text() {
        assert_eq!(MetaValue::parse("42"), MetaValue::Int(42));
        assert_eq!(MetaValue::parse("-3"), MetaValue::Int(-3));
        assert_eq!(MetaValue::parse("2.5"), MetaValue::Float(2.5));
        assert_eq!(MetaValue::parse("eagle"), MetaValue::Text("eagle".into()));
        // Non-finite floats stay text.
        assert!(matches!(MetaValue::parse("inf"), MetaValue::Text(_)));
        assert!(matches!(MetaValue::parse("NaN"), MetaValue::Text(_)));
    }

    #[test]
    fn numeric_equality_crosses_representations() {
        assert_eq!(MetaValue::Int(3), MetaValue::Float(3.0));
        assert_eq!(MetaValue::Text("3".into()), MetaValue::Int(3));
        assert_ne!(MetaValue::Text("3a".into()), MetaValue::Int(3));
    }

    #[test]
    fn range_operators_are_numeric_when_possible() {
        let op = CompareOp::Gt;
        assert!(op.eval(&"12.5".into(), &MetaValue::Int(9)));
        assert!(!op.eval(&"9".into(), &MetaValue::Int(9)));
        // "12.5" as text would sort before "9"; numeric comparison must win.
        assert!(CompareOp::Lt.eval(&MetaValue::Int(9), &"12.5".into()));
    }

    #[test]
    fn text_ordering_is_lexicographic() {
        assert!(CompareOp::Lt.eval(&"apple".into(), &"banana".into()));
        assert!(CompareOp::Ge.eval(&"pear".into(), &"pear".into()));
    }

    #[test]
    fn mixed_number_text_is_incomparable_for_ranges() {
        assert!(!CompareOp::Gt.eval(&"eagle".into(), &MetaValue::Int(1)));
        assert!(!CompareOp::Le.eval(&"eagle".into(), &MetaValue::Int(1)));
        // But <> still distinguishes them.
        assert!(CompareOp::Ne.eval(&"eagle".into(), &MetaValue::Int(1)));
    }

    #[test]
    fn operator_parsing_covers_all_spellings() {
        for op in CompareOp::all() {
            assert_eq!(CompareOp::parse(op.display()).unwrap(), *op);
        }
        assert_eq!(CompareOp::parse("!=").unwrap(), CompareOp::Ne);
        assert_eq!(CompareOp::parse(" LIKE ").unwrap(), CompareOp::Like);
        assert!(CompareOp::parse("~").is_err());
    }

    #[test]
    fn like_wildcards() {
        assert!(like_match("%", ""));
        assert!(like_match("%", "anything"));
        assert!(like_match("a%", "avian"));
        assert!(like_match("%culture", "Avian Culture"));
        assert!(like_match("a_ian", "avian"));
        assert!(!like_match("a_ian", "aavian"));
        assert!(like_match("%bird%", "the Bird house"));
        assert!(!like_match("bird", "birds"));
        assert!(like_match("b%d%s", "birdhouses"));
        assert!(!like_match("", "x"));
        assert!(like_match("", ""));
    }

    #[test]
    fn not_like_is_negation() {
        let v: MetaValue = "avian".into();
        let pat: MetaValue = "av%".into();
        assert!(CompareOp::Like.eval(&v, &pat));
        assert!(!CompareOp::NotLike.eval(&v, &pat));
    }

    #[test]
    fn index_cmp_numbers_before_text() {
        let mut vals = [
            MetaValue::parse("pear"),
            MetaValue::parse("10"),
            MetaValue::parse("2.5"),
            MetaValue::parse("apple"),
        ];
        vals.sort_by(|a, b| a.index_cmp(b));
        let lex: Vec<String> = vals.iter().map(|v| v.lexical()).collect();
        assert_eq!(lex, vec!["2.5", "10", "apple", "pear"]);
    }

    #[test]
    fn text_order_is_case_folded_with_raw_tiebreak() {
        // Case-insensitive primary order: "Zebra" sorts after "apple".
        assert!(CompareOp::Gt.eval(&"Zebra".into(), &"apple".into()));
        assert!(CompareOp::Lt.eval(&"apple".into(), &"Zebra".into()));
        // Equal folds tie-break on the raw form, so cmp is Equal only for
        // byte-identical strings (keeps Eq consistent with the index).
        assert_eq!(text_index_cmp("Apple", "Apple"), Ordering::Equal);
        assert_ne!(text_index_cmp("Apple", "apple"), Ordering::Equal);
        assert!(CompareOp::Ge.eval(&"apple".into(), &"Apple".into()));
        // index_cmp sorts the same way.
        let mut vals = [
            MetaValue::parse("Zebra"),
            MetaValue::parse("apple"),
            MetaValue::parse("Banana"),
        ];
        vals.sort_by(|a, b| a.index_cmp(b));
        let lex: Vec<String> = vals.iter().map(|v| v.lexical()).collect();
        assert_eq!(lex, vec!["apple", "Banana", "Zebra"]);
    }

    #[test]
    fn like_prefix_extraction() {
        assert_eq!(like_prefix("foo%"), Some("foo".to_string()));
        assert_eq!(like_prefix("foo%bar%"), Some("foo".to_string()));
        assert_eq!(like_prefix("fo_o%"), Some("fo".to_string()));
        assert_eq!(like_prefix("foo"), Some("foo".to_string()));
        assert_eq!(like_prefix("%foo"), None);
        assert_eq!(like_prefix("_oo"), None);
        assert_eq!(like_prefix(""), None);
    }

    #[test]
    fn like_scan_prefix_cases() {
        assert_eq!(like_scan_prefix("Con%"), Some("con".to_string()));
        // Prefixes that could begin a numeric lexical form must fall back.
        for p in ["1%", "-3%", "+2%", ".5%", "inf%", "Nan%"] {
            assert_eq!(like_scan_prefix(p), None, "pattern {p}");
        }
        // Leading wildcard: no usable prefix.
        assert_eq!(like_scan_prefix("%con"), None);
    }

    #[test]
    fn triplet_construction() {
        let t = Triplet::new("wingspan", 12.5, "cm");
        assert_eq!(t.name, "wingspan");
        assert_eq!(t.value, MetaValue::Float(12.5));
        assert_eq!(t.units, "cm");
    }
}

#![warn(missing_docs)]
//! Common foundation types for the `srb-grid` workspace.
//!
//! This crate holds everything that more than one subsystem needs but that
//! carries no policy of its own: strongly typed identifiers, the error type,
//! the logical name space path representation, the deterministic virtual
//! clock used by the simulated WAN, metadata value types with the comparison
//! operators the MCAT query language exposes, the access-control model, and
//! a from-scratch SHA-256/HMAC used by the single-sign-on handshake.

pub mod acl;
pub mod clock;
pub mod cursor;
pub mod error;
pub mod gen;
pub mod hash;
pub mod id;
pub mod path;
pub mod sync;
pub mod value;

pub use acl::{AccessMatrix, Permission, Role};
pub use clock::{SimClock, Timestamp};
pub use cursor::{CursorCodec, PageToken};
pub use error::{SrbError, SrbResult};
pub use gen::{GenCounter, Generation, Lsn};
pub use hash::{ct_eq, from_hex, hmac_sha256, sha256, sha256_hex, splitmix64, to_hex, Sha256};
pub use id::*;
pub use path::LogicalPath;
pub use sync::LockRank;
pub use value::{like_prefix, like_scan_prefix, text_index_cmp, CompareOp, MetaValue, Triplet};

//! Access control: permissions, roles, and per-entity access matrices.
//!
//! The paper calls for "a role-based access matrix from curator to public"
//! with control "at multiple levels (collections, datasets, resources, etc)
//! for users and user groups beyond that offered by file systems".
//!
//! `Permission` is a totally ordered ladder: a level implies every level
//! below it. `AccessMatrix` maps users and groups to levels and is attached
//! to collections, datasets and resources by the MCAT. Annotations are the
//! one exception the paper carves out: any user with read permission may
//! annotate, which is why `Annotate` sits *below* `Read` in the ladder.

use crate::id::{GroupId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Permission levels, weakest to strongest. Each level implies all lower
/// levels.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Permission {
    /// No access at all.
    #[default]
    None,
    /// May discover the object in listings and queries.
    Discover,
    /// May attach annotations/comments/ratings (paper: any reader may
    /// annotate, so `Read` implies this).
    Annotate,
    /// May read data and metadata.
    Read,
    /// May write data and add/modify own metadata.
    Write,
    /// Full control: change ACLs, delete, manage structural metadata.
    Own,
}

impl Permission {
    /// Does this level satisfy a requirement of `needed`?
    #[inline]
    pub fn allows(self, needed: Permission) -> bool {
        self >= needed
    }

    /// Parse the spelling used in MySRB forms.
    pub fn parse(s: &str) -> Option<Permission> {
        Some(match s.trim().to_ascii_lowercase().as_str() {
            "none" => Permission::None,
            "discover" => Permission::Discover,
            "annotate" => Permission::Annotate,
            "read" => Permission::Read,
            "write" => Permission::Write,
            "own" | "owner" => Permission::Own,
            _ => return None,
        })
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Permission::None => "none",
            Permission::Discover => "discover",
            Permission::Annotate => "annotate",
            Permission::Read => "read",
            Permission::Write => "write",
            Permission::Own => "own",
        }
    }
}

/// The curator-to-public role ladder MySRB presents. Roles are named bundles
/// of permissions used when sharing a collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// Anonymous public access: browse and search only.
    Public,
    /// A registered reader: read data + metadata, may annotate.
    Reader,
    /// A contributor: may ingest new items and edit own metadata.
    Contributor,
    /// The collection curator: full control.
    Curator,
}

impl Role {
    /// The permission level a role grants.
    pub fn permission(self) -> Permission {
        match self {
            Role::Public => Permission::Discover,
            Role::Reader => Permission::Read,
            Role::Contributor => Permission::Write,
            Role::Curator => Permission::Own,
        }
    }

    /// All roles, weakest first.
    pub fn all() -> &'static [Role] {
        &[Role::Public, Role::Reader, Role::Contributor, Role::Curator]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Role::Public => "public",
            Role::Reader => "reader",
            Role::Contributor => "contributor",
            Role::Curator => "curator",
        }
    }
}

/// Per-entity access matrix: explicit user grants, group grants, and a
/// public (anonymous) level.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AccessMatrix {
    users: HashMap<UserId, Permission>,
    groups: HashMap<GroupId, Permission>,
    /// Level granted to everyone, authenticated or not.
    pub public: Permission,
}

impl AccessMatrix {
    /// Empty matrix: nobody but later grantees can touch the entity.
    pub fn new() -> Self {
        AccessMatrix::default()
    }

    /// Matrix with a single owner.
    pub fn owned_by(owner: UserId) -> Self {
        let mut m = AccessMatrix::new();
        m.grant_user(owner, Permission::Own);
        m
    }

    /// Grant (or change) a user's level. `Permission::None` revokes.
    pub fn grant_user(&mut self, user: UserId, p: Permission) {
        if p == Permission::None {
            self.users.remove(&user);
        } else {
            self.users.insert(user, p);
        }
    }

    /// Grant (or change) a group's level. `Permission::None` revokes.
    pub fn grant_group(&mut self, group: GroupId, p: Permission) {
        if p == Permission::None {
            self.groups.remove(&group);
        } else {
            self.groups.insert(group, p);
        }
    }

    /// Effective permission for `user` who belongs to `groups`: the maximum
    /// of the explicit user grant, any group grant, and the public level.
    pub fn effective(&self, user: UserId, groups: &[GroupId]) -> Permission {
        let mut p = self.public;
        if let Some(&up) = self.users.get(&user) {
            p = p.max(up);
        }
        for g in groups {
            if let Some(&gp) = self.groups.get(g) {
                p = p.max(gp);
            }
        }
        p
    }

    /// Effective permission for an anonymous (unauthenticated) visitor.
    pub fn effective_anonymous(&self) -> Permission {
        self.public
    }

    /// Explicit user grants (for MySRB's ACL display).
    pub fn user_grants(&self) -> impl Iterator<Item = (UserId, Permission)> + '_ {
        self.users.iter().map(|(k, v)| (*k, *v))
    }

    /// Explicit group grants.
    pub fn group_grants(&self) -> impl Iterator<Item = (GroupId, Permission)> + '_ {
        self.groups.iter().map(|(k, v)| (*k, *v))
    }

    /// The owners (users with `Own`).
    pub fn owners(&self) -> Vec<UserId> {
        let mut v: Vec<UserId> = self
            .users
            .iter()
            .filter(|(_, p)| **p == Permission::Own)
            .map(|(u, _)| *u)
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permission_ladder_implies_lower_levels() {
        assert!(Permission::Own.allows(Permission::Read));
        assert!(Permission::Read.allows(Permission::Annotate));
        assert!(Permission::Read.allows(Permission::Discover));
        assert!(!Permission::Annotate.allows(Permission::Read));
        assert!(!Permission::None.allows(Permission::Discover));
        assert!(Permission::None.allows(Permission::None));
    }

    #[test]
    fn role_ladder_matches_paper() {
        assert_eq!(Role::Public.permission(), Permission::Discover);
        assert_eq!(Role::Curator.permission(), Permission::Own);
        // Readers can annotate (paper: "can be inserted by any user with a
        // read permission").
        assert!(Role::Reader.permission().allows(Permission::Annotate));
        // Contributors cannot change ACLs.
        assert!(!Role::Contributor.permission().allows(Permission::Own));
    }

    #[test]
    fn effective_takes_maximum_of_grants() {
        let mut m = AccessMatrix::new();
        let u = UserId(1);
        let g = GroupId(10);
        m.grant_user(u, Permission::Read);
        m.grant_group(g, Permission::Write);
        assert_eq!(m.effective(u, &[]), Permission::Read);
        assert_eq!(m.effective(u, &[g]), Permission::Write);
        assert_eq!(m.effective(UserId(2), &[]), Permission::None);
        m.public = Permission::Discover;
        assert_eq!(m.effective(UserId(2), &[]), Permission::Discover);
        assert_eq!(m.effective_anonymous(), Permission::Discover);
    }

    #[test]
    fn granting_none_revokes() {
        let mut m = AccessMatrix::owned_by(UserId(1));
        assert_eq!(m.effective(UserId(1), &[]), Permission::Own);
        m.grant_user(UserId(1), Permission::None);
        assert_eq!(m.effective(UserId(1), &[]), Permission::None);
        assert!(m.owners().is_empty());
    }

    #[test]
    fn owners_lists_all_owners_sorted() {
        let mut m = AccessMatrix::owned_by(UserId(5));
        m.grant_user(UserId(2), Permission::Own);
        m.grant_user(UserId(3), Permission::Read);
        assert_eq!(m.owners(), vec![UserId(2), UserId(5)]);
    }

    #[test]
    fn permission_parse_round_trip() {
        for p in [
            Permission::None,
            Permission::Discover,
            Permission::Annotate,
            Permission::Read,
            Permission::Write,
            Permission::Own,
        ] {
            assert_eq!(Permission::parse(p.name()), Some(p));
        }
        assert_eq!(Permission::parse("OWNER"), Some(Permission::Own));
        assert_eq!(Permission::parse("root"), None);
    }
}

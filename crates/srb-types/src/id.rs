//! Strongly typed identifiers.
//!
//! Every entity registered in the MCAT gets a dense `u64` id. Newtype
//! wrappers prevent a `DatasetId` from being used where a `ReplicaId` is
//! expected — with hundreds of catalog tables that mix-up is otherwise easy.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Raw numeric value.
            #[inline]
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }

        // Ids appear as JSON map keys (e.g. ACL matrices keyed by UserId);
        // the vendored serde requires explicit key conversions.
        impl serde::KeyToString for $name {
            fn key_string(&self) -> String {
                self.0.to_string()
            }
        }

        impl serde::KeyFromString for $name {
            fn key_parse(key: &str) -> Result<Self, serde::DeError> {
                key.parse::<u64>().map($name).map_err(|_| {
                    serde::DeError::new(format!(
                        concat!("bad ", stringify!($name), " key: {:?}"),
                        key
                    ))
                })
            }
        }
    };
}

define_id!(
    /// A registered user of the data grid.
    UserId, "u"
);
define_id!(
    /// A user group (users may belong to many groups).
    GroupId, "g"
);
define_id!(
    /// A collection (node in the logical name space hierarchy).
    CollectionId, "c"
);
define_id!(
    /// A dataset — one logical digital entity; may have many replicas.
    DatasetId, "d"
);
define_id!(
    /// One physical copy of a dataset on a specific resource.
    ReplicaId, "r"
);
define_id!(
    /// A physical storage resource (file system, archive, cache, database).
    ResourceId, "sr"
);
define_id!(
    /// A logical resource grouping several physical resources.
    LogicalResourceId, "lr"
);
define_id!(
    /// A container aggregating many small objects into one archive object.
    ContainerId, "ct"
);
define_id!(
    /// A site (administrative domain) in the simulated wide-area network.
    SiteId, "s"
);
define_id!(
    /// An SRB server instance within the federation.
    ServerId, "srv"
);
define_id!(
    /// A metadata triplet row.
    MetaId, "m"
);
define_id!(
    /// An annotation / commentary row.
    AnnotationId, "a"
);
define_id!(
    /// An audit-trail row.
    AuditId, "au"
);
define_id!(
    /// A metadata schema (grouping of attribute definitions).
    SchemaId, "sch"
);
define_id!(
    /// A registered proxy command (method object / virtual data).
    MethodId, "mth"
);

/// Monotonic id allocator shared by all MCAT tables.
///
/// Dense ids keep index nodes small; a single allocator keeps ids unique
/// across entity kinds, which makes audit rows unambiguous.
#[derive(Debug, Default)]
pub struct IdGen {
    next: AtomicU64,
}

impl IdGen {
    /// Create an allocator starting at 1 (0 is reserved as a sentinel).
    pub fn new() -> Self {
        IdGen {
            next: AtomicU64::new(1),
        }
    }

    /// Allocate the next id, as any of the newtype wrappers.
    #[inline]
    pub fn next<T: From<u64>>(&self) -> T {
        T::from(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// Number of ids handed out so far.
    pub fn allocated(&self) -> u64 {
        self.next.load(Ordering::Relaxed).saturating_sub(1)
    }

    /// Raise the allocator so future ids are strictly greater than
    /// `highest` — used when restoring a catalog snapshot.
    pub fn ensure_floor(&self, highest: u64) {
        let mut cur = self.next.load(Ordering::Relaxed);
        while cur <= highest {
            match self.next.compare_exchange_weak(
                cur,
                highest + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(DatasetId(7).to_string(), "d7");
        assert_eq!(ResourceId(3).to_string(), "sr3");
        assert_eq!(LogicalResourceId(9).to_string(), "lr9");
    }

    #[test]
    fn idgen_is_monotonic_and_unique() {
        let g = IdGen::new();
        let a: DatasetId = g.next();
        let b: ReplicaId = g.next();
        let c: DatasetId = g.next();
        assert_eq!(a.raw(), 1);
        assert_eq!(b.raw(), 2);
        assert_eq!(c.raw(), 3);
        assert_eq!(g.allocated(), 3);
    }

    #[test]
    fn idgen_is_thread_safe() {
        let g = IdGen::new();
        let ids: HashSet<u64> = std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..8 {
                handles.push(s.spawn(|| {
                    (0..1000)
                        .map(|_| g.next::<DatasetId>().raw())
                        .collect::<Vec<_>>()
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(ids.len(), 8000);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        assert!(CollectionId(1) < CollectionId(2));
        let mut set = HashSet::new();
        set.insert(UserId(1));
        assert!(set.contains(&UserId(1)));
        assert!(!set.contains(&UserId(2)));
    }
}

//! Opaque resumable-cursor tokens for paged catalog reads.
//!
//! The paper's MySRB browse pages windowed million-entry collections; an
//! offset-based window costs O(offset) per page. Instead the catalog hands
//! the client an opaque continuation token naming (a) where the previous
//! page ended — a section discriminant plus the last key served — and
//! (b) the mutation generations of every table the page was computed from.
//! The next page resumes with one bounded range scan from that key, O(page)
//! regardless of how deep into the listing it is; if any generation has
//! moved on, the token is rejected cleanly (`SrbError::Invalid`) and the
//! client restarts, so a mutated table can never silently skip or
//! duplicate entries served under the old ordering.
//!
//! Tokens are HMAC-tagged so a client cannot mint or tamper with one
//! (mirroring the keyed session tokens of the single-sign-on handshake).
//! Encoding is plain printable text — hex payload fields joined by `:` and
//! `,` plus a truncated hex MAC — so tokens travel safely in query strings.

use crate::error::{SrbError, SrbResult};
use crate::hash::{ct_eq, from_hex, hmac_sha256, splitmix64, to_hex};

/// Where a paged read stopped: the section being walked, the generation
/// stamps of the tables it was computed from, and the last key served.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageToken {
    /// Section discriminant for multi-section listings (a collection page
    /// lists sub-collections, then datasets).
    pub section: u8,
    /// Raw [`crate::Generation`] stamps, in the order the paging endpoint
    /// documents. A resumed page re-reads the same counters and rejects the
    /// token on any mismatch.
    pub gens: Vec<u64>,
    /// The last key (name or path) the previous page served; the next page
    /// begins strictly after it.
    pub last: String,
}

/// Half of the HMAC-SHA256 tag, as hex: 32 hex chars, plenty against
/// forgery for a catalog cursor while keeping URLs short.
const TAG_HEX: usize = 32;

/// Signs and verifies [`PageToken`]s.
///
/// The key derives deterministically from a seed via the same splitmix64
/// stream used for session ids, so seeded simulation runs emit
/// byte-identical tokens (the bench determinism gates hash full page
/// walks, tokens included).
#[derive(Debug, Clone)]
pub struct CursorCodec {
    key: [u8; 32],
}

impl CursorCodec {
    /// Codec with a key derived from `seed`.
    pub fn new(seed: u64) -> Self {
        let mut key = [0u8; 32];
        for (i, chunk) in key.chunks_mut(8).enumerate() {
            chunk.copy_from_slice(&splitmix64(seed, i as u64).to_le_bytes());
        }
        CursorCodec { key }
    }

    /// Serialize and sign a token.
    pub fn encode(&self, token: &PageToken) -> String {
        let payload = Self::payload(token);
        let tag = to_hex(&hmac_sha256(&self.key, payload.as_bytes()));
        format!("{payload}.{}", &tag[..TAG_HEX])
    }

    /// Verify and parse a token. Any malformed, forged, or truncated input
    /// maps to `SrbError::Invalid` — a paging endpoint treats that exactly
    /// like a stale cursor and restarts the listing.
    pub fn decode(&self, s: &str) -> SrbResult<PageToken> {
        let bad = || SrbError::Invalid("malformed cursor".into());
        let (payload, tag) = s.rsplit_once('.').ok_or_else(bad)?;
        let expect = to_hex(&hmac_sha256(&self.key, payload.as_bytes()));
        if !ct_eq(tag.as_bytes(), &expect.as_bytes()[..TAG_HEX]) {
            return Err(bad());
        }
        let mut parts = payload.split(':');
        let section = parts
            .next()
            .and_then(|p| p.parse::<u8>().ok())
            .ok_or_else(bad)?;
        let gens_part = parts.next().ok_or_else(bad)?;
        let gens = if gens_part.is_empty() {
            Vec::new()
        } else {
            gens_part
                .split(',')
                .map(|g| g.parse::<u64>().map_err(|_| bad()))
                .collect::<SrbResult<Vec<u64>>>()?
        };
        let last_hex = parts.next().ok_or_else(bad)?;
        if parts.next().is_some() {
            return Err(bad());
        }
        let last_bytes = from_hex(last_hex).ok_or_else(bad)?;
        let last = String::from_utf8(last_bytes).map_err(|_| bad())?;
        Ok(PageToken {
            section,
            gens,
            last,
        })
    }

    /// Decode and additionally require the generation stamps to match the
    /// tables' current ones — the common shape of every paging endpoint.
    pub fn decode_fresh(&self, s: &str, current: &[u64]) -> SrbResult<PageToken> {
        let t = self.decode(s)?;
        if t.gens != current {
            return Err(SrbError::Invalid(
                "stale cursor: catalog changed since this page was issued".into(),
            ));
        }
        Ok(t)
    }

    fn payload(token: &PageToken) -> String {
        let gens = token
            .gens
            .iter()
            .map(|g| g.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!("{}:{gens}:{}", token.section, to_hex(token.last.as_bytes()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> CursorCodec {
        CursorCodec::new(0x5eed)
    }

    #[test]
    fn round_trip() {
        let c = codec();
        let t = PageToken {
            section: 1,
            gens: vec![3, 0, 42],
            last: "/zoo/birds/condor.jpg".into(),
        };
        let s = c.encode(&t);
        assert_eq!(c.decode(&s).unwrap(), t);
        // Keys with separators and non-ASCII survive the hex leg.
        let t2 = PageToken {
            section: 0,
            gens: vec![],
            last: "weird:name.with,separators é".into(),
        };
        assert_eq!(c.decode(&c.encode(&t2)).unwrap(), t2);
    }

    #[test]
    fn deterministic_across_codecs_with_same_seed() {
        let t = PageToken {
            section: 0,
            gens: vec![1],
            last: "x".into(),
        };
        assert_eq!(
            CursorCodec::new(7).encode(&t),
            CursorCodec::new(7).encode(&t)
        );
        assert_ne!(
            CursorCodec::new(7).encode(&t),
            CursorCodec::new(8).encode(&t)
        );
    }

    #[test]
    fn tampering_and_garbage_rejected() {
        let c = codec();
        let t = PageToken {
            section: 1,
            gens: vec![5],
            last: "abc".into(),
        };
        let s = c.encode(&t);
        // Flip a payload character: the MAC no longer matches.
        let mut bad = s.clone();
        bad.replace_range(0..1, "2");
        assert!(c.decode(&bad).is_err());
        // Truncated tag, wrong key, plain garbage.
        assert!(c.decode(&s[..s.len() - 1]).is_err());
        assert!(CursorCodec::new(999).decode(&s).is_err());
        assert!(c.decode("not a token").is_err());
        assert!(c.decode("").is_err());
    }

    #[test]
    fn decode_fresh_rejects_moved_generations() {
        let c = codec();
        let t = PageToken {
            section: 0,
            gens: vec![2, 7],
            last: "k".into(),
        };
        let s = c.encode(&t);
        assert!(c.decode_fresh(&s, &[2, 7]).is_ok());
        let err = c.decode_fresh(&s, &[2, 8]).unwrap_err();
        assert!(matches!(err, SrbError::Invalid(_)));
        assert!(c.decode_fresh(&s, &[2]).is_err());
    }
}

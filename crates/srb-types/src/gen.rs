//! Generation stamps for derived-data caches.
//!
//! A cache over mutable catalog state (e.g. the collection-subtree cache
//! feeding the query planner) needs a cheap way to know whether its entries
//! are still valid. A [`GenCounter`] is bumped by every mutation of the
//! underlying table; each cache entry records the [`Generation`] current
//! when it was computed and is treated as stale the moment the counter has
//! moved on. Readers never block writers: the counter is a single atomic,
//! read outside any table lock.

use std::sync::atomic::{AtomicU64, Ordering};

/// An opaque point in a table's mutation history. Two equal generations
/// bracket a window with no mutations; anything else proves nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Generation(u64);

impl Generation {
    /// The raw counter value (diagnostics only).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// A monotone mutation counter owned by a table; see the module docs.
#[derive(Debug, Default)]
pub struct GenCounter(AtomicU64);

impl GenCounter {
    /// A counter at generation zero.
    pub const fn new() -> Self {
        GenCounter(AtomicU64::new(0))
    }

    /// The current generation. `Acquire` pairs with the `Release` in
    /// [`bump`](Self::bump): a reader that observes generation `g` also
    /// observes every table write that happened before the bump to `g`.
    pub fn current(&self) -> Generation {
        Generation(self.0.load(Ordering::Acquire))
    }

    /// Record one mutation, invalidating every stamp taken earlier.
    pub fn bump(&self) {
        self.0.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_equal_until_bumped() {
        let c = GenCounter::new();
        let a = c.current();
        let b = c.current();
        assert_eq!(a, b);
        c.bump();
        assert_ne!(a, c.current());
        assert_eq!(c.current().raw(), 1);
    }

    #[test]
    fn bumps_are_cumulative_across_threads() {
        let c = GenCounter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        c.bump();
                    }
                });
            }
        });
        assert_eq!(c.current().raw(), 400);
    }
}

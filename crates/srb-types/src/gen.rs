//! Generation stamps for derived-data caches.
//!
//! A cache over mutable catalog state (e.g. the collection-subtree cache
//! feeding the query planner) needs a cheap way to know whether its entries
//! are still valid. A [`GenCounter`] is bumped by every mutation of the
//! underlying table; each cache entry records the [`Generation`] current
//! when it was computed and is treated as stale the moment the counter has
//! moved on. Readers never block writers: the counter is a single atomic,
//! read outside any table lock.
//!
//! The same file defines [`Lsn`], the log sequence number stamped on every
//! write-ahead-log record: like a generation it is a monotone position in a
//! mutation history, but one that is durable and totally ordered across all
//! catalog tables rather than private to one.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Log sequence number: the position of one record in the catalog's
/// write-ahead log. LSN 0 is reserved ("before every record"); the first
/// record appended is LSN 1. Checkpoints store the LSN of the last record
/// they cover; recovery replays records with strictly greater LSNs.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The raw sequence number.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// The LSN of the next record after this one.
    #[inline]
    pub fn next(self) -> Lsn {
        Lsn(self.0 + 1)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn{}", self.0)
    }
}

/// An opaque point in a table's mutation history. Two equal generations
/// bracket a window with no mutations; anything else proves nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Generation(u64);

impl Generation {
    /// The raw counter value (diagnostics and durable-log records only).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild a stamp from a raw value recovered from a durable log.
    /// Only meaningful against the counter it was originally taken from
    /// (or a restored copy of it).
    pub fn from_raw(raw: u64) -> Generation {
        Generation(raw)
    }
}

/// A monotone mutation counter owned by a table; see the module docs.
#[derive(Debug, Default)]
pub struct GenCounter(AtomicU64);

impl GenCounter {
    /// A counter at generation zero.
    pub const fn new() -> Self {
        GenCounter(AtomicU64::new(0))
    }

    /// The current generation. `Acquire` pairs with the `Release` in
    /// [`bump`](Self::bump): a reader that observes generation `g` also
    /// observes every table write that happened before the bump to `g`.
    pub fn current(&self) -> Generation {
        Generation(self.0.load(Ordering::Acquire))
    }

    /// Record one mutation, invalidating every stamp taken earlier.
    pub fn bump(&self) {
        self.0.fetch_add(1, Ordering::Release);
    }

    /// Record one mutation and return the *post*-bump generation — the
    /// stamp a durable log record must carry so replaying it reproduces
    /// exactly this counter state.
    pub fn bump_get(&self) -> Generation {
        Generation(self.0.fetch_add(1, Ordering::Release) + 1)
    }

    /// Raise the counter to at least `raw` (never lowers it). Used when
    /// restoring a table from a checkpoint + log tail: stamps minted
    /// before the crash stay comparable after recovery.
    pub fn ensure_at_least(&self, raw: u64) {
        let mut cur = self.0.load(Ordering::Acquire);
        while cur < raw {
            match self
                .0
                .compare_exchange_weak(cur, raw, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_equal_until_bumped() {
        let c = GenCounter::new();
        let a = c.current();
        let b = c.current();
        assert_eq!(a, b);
        c.bump();
        assert_ne!(a, c.current());
        assert_eq!(c.current().raw(), 1);
    }

    #[test]
    fn lsn_orders_and_displays() {
        assert!(Lsn(1) < Lsn(2));
        assert_eq!(Lsn(7).next(), Lsn(8));
        assert_eq!(Lsn(7).to_string(), "lsn7");
        assert_eq!(Lsn::default().raw(), 0);
    }

    #[test]
    fn bump_get_returns_the_post_bump_stamp() {
        let c = GenCounter::new();
        let g = c.bump_get();
        assert_eq!(g.raw(), 1);
        assert_eq!(c.current(), g);
        assert_eq!(c.bump_get().raw(), 2);
    }

    #[test]
    fn ensure_at_least_is_monotone() {
        let c = GenCounter::new();
        c.ensure_at_least(7);
        assert_eq!(c.current().raw(), 7);
        c.ensure_at_least(3); // never lowers
        assert_eq!(c.current().raw(), 7);
        assert_eq!(c.current(), Generation::from_raw(7));
    }

    #[test]
    fn bumps_are_cumulative_across_threads() {
        let c = GenCounter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        c.bump();
                    }
                });
            }
        });
        assert_eq!(c.current().raw(), 400);
    }
}

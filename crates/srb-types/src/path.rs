//! Logical name space paths.
//!
//! SRB identifies every object by a *logical* path like
//! `/home/sekar/Cultures/Avian Culture/notes.txt`, entirely decoupled from
//! where the bytes live. `LogicalPath` is a normalized, always-absolute path
//! with `/`-separated components. Components may contain spaces (as in the
//! paper's "Avian Culture") but not `/`, NUL, or leading/trailing whitespace.

use crate::error::{SrbError, SrbResult};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A normalized absolute path in the logical name space.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LogicalPath {
    components: Vec<String>,
}

impl LogicalPath {
    /// The root collection `/`.
    pub fn root() -> Self {
        LogicalPath {
            components: Vec::new(),
        }
    }

    /// Parse a path string. Accepts relative-looking input by treating it as
    /// absolute; collapses duplicate slashes; rejects empty or invalid
    /// components.
    pub fn parse(s: &str) -> SrbResult<Self> {
        let mut components = Vec::new();
        for part in s.split('/') {
            if part.is_empty() {
                continue;
            }
            Self::validate_component(part)?;
            components.push(part.to_string());
        }
        Ok(LogicalPath { components })
    }

    fn validate_component(c: &str) -> SrbResult<()> {
        if c == "." || c == ".." {
            return Err(SrbError::Invalid(format!(
                "path component '{c}' not allowed in logical paths"
            )));
        }
        if c.contains('\0') {
            return Err(SrbError::Invalid("NUL byte in path component".into()));
        }
        if c.trim() != c {
            return Err(SrbError::Invalid(format!(
                "path component '{c}' has leading/trailing whitespace"
            )));
        }
        Ok(())
    }

    /// Append one component, returning a new path.
    pub fn child(&self, name: &str) -> SrbResult<Self> {
        Self::validate_component(name)?;
        if name.contains('/') {
            return Err(SrbError::Invalid(format!(
                "component '{name}' contains '/'"
            )));
        }
        let mut components = self.components.clone();
        components.push(name.to_string());
        Ok(LogicalPath { components })
    }

    /// The parent collection, or `None` for the root.
    pub fn parent(&self) -> Option<Self> {
        if self.components.is_empty() {
            None
        } else {
            Some(LogicalPath {
                components: self.components[..self.components.len() - 1].to_vec(),
            })
        }
    }

    /// Final component (object or collection name); `None` for the root.
    pub fn name(&self) -> Option<&str> {
        self.components.last().map(|s| s.as_str())
    }

    /// Number of components (0 for root).
    pub fn depth(&self) -> usize {
        self.components.len()
    }

    /// True if this is the root path.
    pub fn is_root(&self) -> bool {
        self.components.is_empty()
    }

    /// Iterate over components from the root downwards.
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.components.iter().map(|s| s.as_str())
    }

    /// True when `self` is `other` or a descendant of `other`.
    pub fn starts_with(&self, other: &LogicalPath) -> bool {
        self.components.len() >= other.components.len()
            && self.components[..other.components.len()] == other.components[..]
    }

    /// Re-root `self` from `from` onto `to` (used by `move`/`copy` of whole
    /// collections). Errors if `self` is not under `from`.
    pub fn rebase(&self, from: &LogicalPath, to: &LogicalPath) -> SrbResult<Self> {
        if !self.starts_with(from) {
            return Err(SrbError::Invalid(format!("'{self}' is not under '{from}'")));
        }
        let mut components = to.components.clone();
        components.extend_from_slice(&self.components[from.components.len()..]);
        Ok(LogicalPath { components })
    }
}

impl fmt::Display for LogicalPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            return write!(f, "/");
        }
        for c in &self.components {
            write!(f, "/{c}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for LogicalPath {
    type Err = SrbError;
    fn from_str(s: &str) -> SrbResult<Self> {
        LogicalPath::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let p = LogicalPath::parse("/home/sekar/Avian Culture").unwrap();
        assert_eq!(p.to_string(), "/home/sekar/Avian Culture");
        assert_eq!(p.depth(), 3);
        assert_eq!(p.name(), Some("Avian Culture"));
    }

    #[test]
    fn duplicate_slashes_collapse() {
        let p = LogicalPath::parse("//home///sekar/").unwrap();
        assert_eq!(p.to_string(), "/home/sekar");
    }

    #[test]
    fn root_behaviour() {
        let r = LogicalPath::root();
        assert!(r.is_root());
        assert_eq!(r.to_string(), "/");
        assert_eq!(r.parent(), None);
        assert_eq!(r.name(), None);
        assert_eq!(LogicalPath::parse("/").unwrap(), r);
    }

    #[test]
    fn rejects_dot_components_and_nul() {
        assert!(LogicalPath::parse("/a/../b").is_err());
        assert!(LogicalPath::parse("/a/./b").is_err());
        assert!(LogicalPath::parse("/a/b\0c").is_err());
    }

    #[test]
    fn rejects_whitespace_padding() {
        assert!(LogicalPath::parse("/a/ b").is_err());
        assert!(LogicalPath::root().child(" x").is_err());
    }

    #[test]
    fn child_and_parent_are_inverse() {
        let p = LogicalPath::parse("/x/y").unwrap();
        let c = p.child("z").unwrap();
        assert_eq!(c.to_string(), "/x/y/z");
        assert_eq!(c.parent().unwrap(), p);
    }

    #[test]
    fn starts_with_semantics() {
        let a = LogicalPath::parse("/x/y/z").unwrap();
        let b = LogicalPath::parse("/x/y").unwrap();
        let c = LogicalPath::parse("/x/yy").unwrap();
        assert!(a.starts_with(&b));
        assert!(a.starts_with(&a));
        assert!(!a.starts_with(&c));
        assert!(!b.starts_with(&a));
        assert!(a.starts_with(&LogicalPath::root()));
    }

    #[test]
    fn rebase_moves_subtrees() {
        let obj = LogicalPath::parse("/src/coll/sub/file").unwrap();
        let from = LogicalPath::parse("/src/coll").unwrap();
        let to = LogicalPath::parse("/dst/new").unwrap();
        assert_eq!(
            obj.rebase(&from, &to).unwrap().to_string(),
            "/dst/new/sub/file"
        );
        assert!(obj.rebase(&to, &from).is_err());
    }
}

//! Ranked lock wrappers: the grid-wide lock hierarchy plus a runtime
//! deadlock detector.
//!
//! One MCAT and many storage drivers are shared by every concurrent client,
//! so a single inverted lock acquisition anywhere in the workspace can
//! deadlock the whole grid. Instead of documenting an ordering convention,
//! every lock in the workspace is a [`Mutex`]/[`RwLock`] from this module,
//! carrying a static [`LockRank`]. A thread-local stack records the ranks a
//! thread currently holds; in debug builds (and under `cargo test`),
//! acquiring a lock of **higher** rank than one already held panics with
//! both lock names — turning a potential production deadlock into a
//! deterministic test failure.
//!
//! # The hierarchy
//!
//! Ranks mirror the call direction of the system, outermost first: a web
//! session calls into core state, which consults MCAT tables, which reach
//! storage drivers, which charge transfer costs against the network
//! topology. A thread must acquire locks in non-increasing rank order:
//!
//! | rank (acquired earlier) | [`LockRank`]  | owning layer                        |
//! |------------------------:|---------------|-------------------------------------|
//! | 7                       | `Session`     | `mysrb` web sessions                |
//! | 6                       | `ZoneFed`     | `srb-core` federation membership    |
//! | 5                       | `ZoneLink`    | `srb-core` zone peering link state  |
//! | 4                       | `CoreState`   | `srb-core` grid/auth/proxy state    |
//! | 3                       | `McatTable`   | `srb-mcat` catalog tables           |
//! | 2                       | `Wal`         | `srb-mcat` write-ahead log buffer   |
//! | 1                       | `Storage`     | `srb-storage` driver internals      |
//! | 0                       | `Topology`    | `srb-net` routes/load/faults        |
//!
//! Locks of **equal** rank may be held simultaneously (the catalog routinely
//! holds several table locks); same-rank siblings are only acquired from
//! within one owning module, which keeps their relative order consistent.
//!
//! Raw `parking_lot` construction outside this module is rejected by
//! `cargo xtask lint` (rule `raw-lock`).

use std::cell::RefCell;
use std::fmt;
use std::ops::{Deref, DerefMut};

/// Position of a lock in the grid-wide hierarchy. See the module docs for
/// the full table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum LockRank {
    /// `srb-net`: route cache, load accounting, fault injection.
    Topology = 0,
    /// `srb-storage`: driver-internal state (shards, staging sets, tables).
    Storage = 1,
    /// `srb-mcat`: the write-ahead log buffer (appended to while a table
    /// lock is held, so it sits strictly below `McatTable`).
    Wal = 2,
    /// `srb-mcat`: one catalog table (users, datasets, metadata, ...).
    McatTable = 3,
    /// `srb-core`: grid resource maps, auth sessions, proxy registries.
    CoreState = 4,
    /// `srb-core`: one zone-peering link's outbox, cursors and lag state.
    /// The replication pump holds a link lock while applying deltas to the
    /// subscriber's catalog tables, so links sit strictly above `CoreState`.
    ZoneLink = 5,
    /// `srb-core`: federation membership and subscription registry — the
    /// routing table consulted before any per-link state is touched.
    ZoneFed = 6,
    /// `mysrb`: web session table and its id generator.
    Session = 7,
}

/// A rank-order violation detected at acquisition time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankViolation {
    /// Lock being acquired.
    pub acquiring: &'static str,
    /// Rank of the lock being acquired.
    pub acquiring_rank: LockRank,
    /// Already-held lock that forbids the acquisition.
    pub held: &'static str,
    /// Rank of that already-held lock.
    pub held_rank: LockRank,
}

impl fmt::Display for RankViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lock rank inversion: acquiring `{}` (rank {:?}={}) while holding \
             `{}` (rank {:?}={}); locks must be acquired in non-increasing \
             rank order (see srb_types::sync)",
            self.acquiring,
            self.acquiring_rank,
            self.acquiring_rank as u8,
            self.held,
            self.held_rank,
            self.held_rank as u8,
        )
    }
}

thread_local! {
    /// (token, rank, name) for every ranked lock this thread holds.
    static HELD: RefCell<Vec<(u64, LockRank, &'static str)>> = const { RefCell::new(Vec::new()) };
}

/// Check whether acquiring `rank` now would invert the hierarchy on this
/// thread. Exposed (hidden) so property tests can probe the checker without
/// catching panics.
#[doc(hidden)]
pub fn check_acquire(rank: LockRank, name: &'static str) -> Result<(), RankViolation> {
    HELD.with(|held| {
        for &(_, held_rank, held_name) in held.borrow().iter() {
            if rank > held_rank {
                return Err(RankViolation {
                    acquiring: name,
                    acquiring_rank: rank,
                    held: held_name,
                    held_rank,
                });
            }
        }
        Ok(())
    })
}

/// Ranks currently held by this thread, outermost first (test helper).
#[doc(hidden)]
pub fn held_ranks() -> Vec<LockRank> {
    HELD.with(|held| held.borrow().iter().map(|&(_, r, _)| r).collect())
}

/// RAII registration of a held rank; removal is by token so guards may be
/// dropped in any order.
struct HeldToken {
    token: u64,
}

impl HeldToken {
    fn register(rank: LockRank, name: &'static str) -> HeldToken {
        use std::sync::atomic::{AtomicU64, Ordering};
        if let Err(violation) = check_acquire(rank, name) {
            panic!("{violation}");
        }
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let token = NEXT.fetch_add(1, Ordering::Relaxed);
        HELD.with(|held| held.borrow_mut().push((token, rank, name)));
        HeldToken { token }
    }
}

impl Drop for HeldToken {
    fn drop(&mut self) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&(t, _, _)| t == self.token) {
                held.remove(pos);
            }
        });
    }
}

/// Rank bookkeeping only runs where inversions should panic: debug builds
/// and tests. Release builds skip the thread-local entirely.
#[inline]
fn checking_enabled() -> bool {
    cfg!(any(debug_assertions, test))
}

fn maybe_register(rank: LockRank, name: &'static str) -> Option<HeldToken> {
    checking_enabled().then(|| HeldToken::register(rank, name))
}

// ------------------------------------------------------------------ Mutex --

/// A ranked mutual-exclusion lock.
pub struct Mutex<T: ?Sized> {
    rank: LockRank,
    name: &'static str,
    inner: parking_lot::Mutex<T>,
}

impl<T> Mutex<T> {
    /// New mutex at `rank`; `name` identifies it in violation reports
    /// (convention: `"layer.field"`, e.g. `"mcat.audit"`).
    pub const fn new(rank: LockRank, name: &'static str, value: T) -> Self {
        Mutex {
            rank,
            name,
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, enforcing rank order in debug builds.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let token = maybe_register(self.rank, self.name);
        MutexGuard {
            inner: self.inner.lock(),
            _token: token,
        }
    }

    /// This lock's rank.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// This lock's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex")
            .field("name", &self.name)
            .field("rank", &self.rank)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Guard for [`Mutex`]; releases the rank entry on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: parking_lot::MutexGuard<'a, T>,
    _token: Option<HeldToken>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// ----------------------------------------------------------------- RwLock --

/// A ranked readers-writer lock.
pub struct RwLock<T: ?Sized> {
    rank: LockRank,
    name: &'static str,
    inner: parking_lot::RwLock<T>,
}

impl<T> RwLock<T> {
    /// New lock at `rank`; `name` identifies it in violation reports.
    pub const fn new(rank: LockRank, name: &'static str, value: T) -> Self {
        RwLock {
            rank,
            name,
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, enforcing rank order in debug builds.
    ///
    /// Reads participate in the hierarchy like writes: a blocked writer
    /// ahead of us in the queue makes reader/writer inversions deadlock
    /// just as surely as writer/writer ones.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let token = maybe_register(self.rank, self.name);
        RwLockReadGuard {
            inner: self.inner.read(),
            _token: token,
        }
    }

    /// Acquire an exclusive write guard, enforcing rank order in debug builds.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let token = maybe_register(self.rank, self.name);
        RwLockWriteGuard {
            inner: self.inner.write(),
            _token: token,
        }
    }

    /// This lock's rank.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// This lock's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("name", &self.name)
            .field("rank", &self.rank)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Shared guard for [`RwLock`]; releases the rank entry on drop.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: parking_lot::RwLockReadGuard<'a, T>,
    _token: Option<HeldToken>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard for [`RwLock`]; releases the rank entry on drop.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: parking_lot::RwLockWriteGuard<'a, T>,
    _token: Option<HeldToken>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descending_rank_order_is_allowed() {
        let outer = Mutex::new(LockRank::Session, "test.outer", ());
        let mid = RwLock::new(LockRank::McatTable, "test.mid", ());
        let inner = Mutex::new(LockRank::Topology, "test.inner", ());
        let _a = outer.lock();
        let _b = mid.read();
        let _c = inner.lock();
        assert_eq!(
            held_ranks(),
            vec![LockRank::Session, LockRank::McatTable, LockRank::Topology]
        );
    }

    #[test]
    fn equal_rank_is_allowed() {
        // The catalog holds several table locks at once; same-rank
        // acquisition is explicitly permitted.
        let a = RwLock::new(LockRank::McatTable, "test.table_a", ());
        let b = RwLock::new(LockRank::McatTable, "test.table_b", ());
        let _ga = a.write();
        let _gb = b.read();
        assert_eq!(held_ranks(), vec![LockRank::McatTable, LockRank::McatTable]);
    }

    #[test]
    #[should_panic(expected = "lock rank inversion")]
    fn inverted_order_panics() {
        let storage = Mutex::new(LockRank::Storage, "test.storage", ());
        let core = RwLock::new(LockRank::CoreState, "test.core", ());
        let _g = storage.lock();
        let _h = core.read(); // storage (1) held, core (3) wanted: inversion
    }

    #[test]
    #[should_panic(expected = "lock rank inversion")]
    fn read_guards_participate_in_ranking() {
        let topo = RwLock::new(LockRank::Topology, "test.topo", ());
        let session = RwLock::new(LockRank::Session, "test.session", ());
        let _g = topo.read();
        let _h = session.read();
    }

    #[test]
    fn out_of_order_guard_drops_unwind_correctly() {
        let outer = Mutex::new(LockRank::CoreState, "test.outer2", ());
        let inner = Mutex::new(LockRank::Storage, "test.inner2", ());
        let a = outer.lock();
        let b = inner.lock();
        drop(a); // release outer first: token removal is positional, not LIFO
        assert_eq!(held_ranks(), vec![LockRank::Storage]);
        drop(b);
        assert!(held_ranks().is_empty());
        // After everything is released, an outer acquisition works again.
        let _c = outer.lock();
    }

    #[test]
    fn violation_message_names_both_locks() {
        let inner = Mutex::new(LockRank::Storage, "test.named_inner", ());
        let _g = inner.lock();
        let violation = check_acquire(LockRank::Session, "test.named_outer").unwrap_err();
        let msg = violation.to_string();
        assert!(msg.contains("test.named_outer") && msg.contains("test.named_inner"));
        assert_eq!(violation.held_rank, LockRank::Storage);
    }

    #[test]
    fn checker_is_per_thread() {
        let inner = Mutex::new(LockRank::Topology, "test.thread_inner", ());
        let _g = inner.lock();
        // Another thread holds nothing, so any acquisition is fine there.
        std::thread::spawn(|| {
            assert!(check_acquire(LockRank::Session, "test.elsewhere").is_ok());
        })
        .join()
        .unwrap();
    }

    /// The module-doc hierarchy table is documentation of record (and what
    /// `cargo xtask analyze` points people at), so it must list exactly
    /// the `LockRank` variants with their actual discriminants.
    #[test]
    fn module_doc_table_matches_the_enum() {
        let src = include_str!("sync.rs");

        // Rows of the doc table: `//! | <rank> | \`<Variant>\` | ... |`.
        let mut doc_rows = Vec::new();
        for line in src.lines() {
            let Some(row) = line.trim().strip_prefix("//! |") else {
                continue;
            };
            let cells: Vec<&str> = row.split('|').map(str::trim).collect();
            if cells.len() < 2 {
                continue;
            }
            let (Ok(rank), Some(variant)) = (
                cells[0].parse::<u8>(),
                cells[1].strip_prefix('`').and_then(|c| c.strip_suffix('`')),
            ) else {
                continue; // header / separator rows
            };
            doc_rows.push((variant.to_string(), rank));
        }

        // Variants of the enum itself: `<Variant> = <n>,` inside
        // `pub enum LockRank { ... }`.
        let body = src
            .split_once("pub enum LockRank {")
            .map(|(_, rest)| rest.split_once('}').map(|(b, _)| b).unwrap_or(rest))
            .expect("enum LockRank present in sync.rs");
        let mut enum_rows = Vec::new();
        for line in body.lines() {
            let line = line.trim();
            if line.starts_with("///") {
                continue;
            }
            if let Some((variant, rest)) = line.split_once('=') {
                let rank: u8 = rest
                    .trim()
                    .trim_end_matches(',')
                    .parse()
                    .expect("explicit discriminant");
                enum_rows.push((variant.trim().to_string(), rank));
            }
        }

        assert!(!enum_rows.is_empty(), "found no LockRank variants");
        // The table lists ranks descending (acquired-earlier first); the
        // enum ascends. Compare as sets of (variant, rank) plus counts, so
        // a renamed variant, changed discriminant, added rank, or dropped
        // table row all fail.
        let mut doc_sorted = doc_rows.clone();
        doc_sorted.sort();
        let mut enum_sorted = enum_rows.clone();
        enum_sorted.sort();
        assert_eq!(
            doc_sorted, enum_sorted,
            "module-doc rank table out of sync with the LockRank enum"
        );
        // And the documented order really is descending.
        let ranks: Vec<u8> = doc_rows.iter().map(|&(_, r)| r).collect();
        let mut descending = ranks.clone();
        descending.sort_by(|a, b| b.cmp(a));
        assert_eq!(ranks, descending, "doc table must list ranks descending");
    }
}

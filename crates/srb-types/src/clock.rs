//! Deterministic virtual time.
//!
//! Latency experiments must be reproducible regardless of the host machine,
//! so the simulated WAN charges costs against a virtual clock rather than
//! sleeping. The clock is a shared atomic nanosecond counter: storage
//! drivers and the network advance it (or, for concurrent workloads, compute
//! per-operation receipts against it) and benchmarks read it back.
//!
//! Wall-clock performance of the in-memory fast path is measured separately
//! with criterion; the two never mix.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in virtual time, in nanoseconds since grid boot.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Nanoseconds since boot.
    #[inline]
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since boot (truncating).
    #[inline]
    pub fn micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since boot (truncating).
    #[inline]
    pub fn millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds since boot (truncating).
    #[inline]
    pub fn secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Timestamp `d` nanoseconds later.
    #[inline]
    pub fn plus_nanos(self, d: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(d))
    }

    /// Timestamp `d` seconds later.
    #[inline]
    pub fn plus_secs(self, d: u64) -> Timestamp {
        self.plus_nanos(d.saturating_mul(1_000_000_000))
    }

    /// Duration in nanoseconds from `earlier` to `self` (0 if negative).
    #[inline]
    pub fn since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.micros();
        write!(f, "t+{}.{:06}s", us / 1_000_000, us % 1_000_000)
    }
}

/// Shared monotone virtual clock.
///
/// Cloning shares the underlying counter, so every subsystem created from
/// the same `Grid` observes a single time line.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock at t=0.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Timestamp {
        Timestamp(self.nanos.load(Ordering::Acquire))
    }

    /// Advance the clock by `d` nanoseconds and return the new time.
    ///
    /// Used by single-threaded simulations where operations happen strictly
    /// in sequence.
    #[inline]
    pub fn advance(&self, d: u64) -> Timestamp {
        Timestamp(self.nanos.fetch_add(d, Ordering::AcqRel) + d)
    }

    /// Move the clock forward to at least `t` (never backwards).
    ///
    /// Used by concurrent simulations: each worker computes its own finish
    /// time and publishes the maximum, so the clock reflects the makespan.
    pub fn advance_to(&self, t: Timestamp) -> Timestamp {
        let mut cur = self.nanos.load(Ordering::Acquire);
        while cur < t.0 {
            match self
                .nanos
                .compare_exchange_weak(cur, t.0, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return t,
                Err(actual) => cur = actual,
            }
        }
        Timestamp(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let c = SimClock::new();
        assert_eq!(c.now(), Timestamp(0));
        assert_eq!(c.advance(500), Timestamp(500));
        assert_eq!(c.advance(250), Timestamp(750));
        assert_eq!(c.now(), Timestamp(750));
    }

    #[test]
    fn clones_share_the_timeline() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(1_000);
        assert_eq!(b.now(), Timestamp(1_000));
    }

    #[test]
    fn advance_to_is_monotone() {
        let c = SimClock::new();
        c.advance_to(Timestamp(100));
        assert_eq!(c.now(), Timestamp(100));
        // Never moves backwards.
        c.advance_to(Timestamp(50));
        assert_eq!(c.now(), Timestamp(100));
        c.advance_to(Timestamp(170));
        assert_eq!(c.now(), Timestamp(170));
    }

    #[test]
    fn advance_to_under_contention_keeps_max() {
        let c = SimClock::new();
        std::thread::scope(|s| {
            for i in 0..8u64 {
                let c = c.clone();
                s.spawn(move || {
                    for j in 0..1000u64 {
                        c.advance_to(Timestamp(i * 1000 + j));
                    }
                });
            }
        });
        assert_eq!(c.now(), Timestamp(7999));
    }

    #[test]
    fn timestamp_conversions() {
        let t = Timestamp(3_456_789_012);
        assert_eq!(t.secs(), 3);
        assert_eq!(t.millis(), 3_456);
        assert_eq!(t.micros(), 3_456_789);
        assert_eq!(t.plus_secs(2).secs(), 5);
        assert_eq!(t.since(Timestamp(456_789_012)), 3_000_000_000);
        assert_eq!(Timestamp(0).since(t), 0);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(Timestamp(1_500_000_000).to_string(), "t+1.500000s");
    }
}

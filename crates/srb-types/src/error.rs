//! The workspace-wide error type.
//!
//! SRB is a distributed system: almost every operation can fail because an
//! entity is missing, a permission is lacking, a resource is down, or a
//! protocol step was violated. One enum keeps error handling uniform across
//! the catalog, the storage drivers, the federation and the web front-end.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Result alias used across the workspace.
pub type SrbResult<T> = Result<T, SrbError>;

/// All failure modes surfaced by the data grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SrbError {
    /// The named entity does not exist in the catalog or on storage.
    NotFound(String),
    /// An entity with this name already exists where uniqueness is required.
    AlreadyExists(String),
    /// The authenticated user lacks the permission the operation requires.
    PermissionDenied(String),
    /// Authentication failed (bad credentials, expired session, bad ticket).
    AuthFailed(String),
    /// A storage resource is unavailable (down, unreachable, out of space).
    ResourceUnavailable(String),
    /// The object is locked, pinned or checked out in a conflicting way.
    Locked(String),
    /// Input was syntactically or semantically invalid.
    Invalid(String),
    /// A required structural-metadata attribute was not supplied.
    MissingMetadata(String),
    /// The operation is not supported for this object type (e.g. replicating
    /// a file inside a registered directory).
    Unsupported(String),
    /// Low-level I/O failure inside a storage driver.
    Io(String),
    /// Query or T-language parse error.
    Parse(String),
    /// Internal invariant violation — always a bug.
    Internal(String),
}

impl SrbError {
    /// Short machine-readable code, used in audit rows and HTTP replies.
    pub fn code(&self) -> &'static str {
        match self {
            SrbError::NotFound(_) => "NOT_FOUND",
            SrbError::AlreadyExists(_) => "ALREADY_EXISTS",
            SrbError::PermissionDenied(_) => "PERMISSION_DENIED",
            SrbError::AuthFailed(_) => "AUTH_FAILED",
            SrbError::ResourceUnavailable(_) => "RESOURCE_UNAVAILABLE",
            SrbError::Locked(_) => "LOCKED",
            SrbError::Invalid(_) => "INVALID",
            SrbError::MissingMetadata(_) => "MISSING_METADATA",
            SrbError::Unsupported(_) => "UNSUPPORTED",
            SrbError::Io(_) => "IO",
            SrbError::Parse(_) => "PARSE",
            SrbError::Internal(_) => "INTERNAL",
        }
    }

    /// True when retrying against a different replica could succeed.
    ///
    /// The federation's failover logic uses this to decide whether to try
    /// the next replica rather than give up.
    pub fn is_retryable(&self) -> bool {
        matches!(self, SrbError::ResourceUnavailable(_) | SrbError::Io(_))
    }

    /// The human-readable detail attached at construction.
    pub fn detail(&self) -> &str {
        match self {
            SrbError::NotFound(s)
            | SrbError::AlreadyExists(s)
            | SrbError::PermissionDenied(s)
            | SrbError::AuthFailed(s)
            | SrbError::ResourceUnavailable(s)
            | SrbError::Locked(s)
            | SrbError::Invalid(s)
            | SrbError::MissingMetadata(s)
            | SrbError::Unsupported(s)
            | SrbError::Io(s)
            | SrbError::Parse(s)
            | SrbError::Internal(s) => s,
        }
    }
}

impl fmt::Display for SrbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code(), self.detail())
    }
}

impl std::error::Error for SrbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(SrbError::NotFound("x".into()).code(), "NOT_FOUND");
        assert_eq!(SrbError::AuthFailed("x".into()).code(), "AUTH_FAILED");
        assert_eq!(SrbError::Parse("x".into()).code(), "PARSE");
    }

    #[test]
    fn retryable_only_for_transient_failures() {
        assert!(SrbError::ResourceUnavailable("down".into()).is_retryable());
        assert!(SrbError::Io("disk".into()).is_retryable());
        assert!(!SrbError::PermissionDenied("no".into()).is_retryable());
        assert!(!SrbError::NotFound("no".into()).is_retryable());
    }

    #[test]
    fn display_includes_code_and_detail() {
        let e = SrbError::Locked("dataset d3 exclusively locked".into());
        assert_eq!(e.to_string(), "LOCKED: dataset d3 exclusively locked");
        assert_eq!(e.detail(), "dataset d3 exclusively locked");
    }
}

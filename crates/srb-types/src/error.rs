//! The workspace-wide error type.
//!
//! SRB is a distributed system: almost every operation can fail because an
//! entity is missing, a permission is lacking, a resource is down, or a
//! protocol step was violated. One enum keeps error handling uniform across
//! the catalog, the storage drivers, the federation and the web front-end.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Result alias used across the workspace.
pub type SrbResult<T> = Result<T, SrbError>;

/// All failure modes surfaced by the data grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SrbError {
    /// The named entity does not exist in the catalog or on storage.
    NotFound(String),
    /// An entity with this name already exists where uniqueness is required.
    AlreadyExists(String),
    /// The authenticated user lacks the permission the operation requires.
    PermissionDenied(String),
    /// Authentication failed (bad credentials, expired session, bad ticket).
    AuthFailed(String),
    /// A storage resource is unavailable (down, circuit-broken, out of
    /// space). The rest of its site may still be reachable.
    ResourceUnavailable(String),
    /// An entire site is unreachable (network partition, site outage).
    /// Distinct from [`SrbError::ResourceUnavailable`] so failover can
    /// tell "this disk is down" from "everything over there is down".
    SiteUnavailable(String),
    /// An operation timed out transiently (flaky storage, lost message).
    /// Retrying the *same* replica may succeed.
    Timeout(String),
    /// Stored bytes do not match their recorded integrity metadata.
    /// Never retryable: re-reading corrupt data yields corrupt data.
    Corrupt(String),
    /// The object is locked, pinned or checked out in a conflicting way.
    Locked(String),
    /// Input was syntactically or semantically invalid.
    Invalid(String),
    /// A required structural-metadata attribute was not supplied.
    MissingMetadata(String),
    /// The operation is not supported for this object type (e.g. replicating
    /// a file inside a registered directory).
    Unsupported(String),
    /// Low-level I/O failure inside a storage driver.
    Io(String),
    /// Query or T-language parse error.
    Parse(String),
    /// Internal invariant violation — always a bug.
    Internal(String),
}

impl SrbError {
    /// Short machine-readable code, used in audit rows and HTTP replies.
    pub fn code(&self) -> &'static str {
        match self {
            SrbError::NotFound(_) => "NOT_FOUND",
            SrbError::AlreadyExists(_) => "ALREADY_EXISTS",
            SrbError::PermissionDenied(_) => "PERMISSION_DENIED",
            SrbError::AuthFailed(_) => "AUTH_FAILED",
            SrbError::ResourceUnavailable(_) => "RESOURCE_UNAVAILABLE",
            SrbError::SiteUnavailable(_) => "SITE_UNAVAILABLE",
            SrbError::Timeout(_) => "TIMEOUT",
            SrbError::Corrupt(_) => "CORRUPT",
            SrbError::Locked(_) => "LOCKED",
            SrbError::Invalid(_) => "INVALID",
            SrbError::MissingMetadata(_) => "MISSING_METADATA",
            SrbError::Unsupported(_) => "UNSUPPORTED",
            SrbError::Io(_) => "IO",
            SrbError::Parse(_) => "PARSE",
            SrbError::Internal(_) => "INTERNAL",
        }
    }

    /// True when retrying against a different replica could succeed.
    ///
    /// The federation's failover logic uses this to decide whether to try
    /// the next replica rather than give up. Note the classification:
    /// `Corrupt` is *not* retryable — corruption-shaped failures must
    /// surface, not be papered over by a luckier replica — while the
    /// unavailability family and transient I/O failures are.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            SrbError::ResourceUnavailable(_)
                | SrbError::SiteUnavailable(_)
                | SrbError::Timeout(_)
                | SrbError::Io(_)
        )
    }

    /// True when retrying the *same* replica after a backoff could
    /// succeed — the error is transient rather than a statement that the
    /// resource is down.
    ///
    /// The retry engine uses this: `Timeout`/`Io` legs are worth a
    /// backoff-and-retry; `ResourceUnavailable`/`SiteUnavailable` mean the
    /// switchboard (or a circuit breaker) has declared the target dead for
    /// now, so the right move is failing over, not hammering it.
    pub fn is_transient(&self) -> bool {
        matches!(self, SrbError::Timeout(_) | SrbError::Io(_))
    }

    /// The human-readable detail attached at construction.
    pub fn detail(&self) -> &str {
        match self {
            SrbError::NotFound(s)
            | SrbError::AlreadyExists(s)
            | SrbError::PermissionDenied(s)
            | SrbError::AuthFailed(s)
            | SrbError::ResourceUnavailable(s)
            | SrbError::SiteUnavailable(s)
            | SrbError::Timeout(s)
            | SrbError::Corrupt(s)
            | SrbError::Locked(s)
            | SrbError::Invalid(s)
            | SrbError::MissingMetadata(s)
            | SrbError::Unsupported(s)
            | SrbError::Io(s)
            | SrbError::Parse(s)
            | SrbError::Internal(s) => s,
        }
    }
}

impl fmt::Display for SrbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code(), self.detail())
    }
}

impl std::error::Error for SrbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable() {
        assert_eq!(SrbError::NotFound("x".into()).code(), "NOT_FOUND");
        assert_eq!(SrbError::AuthFailed("x".into()).code(), "AUTH_FAILED");
        assert_eq!(SrbError::Parse("x".into()).code(), "PARSE");
    }

    /// The full classification table: (error, code, retryable across
    /// replicas, transient on the same replica).
    #[test]
    fn classification_table() {
        let table: Vec<(SrbError, &str, bool, bool)> = vec![
            (SrbError::NotFound("x".into()), "NOT_FOUND", false, false),
            (
                SrbError::AlreadyExists("x".into()),
                "ALREADY_EXISTS",
                false,
                false,
            ),
            (
                SrbError::PermissionDenied("x".into()),
                "PERMISSION_DENIED",
                false,
                false,
            ),
            (
                SrbError::AuthFailed("x".into()),
                "AUTH_FAILED",
                false,
                false,
            ),
            (
                SrbError::ResourceUnavailable("x".into()),
                "RESOURCE_UNAVAILABLE",
                true,
                false,
            ),
            (
                SrbError::SiteUnavailable("x".into()),
                "SITE_UNAVAILABLE",
                true,
                false,
            ),
            (SrbError::Timeout("x".into()), "TIMEOUT", true, true),
            (SrbError::Corrupt("x".into()), "CORRUPT", false, false),
            (SrbError::Locked("x".into()), "LOCKED", false, false),
            (SrbError::Invalid("x".into()), "INVALID", false, false),
            (
                SrbError::MissingMetadata("x".into()),
                "MISSING_METADATA",
                false,
                false,
            ),
            (
                SrbError::Unsupported("x".into()),
                "UNSUPPORTED",
                false,
                false,
            ),
            (SrbError::Io("x".into()), "IO", true, true),
            (SrbError::Parse("x".into()), "PARSE", false, false),
            (SrbError::Internal("x".into()), "INTERNAL", false, false),
        ];
        for (err, code, retryable, transient) in table {
            assert_eq!(err.code(), code);
            assert_eq!(err.is_retryable(), retryable, "is_retryable for {code}");
            assert_eq!(err.is_transient(), transient, "is_transient for {code}");
        }
    }

    #[test]
    fn transient_implies_retryable() {
        for e in [
            SrbError::Timeout("t".into()),
            SrbError::Io("io".into()),
            SrbError::ResourceUnavailable("r".into()),
            SrbError::SiteUnavailable("s".into()),
        ] {
            if e.is_transient() {
                assert!(e.is_retryable(), "{} transient but not retryable", e.code());
            }
        }
        // Corruption is neither: a different replica may help a *read*
        // semantically, but blindly retrying hides integrity failures.
        assert!(!SrbError::Corrupt("bad".into()).is_retryable());
        assert!(!SrbError::Corrupt("bad".into()).is_transient());
    }

    #[test]
    fn display_includes_code_and_detail() {
        let e = SrbError::Locked("dataset d3 exclusively locked".into());
        assert_eq!(e.to_string(), "LOCKED: dataset d3 exclusively locked");
        assert_eq!(e.detail(), "dataset d3 exclusively locked");
    }
}

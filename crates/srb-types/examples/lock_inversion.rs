//! Demonstrates the ranked-lock deadlock detector.
//!
//! Run with `cargo run -p srb-types --example lock_inversion`. In a debug
//! build the second acquisition panics with a rank-inversion report; in a
//! release build the checks compile out and the program prints both steps.

use srb_types::sync::{LockRank, Mutex};

fn main() {
    let storage = Mutex::new(LockRank::Storage, "example.storage", ());
    let session = Mutex::new(LockRank::Session, "example.session", ());

    let _inner = storage.lock();
    println!("holding `example.storage` (rank Storage)");
    println!("acquiring `example.session` (rank Session) — inverted order...");
    let _outer = session.lock();
    println!("no checker active (release build): inversion went unnoticed");
}

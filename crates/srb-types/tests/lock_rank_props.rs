//! Property tests for the ranked-lock deadlock detector.
//!
//! The checker is compared against a reference model: acquiring rank `r`
//! is a violation iff some held lock has a strictly lower rank. Random
//! acquisition/release sequences run on several threads at once, so the
//! test also exercises that the held-rank stack is genuinely thread-local
//! (one thread's holdings must never affect another's verdicts).

use proptest::prelude::*;
use srb_types::sync::{self, LockRank, Mutex};

const NAMES: [&str; 8] = [
    "prop.topology",
    "prop.storage",
    "prop.wal",
    "prop.mcat",
    "prop.core",
    "prop.zonelink",
    "prop.zonefed",
    "prop.session",
];

fn rank_of(r: u8) -> LockRank {
    match r {
        0 => LockRank::Topology,
        1 => LockRank::Storage,
        2 => LockRank::Wal,
        3 => LockRank::McatTable,
        4 => LockRank::CoreState,
        5 => LockRank::ZoneLink,
        6 => LockRank::ZoneFed,
        _ => LockRank::Session,
    }
}

/// Replay one acquisition sequence on the current thread, asserting the
/// checker's verdict matches the model at every step. `hold == false`
/// releases the lock immediately, so later steps see a smaller held set.
fn run_model(seq: &[(u8, bool)]) {
    let locks: Vec<Mutex<()>> = seq
        .iter()
        .map(|&(r, _)| Mutex::new(rank_of(r), NAMES[r as usize], ()))
        .collect();
    let mut held_model: Vec<u8> = Vec::new();
    let mut guards = Vec::new();
    for (i, &(r, hold)) in seq.iter().enumerate() {
        let expect_violation = held_model.iter().any(|&h| r > h);
        let verdict = sync::check_acquire(rank_of(r), NAMES[r as usize]);
        match (&verdict, expect_violation) {
            (Err(_), false) => {
                panic!("false positive: rank {r} flagged while holding {held_model:?}")
            }
            (Ok(()), true) => {
                panic!("missed inversion: rank {r} allowed while holding {held_model:?}")
            }
            _ => {}
        }
        if let Err(v) = verdict {
            // The report must implicate a lock that really forbids this.
            assert!(
                (v.held_rank as u8) < r,
                "violation blames rank {:?}",
                v.held_rank
            );
            continue;
        }
        let guard = locks[i].lock();
        if hold {
            guards.push(guard);
            held_model.push(r);
        }
    }
    let held: Vec<u8> = sync::held_ranks().iter().map(|&r| r as u8).collect();
    assert_eq!(held, held_model, "thread-local stack diverged from model");

    // Release in a scrambled (non-LIFO) order; the checker must end empty.
    let mut step = 0usize;
    while !guards.is_empty() {
        let idx = (step * 7 + 3) % guards.len();
        drop(guards.swap_remove(idx));
        step += 1;
    }
    assert!(sync::held_ranks().is_empty(), "ranks leaked after release");
}

/// 1–3 threads' worth of random (rank, hold?) acquisition steps.
fn seqs_strategy() -> impl Strategy<Value = Vec<Vec<(u8, bool)>>> {
    prop::collection::vec(
        prop::collection::vec((0u8..8u8, any::<bool>()), 0..12),
        1..4,
    )
}

fn ranks_strategy() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(0u8..8u8, 0..10)
}

proptest! {
    #[test]
    fn checker_matches_model_across_threads(seqs in seqs_strategy()) {
        // Panics inside scoped threads propagate and fail the case.
        std::thread::scope(|scope| {
            for seq in &seqs {
                let seq = seq.clone();
                scope.spawn(move || run_model(&seq));
            }
        });
    }

    #[test]
    fn descending_or_equal_sequences_never_flag(ranks in ranks_strategy()) {
        let mut ranks = ranks;
        ranks.sort_unstable_by(|a, b| b.cmp(a));
        let seq: Vec<(u8, bool)> = ranks.into_iter().map(|r| (r, true)).collect();
        // Monotonically non-increasing ranks follow the hierarchy, so the
        // model expects zero violations; run_model panics on any flag.
        run_model(&seq);
    }
}

#[test]
fn deliberate_inversion_panics_in_debug_builds() {
    // Acceptance check for the hierarchy itself: holding an inner
    // (storage-rank) lock and then taking an outer (session-rank) lock is
    // the classic deadlock shape; debug builds must abort the acquisition.
    let result = std::thread::spawn(|| {
        let inner = Mutex::new(LockRank::Storage, "prop.inverted.inner", ());
        let outer = Mutex::new(LockRank::Session, "prop.inverted.outer", ());
        let _held = inner.lock();
        let _boom = outer.lock();
    })
    .join();
    let panic = result.expect_err("inverted acquisition must panic");
    let msg = panic.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(
        msg.contains("lock rank inversion") && msg.contains("prop.inverted.inner"),
        "panic message should explain the inversion, got: {msg}"
    );
}

//! Criterion micro-benchmarks over the hot paths behind every experiment:
//! catalog ingest/query, the read path (local, federated, container),
//! authentication, the micro-SQL engine, hashing, paths and LIKE matching.
//!
//! Each group is kept short (small sample counts) so `cargo bench
//! --workspace` completes in minutes; the `exp_*` binaries produce the
//! table-shaped output recorded in EXPERIMENTS.md.

use bench::fixtures::{connect, federated_grid, seed_datasets, single_site_grid};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use srb_core::{IngestOptions, SrbConnection};
use srb_mcat::Query;
use srb_storage::SqlEngine;
use srb_types::{sha256, value::like_match, CompareOp, LogicalPath};

fn bench_catalog(c: &mut Criterion) {
    let mut g = c.benchmark_group("catalog");
    g.sample_size(20);
    let (grid, srv) = single_site_grid();
    let conn = connect(&grid, srv);
    seed_datasets(&conn, 10_000, "fs");
    let mut i = 10_000_000u64;
    g.bench_function("ingest_small_file", |b| {
        b.iter(|| {
            i += 1;
            conn.ingest(
                &format!("/home/bench/data/bench{i}"),
                b"payload",
                IngestOptions::to_resource("fs"),
            )
            .unwrap()
        })
    });
    let q_point = Query::everywhere().and("serial", CompareOp::Eq, 5000i64);
    g.bench_function("query_point_indexed_10k", |b| {
        b.iter(|| conn.query(&q_point).unwrap())
    });
    g.bench_function("query_point_scan_10k", |b| {
        b.iter(|| conn.query_scan(&q_point).unwrap())
    });
    let q_range =
        Query::everywhere()
            .and("score", CompareOp::Ge, 400i64)
            .and("kind", CompareOp::Eq, "image");
    g.bench_function("query_conjunctive_10k", |b| {
        b.iter(|| conn.query(&q_range).unwrap())
    });
    // The E5 six-condition workload, planner vs the pre-overhaul engine,
    // measured at the catalog layer (no permission filtering).
    let q6 = Query::everywhere()
        .and("serial", CompareOp::Lt, 400i64)
        .and("kind", CompareOp::Eq, "image")
        .and("score", CompareOp::Ge, 200i64)
        .and("score", CompareOp::Lt, 900i64)
        .and("serial", CompareOp::Ge, 10i64)
        .and("kind", CompareOp::Ne, "movie");
    g.bench_function("query_6cond_planner_10k", |b| {
        b.iter(|| grid.mcat.query(&q6).unwrap())
    });
    g.bench_function("query_6cond_single_driver_10k", |b| {
        b.iter(|| grid.mcat.query_single_driver(&q6).unwrap())
    });
    // Unordered paging: verification short-circuits at 25 confirmed hits.
    let q_page = Query::everywhere()
        .and("kind", CompareOp::Eq, "image")
        .first_hits(25);
    g.bench_function("query_first25_unordered_10k", |b| {
        b.iter(|| grid.mcat.query(&q_page).unwrap())
    });
    g.finish();
}

fn bench_read_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("read");
    g.sample_size(20);
    let (grid, [s1, _, s3]) = federated_grid();
    let conn = connect(&grid, s1);
    let payload = vec![1u8; 64 << 10];
    conn.ingest(
        "/home/bench/local.bin",
        &payload,
        IngestOptions::to_resource("fs-sdsc"),
    )
    .unwrap();
    conn.ingest(
        "/home/bench/remote.bin",
        &payload,
        IngestOptions::to_resource("fs-ncsa"),
    )
    .unwrap();
    conn.create_container("ct", "ct-store", 64 << 20).unwrap();
    conn.ingest(
        "/home/bench/contained.bin",
        &payload,
        IngestOptions::into_container("ct"),
    )
    .unwrap();
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.bench_function("local_64k", |b| {
        b.iter(|| conn.read("/home/bench/local.bin").unwrap())
    });
    g.bench_function("federated_64k", |b| {
        b.iter(|| conn.read("/home/bench/remote.bin").unwrap())
    });
    g.bench_function("container_member_64k_warm", |b| {
        b.iter(|| conn.read("/home/bench/contained.bin").unwrap())
    });
    let conn3 = SrbConnection::connect(&grid, s3, "bench", "sdsc", "pw").unwrap();
    g.bench_function("relayed_contact_64k", |b| {
        b.iter(|| conn3.read("/home/bench/local.bin").unwrap())
    });
    g.finish();
}

fn bench_auth(c: &mut Criterion) {
    let mut g = c.benchmark_group("auth");
    g.sample_size(30);
    let (grid, srv) = single_site_grid();
    g.bench_function("connect_handshake", |b| {
        b.iter_batched(
            || (),
            |_| {
                SrbConnection::connect(&grid, srv, "bench", "sdsc", "pw")
                    .unwrap()
                    .logout()
            },
            BatchSize::SmallInput,
        )
    });
    let conn = connect(&grid, srv);
    g.bench_function("ticket_validation_via_stat", |b| {
        b.iter(|| conn.stat("/home/bench").ok())
    });
    g.finish();
}

fn bench_sql(c: &mut Criterion) {
    let mut g = c.benchmark_group("microsql");
    g.sample_size(30);
    let e = SqlEngine::new();
    e.execute("CREATE TABLE t (a, b, c)").unwrap();
    for i in 0..1000 {
        e.execute(&format!("INSERT INTO t VALUES ({i}, 'name{i}', {})", i % 7))
            .unwrap();
    }
    g.bench_function("select_where_1k_rows", |b| {
        b.iter(|| {
            e.execute("SELECT a, b FROM t WHERE c = 3 AND a > 500")
                .unwrap()
        })
    });
    g.bench_function("select_order_limit", |b| {
        b.iter(|| {
            e.execute("SELECT a FROM t ORDER BY a DESC LIMIT 10")
                .unwrap()
        })
    });
    g.bench_function("insert_row", |b| {
        let mut i = 1_000_000;
        b.iter(|| {
            i += 1;
            e.execute(&format!("INSERT INTO t VALUES ({i}, 'x', 0)"))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("primitives");
    let data = vec![0xABu8; 64 << 10];
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("sha256_64k", |b| b.iter(|| sha256(&data)));
    g.finish();

    let mut g = c.benchmark_group("primitives2");
    g.bench_function("logical_path_parse", |b| {
        b.iter(|| LogicalPath::parse("/home/sekar/Cultures/Avian Culture/notes.txt").unwrap())
    });
    g.bench_function("like_match", |b| {
        b.iter(|| like_match("%condor%and%", "the condor flies over land"))
    });
    g.finish();
}

fn bench_persistence(c: &mut Criterion) {
    let mut g = c.benchmark_group("persistence");
    g.sample_size(10);
    let (grid, srv) = single_site_grid();
    let conn = connect(&grid, srv);
    seed_datasets(&conn, 2_000, "fs");
    g.bench_function("save_state_2k_datasets", |b| {
        b.iter(|| grid.save_state().unwrap())
    });
    let saved = grid.save_state().unwrap();
    g.throughput(Throughput::Bytes(saved.len() as u64));
    g.bench_function("restore_state_2k_datasets", |b| {
        b.iter_batched(
            || {
                let (g2, _) = single_site_grid();
                g2
            },
            |mut g2| g2.restore_state(&saved).unwrap(),
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

fn bench_languages(c: &mut Criterion) {
    let mut g = c.benchmark_group("languages");
    let script = srb_core::TScript::parse(
        "extract OBJECT keyvalue \"=\"\nextract TELESCOP keyvalue \"=\"\nset Format \"FITS\"\n",
    )
    .unwrap();
    let fits = "SIMPLE  = T\nOBJECT  = 'M31'\nTELESCOP= '2MASS'\nEND\n";
    g.bench_function("tlang_extract", |b| b.iter(|| script.extract(fits)));
    let xml = r#"<m><attr name="species" units="">Vultur gryphus</attr>
        <attr name="wingspan" units="cm">290</attr><Title>Condor</Title></m>"#;
    g.bench_function("xml_meta_parse", |b| {
        b.iter(|| srb_core::xmlmeta::parse_xml_triplets(xml).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_catalog,
    bench_read_paths,
    bench_auth,
    bench_sql,
    bench_primitives,
    bench_persistence,
    bench_languages
);
criterion_main!(benches);

fn main() {
    let datasets = std::env::var("SRB_OBS_DATASETS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let files = std::env::var("SRB_OBS_FILES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    if std::env::args().any(|a| a == "--json") {
        let v = bench::experiments::obs_overhead::run_json(datasets, files);
        let text = serde_json::to_string_pretty(&v).unwrap_or_default();
        if let Err(e) = std::fs::write("BENCH_OBS.json", text) {
            eprintln!("failed to write BENCH_OBS.json: {e}");
            std::process::exit(1);
        }
        println!("wrote BENCH_OBS.json ({datasets} datasets, {files} fan-out files)");
    } else {
        bench::experiments::obs_overhead::run(datasets, files).print();
    }
}

fn main() {
    bench::experiments::e2_containers::run(50).print();
}

fn main() {
    bench::experiments::e8_auth::run().print();
}

fn main() {
    bench::experiments::figures::figure2().print();
}

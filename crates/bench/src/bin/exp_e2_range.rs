fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let n = std::env::var("SRB_E2_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if json { 1_000_000 } else { 100_000 });
    if json {
        let v = bench::experiments::e2_range::run_json(n);
        let text = serde_json::to_string_pretty(&v).unwrap_or_default();
        if let Err(e) = std::fs::write("BENCH_E2.json", text) {
            eprintln!("failed to write BENCH_E2.json: {e}");
            std::process::exit(1);
        }
        println!("wrote BENCH_E2.json (up to {n} datasets)");
    } else {
        bench::experiments::e2_range::run(n).print();
        bench::experiments::e2_range::run_paging(n.min(100_000)).print();
    }
}

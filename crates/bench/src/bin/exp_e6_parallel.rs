fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let files = std::env::var("SRB_E6_FILES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    if json {
        let v = bench::experiments::e6_parallel::run_json(files);
        let text = serde_json::to_string_pretty(&v).unwrap_or_default();
        if let Err(e) = std::fs::write("BENCH_E6.json", text) {
            eprintln!("failed to write BENCH_E6.json: {e}");
            std::process::exit(1);
        }
        println!("wrote BENCH_E6.json ({files} bulk files)");
    } else {
        bench::experiments::e6_parallel::run_scaling().print();
        bench::experiments::e6_parallel::run_policies().print();
        bench::experiments::e6_parallel::run_policies_skewed().print();
        bench::experiments::e6_parallel::run_fanout(files).print();
    }
}

fn main() {
    bench::experiments::e6_parallel::run_scaling().print();
    bench::experiments::e6_parallel::run_policies().print();
    bench::experiments::e6_parallel::run_policies_skewed().print();
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let metrics_json = std::env::args().any(|a| a == "--metrics-json");
    let files = std::env::var("SRB_E6_FILES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    if json {
        let v = bench::experiments::e6_parallel::run_json(files);
        let text = serde_json::to_string_pretty(&v).unwrap_or_default();
        if let Err(e) = std::fs::write("BENCH_E6.json", text) {
            eprintln!("failed to write BENCH_E6.json: {e}");
            std::process::exit(1);
        }
        println!("wrote BENCH_E6.json ({files} bulk files)");
    }
    if metrics_json {
        let v = bench::experiments::e6_parallel::metrics_json(files);
        let text = serde_json::to_string_pretty(&v).unwrap_or_default();
        if let Err(e) = std::fs::write("BENCH_E6_METRICS.json", text) {
            eprintln!("failed to write BENCH_E6_METRICS.json: {e}");
            std::process::exit(1);
        }
        println!("wrote BENCH_E6_METRICS.json (grid metric snapshot)");
    }
    if !json && !metrics_json {
        bench::experiments::e6_parallel::run_scaling().print();
        bench::experiments::e6_parallel::run_policies().print();
        bench::experiments::e6_parallel::run_policies_skewed().print();
        bench::experiments::e6_parallel::run_fanout(files).print();
    }
}

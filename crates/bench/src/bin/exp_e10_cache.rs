fn main() {
    bench::experiments::e10_cache::run().print();
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    if json {
        let v = bench::experiments::zone::run_json();
        let text = serde_json::to_string_pretty(&v).unwrap_or_default();
        if let Err(e) = std::fs::write("BENCH_ZONE.json", text) {
            eprintln!("failed to write BENCH_ZONE.json: {e}");
            std::process::exit(1);
        }
        println!("wrote BENCH_ZONE.json");
    } else {
        bench::experiments::zone::run().print();
    }
}

fn main() {
    bench::experiments::e3_failover::run().print();
}

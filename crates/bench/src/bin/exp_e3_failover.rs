fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let reads = std::env::var("SRB_E3_READS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    if json {
        let v = bench::experiments::e3_failover::run_json(reads);
        let text = serde_json::to_string_pretty(&v).unwrap_or_default();
        if let Err(e) = std::fs::write("BENCH_E3.json", text) {
            eprintln!("failed to write BENCH_E3.json: {e}");
            std::process::exit(1);
        }
        println!("wrote BENCH_E3.json ({reads} reads per arm)");
    } else {
        bench::experiments::e3_failover::run().print();
        bench::experiments::e3_failover::run_flaky(reads).print();
    }
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let mut params = bench::experiments::load::LoadParams::default();
    if let Some(v) = std::env::var("SRB_LOAD_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        params.max_sessions = v;
    }
    if let Some(v) = std::env::var("SRB_LOAD_REQUESTS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        params.requests = v;
    }
    if let Some(v) = std::env::var("SRB_LOAD_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        params.workers = v;
    }
    if json {
        let v = bench::experiments::load::run_json(&params);
        let text = serde_json::to_string_pretty(&v).unwrap_or_default();
        if let Err(e) = std::fs::write("BENCH_LOAD.json", text) {
            eprintln!("failed to write BENCH_LOAD.json: {e}");
            std::process::exit(1);
        }
        println!(
            "wrote BENCH_LOAD.json (max {} sessions, {} requests, {} workers)",
            params.max_sessions, params.requests, params.workers
        );
    } else {
        for t in bench::experiments::load::run_tables(&params) {
            t.print();
        }
    }
}

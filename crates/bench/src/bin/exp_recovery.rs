fn main() {
    let max = std::env::var("SRB_RECOVERY_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    if std::env::args().any(|a| a == "--json") {
        let v = bench::experiments::recovery::run_json(max);
        let text = serde_json::to_string_pretty(&v).unwrap_or_default();
        if let Err(e) = std::fs::write("BENCH_RECOVERY.json", text) {
            eprintln!("failed to write BENCH_RECOVERY.json: {e}");
            std::process::exit(1);
        }
        println!("wrote BENCH_RECOVERY.json (up to {max} datasets)");
    } else {
        bench::experiments::recovery::run(max).print();
    }
}

fn main() {
    bench::experiments::e7_sync_repl::run().print();
}

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    if json {
        let v = bench::experiments::e7_sync_repl::run_json();
        let text = serde_json::to_string_pretty(&v).unwrap_or_default();
        if let Err(e) = std::fs::write("BENCH_E7.json", text) {
            eprintln!("failed to write BENCH_E7.json: {e}");
            std::process::exit(1);
        }
        println!("wrote BENCH_E7.json");
    } else {
        bench::experiments::e7_sync_repl::run().print();
    }
}

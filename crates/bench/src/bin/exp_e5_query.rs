fn main() {
    bench::experiments::e5_query::run(20_000).print();
}

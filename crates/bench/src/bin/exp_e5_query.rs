fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let n = std::env::var("SRB_E5_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if json { 100_000 } else { 20_000 });
    if json {
        let v = bench::experiments::e5_query::run_json(n);
        let text = serde_json::to_string_pretty(&v).unwrap_or_default();
        if let Err(e) = std::fs::write("BENCH_E5.json", text) {
            eprintln!("failed to write BENCH_E5.json: {e}");
            std::process::exit(1);
        }
        println!("wrote BENCH_E5.json ({n} datasets)");
    } else {
        bench::experiments::e5_query::run(n).print();
    }
}

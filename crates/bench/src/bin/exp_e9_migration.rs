fn main() {
    bench::experiments::e9_migration::run().print();
}

//! Run every experiment in DESIGN.md §5 and print all tables.
fn main() {
    let e1_max = std::env::var("SRB_E1_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    bench::experiments::e1_catalog_scale::run(e1_max).print();
    bench::experiments::e2_containers::run(50).print();
    bench::experiments::e2_range::run(50_000).print();
    bench::experiments::e2_range::run_paging(50_000).print();
    bench::experiments::e3_failover::run().print();
    bench::experiments::e4_federation::run().print();
    bench::experiments::e5_query::run(20_000).print();
    bench::experiments::e6_parallel::run_scaling().print();
    bench::experiments::e6_parallel::run_policies().print();
    bench::experiments::e6_parallel::run_policies_skewed().print();
    bench::experiments::e6_parallel::run_fanout(2_000).print();
    bench::experiments::e7_sync_repl::run().print();
    bench::experiments::e8_auth::run().print();
    bench::experiments::e9_migration::run().print();
    bench::experiments::e10_cache::run().print();
    let rec_max = std::env::var("SRB_RECOVERY_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    bench::experiments::recovery::run(rec_max).print();
    bench::experiments::zone::run().print();
    let load = bench::experiments::load::LoadParams {
        max_sessions: 10_000,
        requests: 5_000,
        ..Default::default()
    };
    for t in bench::experiments::load::run_tables(&load) {
        t.print();
    }
    bench::experiments::figures::figure1().print();
    bench::experiments::figures::figure2().print();
}

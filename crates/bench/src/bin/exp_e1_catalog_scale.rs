fn main() {
    let max = std::env::var("SRB_E1_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let json = std::env::args().any(|a| a == "--json");
    let metrics_json = std::env::args().any(|a| a == "--metrics-json");
    if json || metrics_json {
        let (v, metrics) = bench::experiments::e1_catalog_scale::run_json_with_metrics(max);
        if json {
            let text = serde_json::to_string_pretty(&v).unwrap_or_default();
            if let Err(e) = std::fs::write("BENCH_E1.json", text) {
                eprintln!("failed to write BENCH_E1.json: {e}");
                std::process::exit(1);
            }
            println!("wrote BENCH_E1.json (up to {max} datasets)");
        }
        if metrics_json {
            let text = serde_json::to_string_pretty(&metrics).unwrap_or_default();
            if let Err(e) = std::fs::write("BENCH_E1_METRICS.json", text) {
                eprintln!("failed to write BENCH_E1_METRICS.json: {e}");
                std::process::exit(1);
            }
            println!("wrote BENCH_E1_METRICS.json (grid metric snapshot)");
        }
    } else {
        bench::experiments::e1_catalog_scale::run(max).print();
    }
}

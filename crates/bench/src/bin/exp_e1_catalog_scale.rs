fn main() {
    let max = std::env::var("SRB_E1_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    if std::env::args().any(|a| a == "--json") {
        let v = bench::experiments::e1_catalog_scale::run_json(max);
        let text = serde_json::to_string_pretty(&v).unwrap_or_default();
        if let Err(e) = std::fs::write("BENCH_E1.json", text) {
            eprintln!("failed to write BENCH_E1.json: {e}");
            std::process::exit(1);
        }
        println!("wrote BENCH_E1.json (up to {max} datasets)");
    } else {
        bench::experiments::e1_catalog_scale::run(max).print();
    }
}

fn main() {
    let max = std::env::var("SRB_E1_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    bench::experiments::e1_catalog_scale::run(max).print();
}

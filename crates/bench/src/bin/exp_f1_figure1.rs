fn main() {
    bench::experiments::figures::figure1().print();
}

fn main() {
    bench::experiments::e4_federation::run().print();
}

//! Benchmark harness for the srb-grid reproduction.
//!
//! The paper has no quantitative tables, so each experiment here
//! regenerates the evidence for one of its *claims* (DESIGN.md §5 maps
//! experiment ids to claims). Every experiment is a pure function printing
//! a table; the `exp_*` binaries and `run_all_experiments` wrap them.

pub mod experiments;
pub mod fixtures;
pub mod table;

pub use fixtures::{federated_grid, seed_datasets, single_site_grid};
pub use table::Table;

//! Shared grid fixtures and workload generators for the experiments.

use rand::{Rng, SeedableRng};
use srb_core::{Grid, GridBuilder, IngestOptions, SrbConnection};
use srb_net::LinkSpec;
use srb_types::{ServerId, Triplet};

/// One site, one server, one fs resource — catalog-focused experiments.
pub fn single_site_grid() -> (Grid, ServerId) {
    let mut gb = GridBuilder::new();
    let site = gb.site("sdsc");
    let srv = gb.server("srb-sdsc", site);
    gb.fs_resource("fs", srv);
    let grid = gb.build();
    ok(grid.register_user("bench", "sdsc", "pw"));
    (grid, srv)
}

/// The standard three-site federation used across experiments: SDSC with
/// disk+cache, CalTech with an archive, NCSA with disk+archive, metro link
/// SDSC–CalTech, WAN elsewhere.
pub fn federated_grid() -> (Grid, [ServerId; 3]) {
    let mut gb = GridBuilder::new();
    let sdsc = gb.site("sdsc");
    let caltech = gb.site("caltech");
    let ncsa = gb.site("ncsa");
    gb.link(sdsc, caltech, LinkSpec::metro());
    gb.link(sdsc, ncsa, LinkSpec::wan());
    gb.link(caltech, ncsa, LinkSpec::wan());
    let s1 = gb.server("srb-sdsc", sdsc);
    let s2 = gb.server("srb-caltech", caltech);
    let s3 = gb.server("srb-ncsa", ncsa);
    gb.fs_resource("fs-sdsc", s1)
        .cache_resource("cache-sdsc", s1, 512 << 20)
        .archive_resource("hpss-caltech", s2)
        .fs_resource("fs-ncsa", s3)
        .archive_resource("hpss-ncsa", s3)
        .logical_resource("mirror", &["fs-sdsc", "fs-ncsa"])
        .logical_resource("ct-store", &["cache-sdsc", "hpss-caltech"]);
    let grid = gb.build();
    ok(grid.register_user("bench", "sdsc", "pw"));
    (grid, [s1, s2, s3])
}

/// A two-zone federation (`alpha`, `beta`) joined by one peering link of
/// the given spec, periodic WAL checkpoints off so experiments stay on
/// the pure delta-replication path, the `bench` user registered in both
/// zones. Returns the federation and both zone ids.
pub fn zone_federation(
    spec: LinkSpec,
) -> (srb_core::Federation, srb_core::ZoneId, srb_core::ZoneId) {
    let mut fed = srb_core::Federation::new();
    let clock = fed.clock().clone();
    let mkzone = |tag: &str| {
        let mut gb = GridBuilder::new();
        gb.clock(clock.clone());
        let site = gb.site(&format!("site-{tag}"));
        let srv = gb.server(&format!("srb-{tag}"), site);
        gb.fs_resource(&format!("fs-{tag}"), srv);
        let grid = gb.build();
        ok(grid.enable_durability(
            std::sync::Arc::new(srb_storage::LogDevice::new()),
            srb_mcat::WalConfig {
                checkpoint_interval_ns: 0,
            },
        ));
        ok(grid.register_user("bench", "sdsc", "pw"));
        (grid, srv)
    };
    let (grid_a, srv_a) = mkzone("alpha");
    let (grid_b, srv_b) = mkzone("beta");
    let a = ok(fed.add_zone("alpha", grid_a, srv_a));
    let b = ok(fed.add_zone("beta", grid_b, srv_b));
    ok(fed.link(a, b, spec));
    (fed, a, b)
}

/// Connect the bench user to one federation zone.
pub fn zone_connect<'f>(fed: &'f srb_core::Federation, z: srb_core::ZoneId) -> SrbConnection<'f> {
    let zone = ok(fed.zone(z));
    ok(SrbConnection::connect(
        &zone.grid,
        zone.contact(),
        "bench",
        "sdsc",
        "pw",
    ))
}

/// Unwrap an experiment-infrastructure result without `.unwrap()` (the
/// unwrap-budget ratchet covers bench library code too).
pub fn ok<T, E: std::fmt::Display>(r: Result<T, E>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => panic!("experiment op failed: {e}"),
    }
}

/// Average wall-clock microseconds over `reps` runs of `f`.
pub fn time_us(reps: usize, mut f: impl FnMut()) -> f64 {
    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_micros() as f64 / reps.max(1) as f64
}

/// Connect the standard bench user.
pub fn connect<'g>(grid: &'g Grid, srv: ServerId) -> SrbConnection<'g> {
    ok(SrbConnection::connect(grid, srv, "bench", "sdsc", "pw"))
}

/// Ingest `n` small datasets under `/home/bench/data` with three metadata
/// attributes each: a unique `serial`, a low-cardinality `kind`, and a
/// numeric `score`. Returns ingest wall time.
pub fn seed_datasets(conn: &SrbConnection<'_>, n: usize, resource: &str) -> std::time::Duration {
    ok(conn.make_collection("/home/bench/data"));
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let t0 = std::time::Instant::now();
    for i in 0..n {
        ok(conn.ingest(
            &format!("/home/bench/data/obj{i:07}"),
            b"payload",
            IngestOptions::to_resource(resource)
                .with_metadata(Triplet::new("serial", i as i64, ""))
                .with_metadata(Triplet::new("kind", ["image", "text", "movie"][i % 3], ""))
                .with_metadata(Triplet::new("score", rng.gen_range(0i64..1000), "")),
        ));
    }
    t0.elapsed()
}

//! Plain-text table printer for experiment output.

/// A simple aligned table accumulated row by row.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are any Display).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
        self
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = format!("\n== {} ==\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("| ");
            for (c, w) in cells.iter().zip(widths) {
                line.push_str(&format!("{c:>w$} | ", w = w));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('|');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Format nanoseconds as adaptive human units.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "x".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("long-header"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(500), "500 ns");
        assert_eq!(fmt_ns(1_500), "1.50 us");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00 s");
    }
}

//! Recovery — the durability tentpole's numbers: what the WAL costs while
//! the catalog runs, and what redo recovery costs after a crash, across
//! decades of catalog size (10^3 up to `max`; raise `SRB_RECOVERY_MAX` to
//! 1_000_000 for the full paper-scale sweep).
//!
//! Each size runs twice over the identical workload: an in-memory
//! baseline and a WAL-enabled twin (group commit per mutation, one
//! checkpoint at 90% of the load so recovery replays a real tail). The
//! WAL twin then crashes and recovers, and the recovered catalog must be
//! byte-identical to the pre-crash snapshot — the row is only reported if
//! it is.

use crate::fixtures::ok;
use crate::table::Table;
use serde_json::json;
use srb_mcat::{AccessSpec, Mcat, MetaKind, Subject, WalConfig};
use srb_storage::LogDevice;
use srb_types::{ResourceId, SimClock, Triplet};
use std::sync::Arc;
use std::time::Instant;

const NO_CKPT: WalConfig = WalConfig {
    checkpoint_interval_ns: 0,
};

/// One size's measurements.
pub struct Row {
    /// Catalog size (datasets; each carries one metadata row).
    pub datasets: usize,
    /// Per-mutation wall time without a WAL.
    pub base_ingest_us: f64,
    /// Per-mutation wall time with the WAL group-committing each one.
    pub wal_ingest_us: f64,
    /// Simulated durability cost pooled per mutation.
    pub wal_sim_ns_per_op: f64,
    /// Durable records on the device at crash time (tail past the
    /// checkpoint only — the checkpoint pruned the covered prefix).
    pub tail_records: usize,
    /// Wall time of read-back + replay + restore.
    pub recovery_wall_ms: f64,
    /// Simulated recovery cost from the report.
    pub recovery_sim_ms: f64,
    /// Commit groups the replay applied over the checkpoint.
    pub groups_applied: usize,
    /// Recovered catalog byte-identical to the pre-crash snapshot.
    pub identical: bool,
}

/// Load `n` datasets (one metadata triplet each) into a fresh catalog,
/// WAL-enabled or not, and return the catalog plus per-op wall time and
/// pooled simulated durability cost. The WAL twin checkpoints once at 90%
/// so recovery replays a genuine tail, as a live deployment would.
fn load(n: usize, wal: bool) -> (Mcat, Option<Arc<LogDevice>>, f64, u64) {
    let clock = SimClock::new();
    let m = Mcat::new(clock.clone(), "pw");
    let device = if wal {
        let d = Arc::new(LogDevice::new());
        ok(m.enable_wal(d.clone(), NO_CKPT, None));
        Some(d)
    } else {
        None
    };
    let root = m.collections.root();
    let admin = m.admin();
    let ckpt_at = n * 9 / 10;
    let t0 = Instant::now();
    for i in 0..n {
        clock.advance(1_000);
        let d = ok(m.datasets.create(
            &m.ids,
            root,
            &format!("obj{i:07}"),
            "generic",
            admin,
            vec![(
                AccessSpec::Stored {
                    resource: ResourceId(1),
                    phys_path: format!("/p/{i}"),
                },
                512,
                None,
            )],
            clock.now(),
        ));
        m.metadata.add(
            &m.ids,
            Subject::Dataset(d),
            Triplet::new("serial", i as i64, ""),
            MetaKind::UserDefined,
        );
        if wal && i == ckpt_at {
            ok(m.checkpoint_now());
        }
    }
    let us_per_op = t0.elapsed().as_micros() as f64 / n.max(1) as f64;
    let sim_ns = m.wal().map(|w| w.take_pending_ns()).unwrap_or(0);
    (m, device, us_per_op, sim_ns)
}

fn measure(max: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    let mut n = 1_000usize;
    while n <= max {
        let (_base, _, base_ingest_us, _) = load(n, false);
        let (m, device, wal_ingest_us, sim_ns) = load(n, true);
        let device = match device {
            Some(d) => d,
            None => unreachable!("wal twin always has a device"),
        };
        let reference = ok(m.snapshot_json());
        drop(m);
        device.crash();
        let (_, _, tail_records) = device.stats();

        let t0 = Instant::now();
        let (rec, report) = ok(Mcat::recover(SimClock::new(), device, NO_CKPT, None));
        let recovery_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let identical = ok(rec.snapshot_json()) == reference;

        rows.push(Row {
            datasets: n,
            base_ingest_us,
            wal_ingest_us,
            wal_sim_ns_per_op: sim_ns as f64 / (2 * n).max(1) as f64,
            tail_records,
            recovery_wall_ms,
            recovery_sim_ms: report.recovery_ns as f64 / 1e6,
            groups_applied: report.groups_applied,
            identical,
        });
        n *= 10;
    }
    rows
}

/// Human-readable table, sizes 10^3..=`max`.
pub fn run(max: usize) -> Table {
    let mut table = Table::new(
        "Recovery: WAL overhead and crash-recovery cost vs catalog size",
        &[
            "datasets",
            "ingest us (base)",
            "ingest us (wal)",
            "wal sim ns/op",
            "tail records",
            "recover wall ms",
            "recover sim ms",
            "identical",
        ],
    );
    for r in measure(max) {
        table.row(vec![
            r.datasets.to_string(),
            format!("{:.1}", r.base_ingest_us),
            format!("{:.1}", r.wal_ingest_us),
            format!("{:.0}", r.wal_sim_ns_per_op),
            r.tail_records.to_string(),
            format!("{:.1}", r.recovery_wall_ms),
            format!("{:.2}", r.recovery_sim_ms),
            r.identical.to_string(),
        ]);
    }
    table
}

/// Machine-readable rows for `BENCH_RECOVERY.json` (`--json` mode of the
/// `exp_recovery` binary), gated by `cargo xtask benchcheck`.
pub fn run_json(max: usize) -> serde_json::Value {
    let rows: Vec<serde_json::Value> = measure(max)
        .iter()
        .map(|r| {
            json!({
                "datasets": r.datasets,
                "base_ingest_us": r.base_ingest_us,
                "wal_ingest_us": r.wal_ingest_us,
                "wal_sim_ns_per_op": r.wal_sim_ns_per_op,
                "tail_records": r.tail_records,
                "recovery_wall_ms": r.recovery_wall_ms,
                "recovery_sim_ms": r.recovery_sim_ms,
                "groups_applied": r.groups_applied,
                "identical": r.identical,
            })
        })
        .collect();
    json!({ "experiment": "recovery", "rows": rows })
}

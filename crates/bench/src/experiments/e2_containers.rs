//! E2 — containers "decrease latency when accessed over a wide area
//! network" (§2/§3).
//!
//! N small files are read cold from a remote archive twice: once stored
//! individually (one tape staging per file) and once aggregated in a
//! container (one staging for the whole batch, then cache range-reads).
//! Sweeping the file size shows the advantage shrinking as files grow —
//! the crossover the aggregation design targets.

use crate::fixtures::{connect, federated_grid};
use crate::table::Table;
use srb_core::IngestOptions;

/// Read `n_files` of each size both ways; report total simulated time.
pub fn run(n_files: usize) -> Table {
    let mut table = Table::new(
        "E2: container aggregation vs per-file archive access (cold reads over WAN)",
        &[
            "file size",
            "files",
            "per-file total ms",
            "container total ms",
            "speedup",
        ],
    );
    for &size in &[512usize, 4 << 10, 64 << 10, 1 << 20, 8 << 20] {
        let (grid, [s1, ..]) = federated_grid();
        let conn = connect(&grid, s1);
        let payload = vec![0xA5u8; size];
        conn.make_collection("/home/bench/raw").unwrap();
        conn.make_collection("/home/bench/ct").unwrap();
        // Individually archived files.
        for i in 0..n_files {
            conn.ingest(
                &format!("/home/bench/raw/f{i}"),
                &payload,
                IngestOptions::to_resource("hpss-caltech"),
            )
            .unwrap();
        }
        // Containerized files on the cache+archive logical resource.
        conn.create_container("ct", "ct-store", (size * n_files * 2 + 1024) as u64)
            .unwrap();
        for i in 0..n_files {
            conn.ingest(
                &format!("/home/bench/ct/f{i}"),
                &payload,
                IngestOptions::into_container("ct"),
            )
            .unwrap();
        }
        conn.sync_container("ct").unwrap();
        // Go cold: purge the container cache and the archive staging area.
        conn.purge_container_cache("ct").unwrap();
        let hpss = grid.resource_id("hpss-caltech").unwrap();
        grid.driver(hpss)
            .unwrap()
            .as_archive()
            .unwrap()
            .purge_staged();

        let mut per_file_ns = 0u64;
        for i in 0..n_files {
            let (_, r) = conn.read(&format!("/home/bench/raw/f{i}")).unwrap();
            per_file_ns += r.sim_ns;
        }
        let mut container_ns = 0u64;
        for i in 0..n_files {
            let (_, r) = conn.read(&format!("/home/bench/ct/f{i}")).unwrap();
            container_ns += r.sim_ns;
        }
        table.row(vec![
            human_size(size),
            n_files.to_string(),
            format!("{:.1}", per_file_ns as f64 / 1e6),
            format!("{:.1}", container_ns as f64 / 1e6),
            format!("{:.1}x", per_file_ns as f64 / container_ns.max(1) as f64),
        ]);
    }
    table
}

fn human_size(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{} MiB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{} KiB", bytes >> 10)
    } else {
        format!("{bytes} B")
    }
}

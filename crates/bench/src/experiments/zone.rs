//! ZONE — federated zones: cross-zone query latency vs. local, and
//! asynchronous replication lag vs. peering-link latency.
//!
//! For each peering-link class (LAN, metro, WAN) a fresh two-zone
//! federation is built: `alpha` holds the data, `beta` subscribes to the
//! collection subtree and also signs the bench user on for federated
//! queries. Measured per link class, all in simulated time:
//!
//! * the same conjunctive query run locally in `alpha` vs. fanned out
//!   across both zones through a federated connection (the remote leg
//!   pays the link round trip);
//! * the replication exposure window: datasets committed in `alpha`
//!   while the pump runs, worst commit→applied lag at the subscriber;
//! * convergence: publisher and mirror subtree exports byte-identical
//!   once the pump drains.
//!
//! `SRB_ZONE_N` overrides the per-zone dataset count (CI smoke runs use
//! a small N; the defaults are sized for a laptop).

use crate::fixtures::{ok, zone_connect, zone_federation};
use crate::table::Table;
use serde_json::json;
use srb_net::LinkSpec;
use srb_types::CompareOp;

struct Row {
    link: &'static str,
    latency_us: u64,
    local_query_ms: f64,
    federated_query_ms: f64,
    lag_ms: f64,
    pump_rounds: usize,
    converged: bool,
}

fn n_datasets() -> usize {
    std::env::var("SRB_ZONE_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60)
}

fn measure() -> Vec<Row> {
    let n = n_datasets();
    let specs = [
        ("lan", LinkSpec::lan()),
        ("metro", LinkSpec::metro()),
        ("wan", LinkSpec::wan()),
    ];
    let mut rows = Vec::new();
    for (link, spec) in specs {
        let latency_us = spec.latency_us;
        let (fed, a, b) = zone_federation(spec);
        let ca = zone_connect(&fed, a);
        ok(ca.make_collection("/home/bench/data"));
        for i in 0..n {
            ok(ca.ingest(
                &format!("/home/bench/data/obj{i:05}"),
                vec![7u8; 256],
                srb_core::IngestOptions::to_resource("fs-alpha").with_metadata(
                    srb_types::Triplet::new("kind", ["image", "text"][i % 2], ""),
                ),
            ));
        }
        let dst_root = ok(fed.subscribe(b, a, "/home/bench/data"));

        // Query cost: local vs. federated (the remote leg pays the link).
        let q = srb_mcat::Query::everywhere().and("kind", CompareOp::Eq, "image");
        let (local_hits, local_r) = ok(ca.query(&q));
        let fc = ok(fed.connect(a, "bench", "sdsc", "pw"));
        let (fed_hits, fed_r) = ok(fc.query(&q));
        assert!(fed_hits.len() >= local_hits.len());

        // Replication lag: commit more data, then pump in bounded batches
        // until the mirror converges; the report carries the worst
        // commit -> applied exposure window.
        for i in n..n + n / 2 + 1 {
            ok(ca.ingest(
                &format!("/home/bench/data/obj{i:05}"),
                vec![7u8; 256],
                srb_core::IngestOptions::to_resource("fs-alpha"),
            ));
        }
        let mut max_lag_ns = 0u64;
        let mut pump_rounds = 0usize;
        loop {
            let r = ok(fed.pump(16));
            pump_rounds += 1;
            max_lag_ns = max_lag_ns.max(r.max_lag_ns);
            if r.pending == 0 && r.fetched == 0 {
                break;
            }
            if pump_rounds > 10_000 {
                break; // bail out rather than hang a wedged run
            }
        }
        let converged =
            ok(fed.subtree_digest(a, "/home/bench/data")) == ok(fed.subtree_digest(b, &dst_root));

        rows.push(Row {
            link,
            latency_us,
            local_query_ms: local_r.sim_ms(),
            federated_query_ms: fed_r.sim_ms(),
            lag_ms: max_lag_ns as f64 / 1e6,
            pump_rounds,
            converged,
        });
    }
    rows
}

/// Human-readable table.
pub fn run() -> Table {
    let mut table = Table::new(
        "ZONE: cross-zone query latency and replication lag vs link class",
        &[
            "link",
            "latency us",
            "local query ms",
            "federated query ms",
            "max repl lag ms",
            "pump rounds",
            "converged",
        ],
    );
    for r in measure() {
        table.row(vec![
            r.link.to_string(),
            r.latency_us.to_string(),
            format!("{:.3}", r.local_query_ms),
            format!("{:.3}", r.federated_query_ms),
            format!("{:.3}", r.lag_ms),
            r.pump_rounds.to_string(),
            r.converged.to_string(),
        ]);
    }
    table
}

/// `BENCH_ZONE.json` payload for `cargo xtask benchcheck`.
pub fn run_json() -> serde_json::Value {
    let rows: Vec<serde_json::Value> = measure()
        .into_iter()
        .map(|r| {
            json!({
                "link": r.link,
                "latency_us": r.latency_us,
                "local_query_ms": r.local_query_ms,
                "federated_query_ms": r.federated_query_ms,
                "lag_ms": r.lag_ms,
                "pump_rounds": r.pump_rounds,
                "converged": r.converged,
            })
        })
        .collect();
    json!({
        "experiment": "zone",
        "datasets_per_zone": n_datasets(),
        "rows": rows,
    })
}

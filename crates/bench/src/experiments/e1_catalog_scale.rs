//! E1 — "scalable to handle millions of datasets" (§2).
//!
//! Grows the catalog through decades of size and reports per-operation
//! wall-clock costs at each scale: ingest, point query through the
//! multi-index planner, the same point query through the pre-overhaul
//! single-driver engine (the "before" row for `BENCH_E1.json`), and the
//! full-scan baseline. The claim holds if ingest and indexed-query costs
//! stay near-flat while the scan cost grows linearly.

use crate::fixtures::{connect, ok, single_site_grid, time_us};
use crate::table::Table;
use serde_json::json;
use srb_core::IngestOptions;
use srb_mcat::Query;
use srb_types::{CompareOp, Triplet};
use std::time::Instant;

struct Row {
    datasets: usize,
    ingest_us: f64,
    planner_us: f64,
    single_driver_us: f64,
    scan_ms: f64,
    hits: usize,
}

fn measure(max: usize) -> (Vec<Row>, serde_json::Value) {
    let (grid, srv) = single_site_grid();
    let conn = connect(&grid, srv);
    ok(conn.make_collection("/home/bench/data"));
    let mcat = &grid.mcat;
    let mut rows = Vec::new();
    let mut current = 0usize;
    let mut size = 1000usize;
    while size <= max {
        // Grow the catalog to `size`.
        let t0 = Instant::now();
        for i in current..size {
            ok(conn.ingest(
                &format!("/home/bench/data/obj{i:07}"),
                b"x",
                IngestOptions::to_resource("fs")
                    .with_metadata(Triplet::new("serial", i as i64, ""))
                    .with_metadata(Triplet::new("kind", ["image", "text"][i % 2], "")),
            ));
        }
        let grown = size - current;
        let ingest_us = t0.elapsed().as_micros() as f64 / grown.max(1) as f64;
        current = size;

        // Point query on the unique attribute, through all three engines.
        let probe = (size / 2) as i64;
        let q = Query::everywhere().and("serial", CompareOp::Eq, probe);
        let hits = ok(mcat.query(&q)).len();
        assert_eq!(hits, ok(mcat.query_single_driver(&q)).len());
        assert_eq!(hits, ok(mcat.query_scan(&q)).len());
        let planner_us = time_us(100, || {
            ok(mcat.query(&q));
        });
        let single_driver_us = time_us(100, || {
            ok(mcat.query_single_driver(&q));
        });
        let scan_ms = time_us(1, || {
            ok(mcat.query_scan(&q));
        }) / 1000.0;
        rows.push(Row {
            datasets: size,
            ingest_us,
            planner_us,
            single_driver_us,
            scan_ms,
            hits,
        });
        size *= 10;
    }
    let metrics = serde_json::to_value(&grid.metrics_snapshot());
    (rows, metrics)
}

/// Run with catalog sizes up to `max` (e.g. 100_000; override with the
/// SRB_E1_MAX environment variable in the binary).
pub fn run(max: usize) -> Table {
    let mut table = Table::new(
        "E1: catalog scalability (per-op wall time vs catalog size)",
        &[
            "datasets",
            "ingest us/op",
            "planner us",
            "1-driver us",
            "scan query ms",
            "hits",
        ],
    );
    for r in measure(max).0 {
        table.row(vec![
            r.datasets.to_string(),
            format!("{:.1}", r.ingest_us),
            format!("{:.1}", r.planner_us),
            format!("{:.1}", r.single_driver_us),
            format!("{:.2}", r.scan_ms),
            r.hits.to_string(),
        ]);
    }
    table
}

/// The same measurements as machine-readable before/after rows for
/// `BENCH_E1.json` (`--json` mode of the `exp_e1_catalog_scale` binary);
/// `single_driver_us` is the "before" engine, `planner_us` the "after".
pub fn run_json(max: usize) -> serde_json::Value {
    run_json_with_metrics(max).0
}

/// `run_json` plus the grid's full metric snapshot from the same run —
/// the `--metrics-json` flag of the binary writes it next to
/// `BENCH_E1.json` so a seeded run's counters can be diffed offline.
pub fn run_json_with_metrics(max: usize) -> (serde_json::Value, serde_json::Value) {
    let (measured, metrics) = measure(max);
    let rows: Vec<serde_json::Value> = measured
        .iter()
        .map(|r| {
            json!({
                "datasets": r.datasets,
                "ingest_us_per_op": r.ingest_us,
                "planner_us": r.planner_us,
                "single_driver_us": r.single_driver_us,
                "scan_ms": r.scan_ms,
                "hits": r.hits,
                "speedup_vs_single_driver": r.single_driver_us / r.planner_us.max(0.001),
            })
        })
        .collect();
    let v = json!({
        "experiment": "e1_catalog_scale",
        "max_datasets": max,
        "before_engine": "single_driver",
        "after_engine": "planner",
        "rows": rows,
    });
    let metrics = json!({ "experiment": "e1_catalog_scale", "snapshot": metrics });
    (v, metrics)
}

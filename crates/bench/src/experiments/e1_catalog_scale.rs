//! E1 — "scalable to handle millions of datasets" (§2).
//!
//! Grows the catalog through decades of size and reports per-operation
//! wall-clock costs at each scale: ingest, point query (indexed), and the
//! full-scan baseline. The claim holds if ingest and indexed-query costs
//! stay near-flat while the scan cost grows linearly.

use crate::fixtures::{connect, single_site_grid};
use crate::table::Table;
use srb_core::IngestOptions;
use srb_mcat::Query;
use srb_types::{CompareOp, Triplet};
use std::time::Instant;

/// Run with catalog sizes up to `max` (e.g. 100_000; override with the
/// SRB_E1_MAX environment variable in the binary).
pub fn run(max: usize) -> Table {
    let (grid, srv) = single_site_grid();
    let conn = connect(&grid, srv);
    conn.make_collection("/home/bench/data").unwrap();
    let mut table = Table::new(
        "E1: catalog scalability (per-op wall time vs catalog size)",
        &[
            "datasets",
            "ingest us/op",
            "point query us",
            "scan query ms",
            "hits",
        ],
    );
    let mut current = 0usize;
    let mut size = 1000usize;
    while size <= max {
        // Grow the catalog to `size`.
        let t0 = Instant::now();
        for i in current..size {
            conn.ingest(
                &format!("/home/bench/data/obj{i:07}"),
                b"x",
                IngestOptions::to_resource("fs")
                    .with_metadata(Triplet::new("serial", i as i64, ""))
                    .with_metadata(Triplet::new("kind", ["image", "text"][i % 2], "")),
            )
            .unwrap();
        }
        let grown = size - current;
        let ingest_us = t0.elapsed().as_micros() as f64 / grown.max(1) as f64;
        current = size;

        // Point query on the unique attribute (indexed path).
        let probe = (size / 2) as i64;
        let q = Query::everywhere().and("serial", CompareOp::Eq, probe);
        let t1 = Instant::now();
        let reps = 100;
        let mut hits = 0;
        for _ in 0..reps {
            hits = conn.query(&q).unwrap().0.len();
        }
        let point_us = t1.elapsed().as_micros() as f64 / reps as f64;

        // The same query through the full-scan baseline (A1 ablation).
        let t2 = Instant::now();
        let scan_hits = conn.query_scan(&q).unwrap().0.len();
        let scan_ms = t2.elapsed().as_micros() as f64 / 1000.0;
        assert_eq!(hits, scan_hits);

        table.row(vec![
            size.to_string(),
            format!("{ingest_us:.1}"),
            format!("{point_us:.1}"),
            format!("{scan_ms:.2}"),
            hits.to_string(),
        ]);
        size *= 10;
    }
    table
}

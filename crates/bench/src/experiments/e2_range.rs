//! E2 — ordered secondary indexes and resumable cursors: range-query
//! latency vs. catalog size, and page-fetch cost vs. page number.
//!
//! **Range half.** A seeded catalog of `n` datasets (three attributes:
//! unique `serial` Int, unique `tag` Text, random `score`) is queried with
//! two constant-result-size predicates — a bounded numeric range
//! (`serial < 100`) and a literal text prefix (`tag like "t00000%"`) —
//! each answered three ways on the same [`Query`]:
//!
//! - **planner** — ordered-index range scan ([`srb_mcat::Mcat::query`]),
//! - **single-driver** — the pre-overhaul engine kept as an ablation
//!   ([`srb_mcat::Mcat::query_single_driver`]); its driver-index lookup
//!   shares `MetaStore::candidates`, so it inherits the ordered index for
//!   the driver and only pays per-candidate re-verification on top,
//! - **scan** — the index-free full scan ([`srb_mcat::Mcat::query_scan`]),
//!   which verifies the range predicate against every dataset in scope:
//!   the residual-verification baseline for range/prefix predicates.
//!
//! The planner touches O(hits) index entries however large the catalog,
//! so its latency should stay flat in `n` while the residual-verification
//! baseline grows linearly — the `check_e2` gate in `cargo xtask
//! benchcheck` enforces a ≥5× margin at the largest size.
//!
//! **Paging half.** A single collection of `n` entries is walked with
//! [`srb_mcat::Mcat::list_page`] continuation tokens; fetching page `k`
//! from its token is one bounded B-tree range read (O(page)), while the
//! offset emulation — re-listing from the start through page `k`, what an
//! offset-paged server does — costs O(k·page). `query_page` cursors are
//! measured the same way. A determinism digest (two same-seed runs over
//! hits, tokens, and `mcat.*` counters) rides along so `benchcheck` can
//! reject wall-clock leaks into the simulated results.

use crate::fixtures::{ok, single_site_grid, time_us};
use crate::table::Table;
use rand::{Rng, SeedableRng};
use serde_json::json;
use srb_core::Grid;
use srb_mcat::{Mcat, MetaKind, NewDataset, Query, Subject};
use srb_types::{CollectionId, CompareOp, MetaValue, Triplet};

/// Entries per `list_page` window in the paging half.
const PAGE: usize = 100;

/// Seed `/e2` with `n` datasets at the catalog layer — the experiment
/// measures query engines, so replica storage never enters the picture
/// and 10⁶-row catalogs stay cheap to build.
fn seed_catalog(m: &Mcat, n: usize) -> CollectionId {
    let admin = m.admin();
    let now = m.clock.now();
    let coll = ok(m
        .collections
        .create(&m.ids, m.collections.root(), "e2", admin, now));
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    const CHUNK: usize = 10_000;
    let mut lo = 0;
    while lo < n {
        let hi = (lo + CHUNK).min(n);
        let batch: Vec<NewDataset> = (lo..hi)
            .map(|i| NewDataset {
                name: format!("obj{i:07}"),
                replicas: vec![],
            })
            .collect();
        let ids = ok(m
            .datasets
            .create_batch(&m.ids, coll, "generic", admin, batch, now));
        let rows = ids.into_iter().enumerate().flat_map(|(k, d)| {
            let i = lo + k;
            let score: i64 = rng.gen_range(0..1000);
            [
                (
                    Subject::Dataset(d),
                    Triplet::new("serial", i as i64, ""),
                    MetaKind::UserDefined,
                ),
                (
                    Subject::Dataset(d),
                    Triplet::new("tag", MetaValue::Text(format!("t{i:07}")), ""),
                    MetaKind::UserDefined,
                ),
                (
                    Subject::Dataset(d),
                    Triplet::new("score", score, ""),
                    MetaKind::UserDefined,
                ),
            ]
        });
        m.metadata.add_batch(&m.ids, rows.collect::<Vec<_>>());
        lo = hi;
    }
    coll
}

fn scoped(m: &Mcat, coll: CollectionId) -> Query {
    Query::everywhere().under(ok(m.collections.get(coll)).path)
}

/// The two constant-result-size predicates: a bounded numeric range and a
/// literal text prefix (both resolve to 100 hits once `n ≥ 1000`).
fn range_query(m: &Mcat, coll: CollectionId) -> Query {
    scoped(m, coll).and("serial", CompareOp::Lt, 100i64)
}

fn prefix_query(m: &Mcat, coll: CollectionId) -> Query {
    scoped(m, coll).and("tag", CompareOp::Like, "t00000%")
}

struct RangeRow {
    size: usize,
    hits: usize,
    planner_range_us: f64,
    single_driver_range_us: f64,
    scan_range_us: f64,
    planner_prefix_us: f64,
    single_driver_prefix_us: f64,
    scan_prefix_us: f64,
}

/// The size ladder 10³ → `max`, with `max` always included so capped
/// (CI smoke) runs still produce a largest-size row for the gate.
fn sizes(max: usize) -> Vec<usize> {
    let mut sizes: Vec<usize> = [1_000usize, 10_000, 100_000, 1_000_000, 10_000_000]
        .into_iter()
        .filter(|&s| s < max)
        .collect();
    sizes.push(max);
    sizes
}

fn measure_range(max: usize) -> Vec<RangeRow> {
    sizes(max)
        .into_iter()
        .map(|size| {
            let (grid, _srv) = single_site_grid();
            let m = &grid.mcat;
            let coll = seed_catalog(m, size);
            let qr = range_query(m, coll);
            let qp = prefix_query(m, coll);
            let hits = ok(m.query(&qr)).len();
            assert_eq!(hits, ok(m.query_scan(&qr)).len());
            assert_eq!(hits, ok(m.query_single_driver(&qr)).len());
            assert_eq!(ok(m.query(&qp)).len(), ok(m.query_scan(&qp)).len());
            let baseline_reps = if size >= 100_000 { 1 } else { 5 };
            RangeRow {
                size,
                hits,
                planner_range_us: time_us(20, || {
                    ok(m.query(&qr));
                }),
                single_driver_range_us: time_us(baseline_reps, || {
                    ok(m.query_single_driver(&qr));
                }),
                scan_range_us: time_us(baseline_reps, || {
                    ok(m.query_scan(&qr));
                }),
                planner_prefix_us: time_us(20, || {
                    ok(m.query(&qp));
                }),
                single_driver_prefix_us: time_us(baseline_reps, || {
                    ok(m.query_single_driver(&qp));
                }),
                scan_prefix_us: time_us(baseline_reps, || {
                    ok(m.query_scan(&qp));
                }),
            }
        })
        .collect()
}

struct PageRow {
    page: usize,
    cursor_us: f64,
    offset_us: f64,
}

/// Fetch cost of pages 1, middle, and last — from a saved continuation
/// token (cursor) vs. re-listing from the start through that page (the
/// offset emulation).
fn measure_list_paging(m: &Mcat, coll: CollectionId, entries: usize) -> Vec<PageRow> {
    // One full walk collects the token that *starts* each page:
    // `tokens[k]` resumes at page k+1.
    let mut tokens: Vec<Option<String>> = vec![None];
    loop {
        let prev = tokens[tokens.len() - 1].clone();
        let (_, _, next) = ok(m.list_page(coll, prev.as_deref(), PAGE));
        match next {
            Some(t) => tokens.push(Some(t)),
            None => break,
        }
    }
    let pages = tokens.len();
    assert_eq!(pages, entries.div_ceil(PAGE));
    [1, pages.div_ceil(2), pages]
        .into_iter()
        .map(|page| {
            let tok = tokens[page - 1].clone();
            let offset_reps = if page * PAGE >= 50_000 { 3 } else { 20 };
            PageRow {
                page,
                cursor_us: time_us(200, || {
                    ok(m.list_page(coll, tok.as_deref(), PAGE));
                }),
                offset_us: time_us(offset_reps, || {
                    ok(m.list_page(coll, None, page * PAGE));
                }),
            }
        })
        .collect()
}

/// The same page-1/middle/last comparison for `query_page` cursors on a
/// no-condition query (every entry matches). Each call re-orders the
/// candidate set, so both arms share that fixed cost; the cursor arm
/// binary-searches its resume point and builds one page of hits, while
/// the offset arm builds hits for everything up to the requested page.
fn measure_query_paging(m: &Mcat, coll: CollectionId, entries: usize) -> Vec<PageRow> {
    let q = scoped(m, coll);
    let page_rows = (entries / 100).max(1);
    let mut tokens: Vec<Option<String>> = vec![None];
    loop {
        let prev = tokens[tokens.len() - 1].clone();
        let (_, next) = ok(m.query_page(&q, prev.as_deref(), page_rows));
        match next {
            Some(t) => tokens.push(Some(t)),
            None => break,
        }
    }
    let pages = tokens.len();
    [1, pages.div_ceil(2), pages]
        .into_iter()
        .map(|page| {
            let tok = tokens[page - 1].clone();
            PageRow {
                page,
                cursor_us: time_us(10, || {
                    ok(m.query_page(&q, tok.as_deref(), page_rows));
                }),
                offset_us: time_us(3, || {
                    ok(m.query_page(&q, None, page * page_rows));
                }),
            }
        })
        .collect()
}

fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Two same-seed 2000-entry runs: every simulated artifact — hit paths,
/// continuation tokens, `mcat.*` counters — must hash identically. Wall
/// timings are deliberately absent from the digest.
fn determinism_block() -> serde_json::Value {
    const ENTRIES: usize = 2_000;
    let digest = |grid: &Grid| -> u64 {
        let m = &grid.mcat;
        let coll = seed_catalog(m, ENTRIES);
        let mut text = String::new();
        for q in [range_query(m, coll), prefix_query(m, coll)] {
            for h in ok(m.query(&q)) {
                text.push_str(&h.path);
                text.push('\n');
            }
        }
        let mut token: Option<String> = None;
        loop {
            let (_, ds, next) = ok(m.list_page(coll, token.as_deref(), 37));
            for d in &ds {
                text.push_str(&d.name);
            }
            match next {
                Some(t) => {
                    text.push_str(&t);
                    token = Some(t);
                }
                None => break,
            }
        }
        let q = scoped(m, coll).and("serial", CompareOp::Ge, 1_500i64);
        let mut token: Option<String> = None;
        loop {
            let (hits, next) = ok(m.query_page(&q, token.as_deref(), 41));
            for h in &hits {
                text.push_str(&h.path);
            }
            match next {
                Some(t) => {
                    text.push_str(&t);
                    token = Some(t);
                }
                None => break,
            }
        }
        let snap = grid.metrics_snapshot();
        for c in [
            "mcat.range_scan",
            "mcat.cursor_pages",
            "mcat.cursor_invalidated",
        ] {
            text.push_str(&format!("{c}:{}\n", snap.counter(c, "")));
        }
        fnv64(&text)
    };
    let a = digest(&single_site_grid().0);
    let b = digest(&single_site_grid().0);
    json!({
        "runs": 2,
        "entries": ENTRIES,
        "digest_a": format!("{a:016x}"),
        "digest_b": format!("{b:016x}"),
        "identical": a == b,
    })
}

/// Human-readable range table (the `run_all_experiments` view).
pub fn run(max: usize) -> Table {
    let mut table = Table::new(
        &format!("E2: range/prefix query latency vs catalog size (up to {max} datasets)"),
        &[
            "datasets",
            "hits",
            "range idx us",
            "range 1-drv us",
            "range scan us",
            "prefix idx us",
            "prefix scan us",
            "range idx speedup",
        ],
    );
    for r in measure_range(max) {
        table.row(vec![
            r.size.to_string(),
            r.hits.to_string(),
            format!("{:.0}", r.planner_range_us),
            format!("{:.0}", r.single_driver_range_us),
            format!("{:.0}", r.scan_range_us),
            format!("{:.0}", r.planner_prefix_us),
            format!("{:.0}", r.scan_prefix_us),
            format!(
                "{:.1}x",
                r.single_driver_range_us / r.planner_range_us.max(0.001)
            ),
        ]);
    }
    table
}

/// Human-readable paging table: page-fetch cost vs page number.
pub fn run_paging(entries: usize) -> Table {
    let (grid, _srv) = single_site_grid();
    let m = &grid.mcat;
    let coll = seed_catalog(m, entries);
    let mut table = Table::new(
        &format!("E2: page-fetch cost vs page number ({entries} entries, {PAGE}/page)"),
        &["api", "page", "cursor us", "offset us", "offset/cursor"],
    );
    for (api, rows) in [
        ("list_page", measure_list_paging(m, coll, entries)),
        ("query_page", measure_query_paging(m, coll, entries)),
    ] {
        for r in rows {
            table.row(vec![
                api.to_string(),
                r.page.to_string(),
                format!("{:.0}", r.cursor_us),
                format!("{:.0}", r.offset_us),
                format!("{:.1}x", r.offset_us / r.cursor_us.max(0.001)),
            ]);
        }
    }
    table
}

fn page_rows_json(rows: &[PageRow]) -> Vec<serde_json::Value> {
    rows.iter()
        .map(|r| {
            json!({
                "page": r.page,
                "cursor_us": r.cursor_us,
                "offset_us": r.offset_us,
            })
        })
        .collect()
}

/// Machine-readable results for `BENCH_E2.json` (`--json` mode of the
/// `exp_e2_range` binary), gated by `check_e2` in `cargo xtask
/// benchcheck`.
pub fn run_json(max: usize) -> serde_json::Value {
    let range_rows: Vec<serde_json::Value> = measure_range(max)
        .iter()
        .map(|r| {
            json!({
                "size": r.size,
                "hits": r.hits,
                "planner_range_us": r.planner_range_us,
                "single_driver_range_us": r.single_driver_range_us,
                "scan_range_us": r.scan_range_us,
                "planner_prefix_us": r.planner_prefix_us,
                "single_driver_prefix_us": r.single_driver_prefix_us,
                "scan_prefix_us": r.scan_prefix_us,
                "range_speedup_vs_single_driver":
                    r.single_driver_range_us / r.planner_range_us.max(0.001),
                "range_speedup_vs_scan": r.scan_range_us / r.planner_range_us.max(0.001),
            })
        })
        .collect();
    let entries = max.min(100_000);
    let (grid, _srv) = single_site_grid();
    let m = &grid.mcat;
    let coll = seed_catalog(m, entries);
    let paging = json!({
        "entries": entries,
        "page_rows": PAGE,
        "rows": page_rows_json(&measure_list_paging(m, coll, entries)),
    });
    let query_paging = json!({
        "entries": entries,
        "page_rows": (entries / 100).max(1),
        "rows": page_rows_json(&measure_query_paging(m, coll, entries)),
    });
    json!({
        "experiment": "e2_range",
        "max_size": max,
        "before_engine": "scan",
        "after_engine": "planner",
        "range_rows": range_rows,
        "paging": paging,
        "query_paging": query_paging,
        "determinism": determinism_block(),
    })
}

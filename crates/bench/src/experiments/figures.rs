//! F1/F2 — the paper's two figures are MySRB screenshots; we regenerate
//! them as live HTML from a seeded grid and verify their structure.
//!
//! * Figure 1: "SRB Main page showing the Collections with different
//!   objects and Operations" → the split-window browse page.
//! * Figure 2: "File Ingestion Page with Metadata for Dublin Core
//!   Attributes and other user-defined attributes" → the ingest form.

use crate::table::Table;
use mysrb::{MySrb, Request};
use srb_core::{GridBuilder, IngestOptions, RegisterSpec, SrbConnection};
use srb_mcat::{AttrRequirement, Template};
use srb_net::LinkSpec;
use srb_types::{LogicalPath, Triplet};

fn seeded_app_output(page: &str) -> (String, Table) {
    let mut gb = GridBuilder::new();
    let sdsc = gb.site("sdsc");
    let caltech = gb.site("caltech");
    gb.link(sdsc, caltech, LinkSpec::wan());
    let srv = gb.server("srb-sdsc", sdsc);
    let srv2 = gb.server("srb-caltech", caltech);
    gb.fs_resource("unix-sdsc", srv)
        .archive_resource("hpss-caltech", srv2)
        .db_resource("oracle-dlib", srv2)
        .logical_resource("logrsrc1", &["unix-sdsc", "hpss-caltech"]);
    let grid = gb.build();
    grid.register_user("sekar", "sdsc", "demo").unwrap();
    let conn = SrbConnection::connect(&grid, srv, "sekar", "sdsc", "demo").unwrap();
    conn.make_collection("/home/sekar/Avian Culture").unwrap();
    let avian = grid
        .mcat
        .collections
        .resolve(&LogicalPath::parse("/home/sekar/Avian Culture").unwrap())
        .unwrap();
    grid.mcat
        .collections
        .set_requirements(
            avian,
            vec![
                AttrRequirement::mandatory("culture", "culture name"),
                AttrRequirement::vocabulary("medium", &["image", "movie", "text"], "media"),
            ],
        )
        .unwrap();
    conn.ingest(
        "/home/sekar/Avian Culture/condor.jpg",
        b"JPEG",
        IngestOptions::to_resource("logrsrc1")
            .with_type("jpeg image")
            .with_metadata(Triplet::new("culture", "avian", ""))
            .with_metadata(Triplet::new("medium", "image", "")),
    )
    .unwrap();
    {
        let db = grid
            .driver(grid.resource_id("oracle-dlib").unwrap())
            .unwrap();
        db.as_db()
            .unwrap()
            .engine()
            .execute("CREATE TABLE s (x)")
            .unwrap();
    }
    conn.register(
        "/home/sekar/Avian Culture/specimens",
        RegisterSpec::Sql {
            resource: "oracle-dlib".into(),
            sql: "SELECT x FROM s".into(),
            partial: false,
            template: Template::HtmlRel,
        },
        IngestOptions::default()
            .with_metadata(Triplet::new("culture", "avian", ""))
            .with_metadata(Triplet::new("medium", "text", "")),
    )
    .unwrap();
    conn.make_collection("/home/sekar/Avian Culture/movies")
        .unwrap();

    let app = MySrb::new(&grid, srv, 11);
    let resp = app.handle(&Request::post(
        "/login",
        "user=sekar&domain=sdsc&password=demo",
        None,
    ));
    let key = resp
        .headers
        .iter()
        .find(|(k, _)| k == "Set-Cookie")
        .and_then(|(_, v)| v.strip_prefix("mysrb_session="))
        .map(|v| v.split(';').next().unwrap().to_string())
        .unwrap();
    let resp = app.handle(&Request::get(page, Some(&key)));
    assert_eq!(resp.status, 200, "{}", resp.text());
    (resp.text(), Table::new("", &[""]))
}

/// Figure 1: render the collection page and report its structural
/// elements. The HTML is written to `target/figure1.html`.
pub fn figure1() -> Table {
    let (html, _) = seeded_app_output("/browse?path=%2Fhome%2Fsekar%2FAvian%20Culture");
    let _ = std::fs::write("target/figure1.html", &html);
    let mut t = Table::new(
        "F1: MySRB main collection page (paper Figure 1) -> target/figure1.html",
        &["element", "present/count"],
    );
    let checks: Vec<(&str, String)> = vec![
        (
            "split top window (metadata pane)",
            html.contains("split-top").to_string(),
        ),
        (
            "split bottom window (listing)",
            html.contains("split-bottom").to_string(),
        ),
        (
            "collection rows",
            html.matches("collection").count().to_string(),
        ),
        (
            "object rows",
            html.matches("/view?path=").count().to_string(),
        ),
        (
            "operation links per object",
            html.matches(">annotate<").count().to_string(),
        ),
        (
            "ingest operation",
            html.contains("[ingest file]").to_string(),
        ),
        ("query operation", html.contains("[query]").to_string()),
        ("sql object listed", html.contains("specimens").to_string()),
        ("bytes of HTML", html.len().to_string()),
    ];
    for (k, v) in checks {
        t.row(vec![k.to_string(), v]);
    }
    t
}

/// Figure 2: render the ingest form. Written to `target/figure2.html`.
pub fn figure2() -> Table {
    let (html, _) = seeded_app_output("/ingest?coll=%2Fhome%2Fsekar%2FAvian%20Culture");
    let _ = std::fs::write("target/figure2.html", &html);
    let mut t = Table::new(
        "F2: MySRB file-ingestion page (paper Figure 2) -> target/figure2.html",
        &["element", "present/count"],
    );
    let dc_fields = srb_mcat::metadata::DUBLIN_CORE
        .iter()
        .filter(|e| html.contains(&format!("dc_{e}")))
        .count();
    let checks: Vec<(&str, String)> = vec![
        ("Dublin Core fields", format!("{dc_fields}/15")),
        (
            "mandatory attribute marked *",
            html.contains("culture *").to_string(),
        ),
        (
            "restricted vocabulary drop-down",
            html.contains("<select name=\"req_medium\">").to_string(),
        ),
        (
            "default value pre-selected",
            html.contains("<option value=\"image\" selected>")
                .to_string(),
        ),
        (
            "user-defined attribute rows",
            html.matches("meta_name").count().to_string(),
        ),
        ("resource selector", html.contains("logrsrc1").to_string()),
        (
            "container selector",
            html.contains("name=\"container\"").to_string(),
        ),
        ("bytes of HTML", html.len().to_string()),
    ];
    for (k, v) in checks {
        t.row(vec![k.to_string(), v]);
    }
    t
}

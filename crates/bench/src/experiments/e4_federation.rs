//! E4 — location transparency: "users can connect to any SRB server to
//! access data from any other SRB server" (§3), with the forwarding cost
//! that implies.
//!
//! The same object is read through contact servers at increasing network
//! distance from the data: co-located with data and MCAT, co-located with
//! the MCAT only, and remote from both. The simulated latency decomposes
//! into MCAT hops and data hops. Ablation A5 (relay vs direct) falls out of
//! the comparison between rows.

use crate::fixtures::{connect, federated_grid};
use crate::table::Table;
use srb_core::{IngestOptions, SrbConnection};

pub fn run() -> Table {
    let mut table = Table::new(
        "E4: federated access cost vs contact-server placement",
        &[
            "contact",
            "data at",
            "payload",
            "hops",
            "sim ms (1 KiB)",
            "sim ms (1 MiB)",
        ],
    );
    let (grid, [s1, s2, s3]) = federated_grid();
    let conn = connect(&grid, s1);
    for (size, name) in [(1usize << 10, "small"), (1 << 20, "large")] {
        conn.ingest(
            &format!("/home/bench/{name}.bin"),
            vec![7u8; size],
            IngestOptions::to_resource("fs-sdsc"),
        )
        .unwrap();
    }
    // Contact servers at increasing distance; data + MCAT live at SDSC.
    for (label, srv) in [
        ("srb-sdsc (with data+MCAT)", s1),
        ("srb-caltech (metro away)", s2),
        ("srb-ncsa (WAN away)", s3),
    ] {
        let conn = SrbConnection::connect(&grid, srv, "bench", "sdsc", "pw").unwrap();
        let (_, r_small) = conn.read("/home/bench/small.bin").unwrap();
        let (_, r_large) = conn.read("/home/bench/large.bin").unwrap();
        table.row(vec![
            label.to_string(),
            "sdsc".to_string(),
            "1 KiB / 1 MiB".to_string(),
            r_large.hops.to_string(),
            format!("{:.3}", r_small.sim_ms()),
            format!("{:.3}", r_large.sim_ms()),
        ]);
    }
    table
}

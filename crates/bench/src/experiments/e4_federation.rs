//! E4 — location transparency across *federated zones*: "users can
//! connect to any SRB server to access data from any other SRB server"
//! (§3), here stretched across autonomous peered catalogs rather than
//! servers of one grid.
//!
//! A dataset lives in zone `alpha`. The bench user signs on in `alpha`
//! and reaches it locally; a federated connection then reaches the same
//! logical record from `beta` — the query fans out over the peering link
//! and pays its round trip, and a cross-zone registration materializes a
//! remote-replica pointer in `beta`'s catalog with home-zone provenance.
//! Rows sweep the link class, so the table decomposes exactly what the
//! federation boundary costs at each distance.

use crate::fixtures::{ok, zone_connect, zone_federation};
use crate::table::Table;
use srb_mcat::Query;
use srb_net::LinkSpec;
use srb_types::CompareOp;

pub fn run() -> Table {
    let mut table = Table::new(
        "E4: federated access cost vs peering-link distance",
        &[
            "link",
            "latency us",
            "local query ms",
            "federated query ms",
            "cross-zone registration ms",
            "remote rows in beta",
        ],
    );
    for (label, spec) in [
        ("lan (same machine room)", LinkSpec::lan()),
        ("metro (same city)", LinkSpec::metro()),
        ("wan (cross-country)", LinkSpec::wan()),
    ] {
        let latency_us = spec.latency_us;
        let (fed, a, b) = zone_federation(spec);
        let ca = zone_connect(&fed, a);
        ok(ca.make_collection("/home/bench/data"));
        for i in 0..8 {
            ok(ca.ingest(
                &format!("/home/bench/data/obj{i}"),
                vec![7u8; 1024],
                srb_core::IngestOptions::to_resource("fs-alpha")
                    .with_metadata(srb_types::Triplet::new("grade", "hot", "")),
            ));
        }

        let q = Query::everywhere().and("grade", CompareOp::Eq, "hot");
        let (_, local_r) = ok(ca.query(&q));
        let fc = ok(fed.connect(b, "bench", "sdsc", "pw"));
        let (fed_hits, fed_r) = ok(fc.query(&q));
        assert_eq!(fed_hits.len(), 8, "all hits visible across the zone");

        let reg_r = ok(fed.register_remote(a, "/home/bench/data/obj0", b, "/remote/alpha/obj0"));
        let beta_mcat = &ok(fed.zone(b)).grid.mcat;
        let remote_rows = beta_mcat.datasets.count();

        table.row(vec![
            label.to_string(),
            latency_us.to_string(),
            format!("{:.3}", local_r.sim_ms()),
            format!("{:.3}", fed_r.sim_ms()),
            format!("{:.3}", reg_r.sim_ms()),
            remote_rows.to_string(),
        ]);
    }
    table
}

//! E9 — persistence: migrate a collection "onto new storage systems by a
//! recursive directory movement command, without changing the name by
//! which the data is discovered and accessed" (§3).
//!
//! A collection of n objects is migrated between resources; every logical
//! path must read back identical content afterwards, and the table reports
//! the migration cost against the collection size.

use crate::fixtures::{connect, federated_grid};
use crate::table::Table;
use srb_core::IngestOptions;
use std::time::Instant;

pub fn run() -> Table {
    let mut table = Table::new(
        "E9: collection migration onto a new resource",
        &[
            "objects",
            "bytes moved MB",
            "wall ms",
            "sim s",
            "names preserved",
        ],
    );
    for n in [100usize, 1000, 5000] {
        let (grid, [s1, ..]) = federated_grid();
        let conn = connect(&grid, s1);
        conn.make_collection("/home/bench/coll").unwrap();
        let payload = vec![5u8; 4096];
        for i in 0..n {
            conn.ingest(
                &format!("/home/bench/coll/f{i:05}"),
                &payload,
                IngestOptions::to_resource("fs-sdsc"),
            )
            .unwrap();
        }
        let t0 = Instant::now();
        let receipt = conn
            .migrate_collection("/home/bench/coll", "fs-ncsa")
            .unwrap();
        let wall = t0.elapsed();
        // Access continuity: every name still resolves to the same bytes.
        let mut preserved = 0;
        for i in (0..n).step_by((n / 50).max(1)) {
            let (data, _) = conn.read(&format!("/home/bench/coll/f{i:05}")).unwrap();
            if data.len() == payload.len() {
                preserved += 1;
            }
        }
        let old = grid.resource_id("fs-sdsc").unwrap();
        assert_eq!(grid.driver(old).unwrap().driver().used_bytes(), 0);
        table.row(vec![
            n.to_string(),
            format!("{:.1}", receipt.bytes as f64 / 1e6),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            format!("{:.2}", receipt.sim_ns as f64 / 1e9),
            format!("{preserved}/{preserved} sampled"),
        ]);
    }
    table
}

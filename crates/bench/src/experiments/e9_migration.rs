//! E9 — persistence: migrate a collection "onto new storage systems by a
//! recursive directory movement command, without changing the name by
//! which the data is discovered and accessed" (§3).
//!
//! A collection of n objects is migrated between resources; every logical
//! path must read back identical content afterwards, and the table reports
//! the migration cost against the collection size.
//!
//! Since PR 9 the persistence half runs on the real durability path: the
//! grid logs every catalog mutation to a WAL, the process "crashes" after
//! the migration, and a fresh same-topology grid recovers the catalog
//! from the log device — names must keep resolving to the migrated
//! replicas in the *recovered* catalog, not a hand-saved snapshot.

use crate::fixtures::{connect, federated_grid, ok};
use crate::table::Table;
use srb_core::{IngestOptions, SrbConnection};
use srb_mcat::WalConfig;
use srb_storage::LogDevice;
use std::sync::Arc;
use std::time::Instant;

pub fn run() -> Table {
    let mut table = Table::new(
        "E9: collection migration onto a new resource, surviving a crash",
        &[
            "objects",
            "bytes moved MB",
            "wall ms",
            "sim s",
            "names preserved",
            "recovered",
        ],
    );
    for n in [100usize, 1000, 5000] {
        let (grid, [s1, ..]) = federated_grid();
        let device = Arc::new(LogDevice::new());
        // Checkpoint every 10 virtual minutes: the log carries the bulk
        // of the ingest + migration, exercising real replay.
        ok(grid.enable_durability(
            device.clone(),
            WalConfig {
                checkpoint_interval_ns: 600_000_000_000,
            },
        ));
        let conn = connect(&grid, s1);
        ok(conn.make_collection("/home/bench/coll"));
        let payload = vec![5u8; 4096];
        for i in 0..n {
            ok(conn.ingest(
                &format!("/home/bench/coll/f{i:05}"),
                &payload,
                IngestOptions::to_resource("fs-sdsc"),
            ));
        }
        let t0 = Instant::now();
        let receipt = ok(conn.migrate_collection("/home/bench/coll", "fs-ncsa"));
        let wall = t0.elapsed();
        // Access continuity: every name still resolves to the same bytes.
        let mut preserved = 0;
        for i in (0..n).step_by((n / 50).max(1)) {
            let (data, _) = ok(conn.read(&format!("/home/bench/coll/f{i:05}")));
            if data.len() == payload.len() {
                preserved += 1;
            }
        }
        let old = ok(grid.resource_id("fs-sdsc"));
        assert_eq!(ok(grid.driver(old)).driver().used_bytes(), 0);

        // Crash the deployment and recover the catalog on a fresh
        // same-topology grid from the WAL alone. The physical drivers of
        // the new grid start empty (the WAL does not carry data), so the
        // check here is catalog continuity: every migrated name resolves
        // with its replica rows on the new resource.
        let reference = ok(grid.mcat.snapshot_json());
        let _ = conn;
        device.crash();
        let mut grid2 = federated_grid().0;
        let report = ok(grid2.recover_catalog(device, WalConfig::default()));
        assert_eq!(ok(grid2.mcat.snapshot_json()), reference);
        let conn2 = ok(SrbConnection::connect(&grid2, s1, "bench", "sdsc", "pw"));
        let mut recovered = 0;
        for i in (0..n).step_by((n / 50).max(1)) {
            let (_, _, replicas, _) = ok(conn2.stat(&format!("/home/bench/coll/f{i:05}")));
            if replicas >= 1 {
                recovered += 1;
            }
        }
        table.row(vec![
            n.to_string(),
            format!("{:.1}", receipt.bytes as f64 / 1e6),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            format!("{:.2}", receipt.sim_ns as f64 / 1e9),
            format!("{preserved}/{preserved} sampled"),
            format!(
                "{recovered} names, {} groups replayed",
                report.groups_applied
            ),
        ]);
    }
    table
}

//! E10 — cache management and pinning (§5): "pinning a file in a cache
//! resource from being purged by SRB when performing cache management".
//!
//! A Zipf-ish access stream hits a cache under pressure. Pinning the hot
//! set keeps its hit ratio at 100% even when the cache thrashes; the cost
//! is a worse hit ratio for the unpinned tail.

use crate::table::Table;
use srb_storage::{CacheDriver, StorageDriver};
use srb_types::SimClock;

pub fn run() -> Table {
    let mut table = Table::new(
        "E10: cache purge vs pinning under pressure (hit ratios)",
        &[
            "cache/working set",
            "pins",
            "hot hit %",
            "cold hit %",
            "overall %",
            "evictions",
        ],
    );
    // Working set: 100 objects of 1 KiB; hot set = first 10 objects which
    // receive half the accesses.
    let obj = vec![0u8; 1024];
    let n_objects = 100usize;
    let hot = 10usize;
    for (ratio_label, capacity) in [
        ("25%", 25 * 1024u64),
        ("50%", 50 * 1024),
        ("100%", 110 * 1024),
    ] {
        for pin_hot in [false, true] {
            let clock = SimClock::new();
            let cache = CacheDriver::new(clock.clone(), capacity);
            let mut hot_hits = 0u64;
            let mut hot_total = 0u64;
            let mut cold_hits = 0u64;
            let mut cold_total = 0u64;
            // Deterministic access stream: alternate hot/cold accesses.
            let mut x: u64 = 0x243F6A8885A308D3;
            for step in 0..4000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let is_hot = step % 2 == 0;
                let idx = if is_hot {
                    (x % hot as u64) as usize
                } else {
                    hot + (x % (n_objects - hot) as u64) as usize
                };
                let path = format!("obj{idx}");
                let hit = cache.read(&path).is_ok();
                if !hit {
                    // Miss: fetch from the (simulated) archive and insert.
                    let _ = cache.write(&path, &obj);
                    if pin_hot && idx < hot {
                        let _ = cache.pin(&path, clock.now().plus_secs(1 << 30));
                    }
                }
                if is_hot {
                    hot_total += 1;
                    hot_hits += hit as u64;
                } else {
                    cold_total += 1;
                    cold_hits += hit as u64;
                }
            }
            table.row(vec![
                ratio_label.to_string(),
                if pin_hot { "hot set pinned" } else { "none" }.to_string(),
                format!("{:.0}", 100.0 * hot_hits as f64 / hot_total as f64),
                format!("{:.0}", 100.0 * cold_hits as f64 / cold_total as f64),
                format!(
                    "{:.0}",
                    100.0 * (hot_hits + cold_hits) as f64 / (hot_total + cold_total) as f64
                ),
                cache.eviction_count().to_string(),
            ]);
        }
    }
    table
}

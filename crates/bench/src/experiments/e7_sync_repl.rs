//! E7 — logical-resource synchronous replication (§5) vs asynchronous
//! replicate-after-ingest (ablation A4).
//!
//! Ingesting into a logical resource with fan-out k writes k synchronous
//! replicas: ingest cost grows with k but the data is immediately
//! fault-tolerant. The asynchronous alternative returns after one copy and
//! pays the replication later. The table reports both costs and the window
//! of exposure (time during which only one copy exists).

use crate::table::Table;
use srb_core::{GridBuilder, IngestOptions, SrbConnection};
use srb_net::LinkSpec;

pub fn run() -> Table {
    let mut table = Table::new(
        "E7: synchronous (logical resource) vs asynchronous replication (A4)",
        &[
            "fan-out",
            "sync ingest ms",
            "async ingest ms",
            "async total ms",
            "exposure ms",
        ],
    );
    let payload = vec![3u8; 1 << 20];
    for k in 1..=4usize {
        let mut gb = GridBuilder::new();
        let mut servers = Vec::new();
        for i in 0..k {
            let site = gb.site(&format!("site{i}"));
            servers.push(gb.server(&format!("srb{i}"), site));
        }
        gb.default_link(LinkSpec::wan());
        let names: Vec<String> = (0..k).map(|i| format!("fs{i}")).collect();
        for (i, srv) in servers.iter().enumerate() {
            gb.fs_resource(&names[i], *srv);
        }
        let member_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        gb.logical_resource("fanout", &member_refs);
        let grid = gb.build();
        grid.register_user("bench", "sdsc", "pw").unwrap();
        let conn = SrbConnection::connect(&grid, servers[0], "bench", "sdsc", "pw").unwrap();

        // Synchronous: one ingest into the logical resource.
        let r_sync = conn
            .ingest(
                "/home/bench/sync.bin",
                &payload,
                IngestOptions::to_resource("fanout"),
            )
            .unwrap();

        // Asynchronous: ingest one copy, replicate k-1 times afterwards.
        let r_first = conn
            .ingest(
                "/home/bench/async.bin",
                &payload,
                IngestOptions::to_resource("fs0"),
            )
            .unwrap();
        let mut async_total = r_first.clone();
        for name in names.iter().skip(1) {
            let r = conn.replicate("/home/bench/async.bin", name).unwrap();
            async_total.absorb(&r);
        }
        // Exposure: from first-copy-durable until the last replica lands.
        let exposure_ns = async_total.sim_ns - r_first.sim_ns;
        table.row(vec![
            k.to_string(),
            format!("{:.1}", r_sync.sim_ms()),
            format!("{:.1}", r_first.sim_ms()),
            format!("{:.1}", async_total.sim_ms()),
            format!("{:.1}", exposure_ns as f64 / 1e6),
        ]);
    }
    table
}

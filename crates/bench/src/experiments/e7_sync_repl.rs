//! E7 — logical-resource synchronous replication (§5) vs asynchronous
//! replicate-after-ingest (ablation A4), under both fan-out modes.
//!
//! Ingesting into a logical resource with fan-out k writes k synchronous
//! replicas. With the parallel fan-out engine the k legs overlap, so the
//! synchronous ingest costs max-of-legs simulated time instead of the
//! sequential sum — the paper's synchronous-replication penalty mostly
//! disappears. The asynchronous alternative still returns after one copy
//! and pays the replication later; the table keeps its cost and the
//! window of exposure (time during which only one copy exists).

use crate::fixtures::ok;
use crate::table::Table;
use bytes::Bytes;
use serde_json::json;
use srb_core::{FanoutMode, GridBuilder, IngestOptions, SrbConnection};
use srb_net::LinkSpec;

/// One fan-out width measured under both modes.
pub struct SyncRow {
    /// Synchronous fan-out width (logical-resource member count).
    pub k: usize,
    /// Sequential-mode synchronous ingest, simulated ms.
    pub sync_seq_ms: f64,
    /// Parallel-mode synchronous ingest, simulated ms.
    pub sync_par_ms: f64,
    /// Asynchronous first-copy ingest, simulated ms.
    pub async_first_ms: f64,
    /// Asynchronous ingest + k-1 replicates, simulated ms.
    pub async_total_ms: f64,
    /// Exposure window (one durable copy only), simulated ms.
    pub exposure_ms: f64,
}

fn sync_ingest_ms(k: usize, payload: &Bytes, mode: FanoutMode) -> f64 {
    let mut gb = GridBuilder::new();
    let mut servers = Vec::new();
    for i in 0..k {
        let site = gb.site(&format!("site{i}"));
        servers.push(gb.server(&format!("srb{i}"), site));
    }
    gb.default_link(LinkSpec::wan());
    let names: Vec<String> = (0..k).map(|i| format!("fs{i}")).collect();
    for (i, srv) in servers.iter().enumerate() {
        gb.fs_resource(&names[i], *srv);
    }
    let member_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    gb.logical_resource("fanout", &member_refs);
    let grid = gb.build();
    ok(grid.register_user("bench", "sdsc", "pw"));
    let mut conn = ok(SrbConnection::connect(
        &grid, servers[0], "bench", "sdsc", "pw",
    ));
    conn.set_fanout_mode(mode);
    ok(conn.ingest(
        "/home/bench/sync.bin",
        payload.clone(),
        IngestOptions::to_resource("fanout"),
    ))
    .sim_ms()
}

/// Measure every fan-out width 1..=4 under both modes plus the
/// asynchronous alternative.
pub fn measure() -> Vec<SyncRow> {
    let payload = Bytes::from(vec![3u8; 1 << 20]);
    (1..=4usize)
        .map(|k| {
            let sync_seq_ms = sync_ingest_ms(k, &payload, FanoutMode::Sequential);
            let sync_par_ms = sync_ingest_ms(k, &payload, FanoutMode::Parallel);

            // Asynchronous: ingest one copy, replicate k-1 times after.
            let mut gb = GridBuilder::new();
            let mut servers = Vec::new();
            for i in 0..k {
                let site = gb.site(&format!("site{i}"));
                servers.push(gb.server(&format!("srb{i}"), site));
            }
            gb.default_link(LinkSpec::wan());
            let names: Vec<String> = (0..k).map(|i| format!("fs{i}")).collect();
            for (i, srv) in servers.iter().enumerate() {
                gb.fs_resource(&names[i], *srv);
            }
            let grid = gb.build();
            ok(grid.register_user("bench", "sdsc", "pw"));
            let conn = ok(SrbConnection::connect(
                &grid, servers[0], "bench", "sdsc", "pw",
            ));
            let r_first = ok(conn.ingest(
                "/home/bench/async.bin",
                payload.clone(),
                IngestOptions::to_resource("fs0"),
            ));
            let mut async_total = r_first.clone();
            for name in names.iter().skip(1) {
                let r = ok(conn.replicate("/home/bench/async.bin", name));
                async_total.absorb(&r);
            }
            let exposure_ns = async_total.sim_ns - r_first.sim_ns;
            SyncRow {
                k,
                sync_seq_ms,
                sync_par_ms,
                async_first_ms: r_first.sim_ms(),
                async_total_ms: async_total.sim_ms(),
                exposure_ms: exposure_ns as f64 / 1e6,
            }
        })
        .collect()
}

pub fn run() -> Table {
    let mut table = Table::new(
        "E7: synchronous replication, parallel vs sequential fan-out, vs async (A4)",
        &[
            "fan-out",
            "sync seq ms",
            "sync par ms",
            "sync speedup",
            "async ingest ms",
            "async total ms",
            "exposure ms",
        ],
    );
    for r in measure() {
        table.row(vec![
            r.k.to_string(),
            format!("{:.1}", r.sync_seq_ms),
            format!("{:.1}", r.sync_par_ms),
            format!("{:.2}x", r.sync_seq_ms / r.sync_par_ms.max(1e-9)),
            format!("{:.1}", r.async_first_ms),
            format!("{:.1}", r.async_total_ms),
            format!("{:.1}", r.exposure_ms),
        ]);
    }
    table
}

/// Machine-checkable artifact for `cargo xtask benchcheck`.
pub fn run_json() -> serde_json::Value {
    let rows: Vec<serde_json::Value> = measure()
        .iter()
        .map(|r| {
            json!({
                "k": r.k,
                "sync_seq_ms": r.sync_seq_ms,
                "sync_par_ms": r.sync_par_ms,
                "sync_speedup": r.sync_seq_ms / r.sync_par_ms.max(1e-9),
                "async_first_ms": r.async_first_ms,
                "async_total_ms": r.async_total_ms,
                "exposure_ms": r.exposure_ms,
            })
        })
        .collect();
    json!({
        "experiment": "e7_sync_repl",
        "before_engine": "sequential_fanout",
        "after_engine": "parallel_fanout",
        "rows": rows,
    })
}

//! LOAD — the million-session front-end under a seeded open workload.
//!
//! N simulated browser clients drive the full MySRB request path
//! (`MySrb::handle`) with a deterministic arrival process: per-client
//! think times drawn from counter-indexed splitmix64 streams on a virtual
//! timeline, and a mixed browse/view/query/ingest scenario mix (the E6
//! driver generalized to whole web requests). Latency is reported two
//! ways: simulated grid nanoseconds from the existing `web.request_ns`
//! srb-obs histograms (host-independent, byte-identical under seed) and
//! wall nanoseconds from harness-local histograms (host-dependent; only
//! gated when this machine has real parallelism).
//!
//! Four blocks feed `BENCH_LOAD.json`:
//! * `rows` — the scenario mix at 10⁴–10⁶ live sessions (sharded +
//!   pooled front-end), p50/p95/p99 per route.
//! * `ablation` — a churn-heavy mix at 10⁵ sessions: sharded session
//!   store + pooled connects vs. the single-lock, unpooled front-end.
//! * `determinism` — the same seeded run executed twice on one worker;
//!   the simulated results and the full metrics snapshot must hash
//!   identically.
//! * `sweep` — abandoned-session reclamation: every session a client
//!   walked away from is reclaimed by the bounded amortized sweep.

use crate::fixtures::ok;
use crate::table::Table;
use mysrb::urlenc::encode;
use mysrb::{MySrb, MySrbConfig, Request, SessionConfig};
use serde_json::json;
use srb_core::{Grid, GridBuilder, IngestOptions, SrbConnection};
use srb_types::{splitmix64, ServerId, Triplet};
use std::collections::BTreeMap;
use std::time::Instant;

pub use super::e6_parallel::real_workers;

/// Web-session TTL re-exported for the sweep block.
use mysrb::WEB_SESSION_TTL_SECS;

/// Knobs (env-capped in CI; see `exp_load`).
#[derive(Clone, Copy, Debug)]
pub struct LoadParams {
    /// Cap on live sessions (rows above the cap are skipped).
    pub max_sessions: usize,
    /// Measured requests per row.
    pub requests: usize,
    /// Worker threads driving requests.
    pub workers: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for LoadParams {
    fn default() -> Self {
        LoadParams {
            max_sessions: 1_000_000,
            requests: 50_000,
            workers: real_workers(),
            seed: 0x10ad,
        }
    }
}

/// Registered users backing the simulated clients (clients map onto
/// users round-robin; the paper's "millions of users" share far fewer
/// concurrently-hot accounts than sessions).
const USERS: usize = 512;

/// The scenario mix, in percent: browse/view/query/ingest plus a
/// logout+login churn component (the churn is what separates pooled from
/// unpooled connects).
#[derive(Clone, Copy)]
struct Mix {
    browse: u64,
    view: u64,
    query: u64,
    ingest: u64,
    churn: u64,
}

const STANDARD_MIX: Mix = Mix {
    browse: 45,
    view: 25,
    query: 20,
    ingest: 10,
    churn: 0,
};

/// Ablation mix: 30% of requests re-sign-on, so the session-create and
/// connect paths — exactly what sharding + pooling optimize — stay hot.
const CHURN_MIX: Mix = Mix {
    browse: 40,
    view: 15,
    query: 10,
    ingest: 5,
    churn: 30,
};

const OPS: [&str; 5] = ["browse", "view", "query", "ingest", "churn"];

fn pick_op(mix: &Mix, coin: u64) -> usize {
    let c = coin % 100;
    let mut acc = 0;
    for (i, w) in [mix.browse, mix.view, mix.query, mix.ingest, mix.churn]
        .into_iter()
        .enumerate()
    {
        acc += w;
        if c < acc {
            return i;
        }
    }
    0
}

/// One site, observability on, `USERS` accounts each with a seeded home
/// collection `/home/u{j}/c` holding two metadata-tagged datasets.
fn load_grid() -> (Grid, ServerId) {
    let mut gb = GridBuilder::new();
    let site = gb.site("sdsc");
    let srv = gb.server("srb", site);
    gb.fs_resource("fs", srv);
    let grid = gb.build();
    for j in 0..USERS {
        ok(grid.register_user(&format!("u{j}"), "load", "pw"));
    }
    for j in 0..USERS {
        let conn = ok(SrbConnection::connect_pooled(
            &grid,
            srv,
            &format!("u{j}"),
            "load",
            "pw",
        ));
        let home = format!("/home/u{j}/c");
        ok(conn.make_collection(&home));
        for d in 0..2 {
            ok(conn.ingest(
                &format!("{home}/d{d}"),
                b"seed payload".as_slice(),
                IngestOptions::to_resource("fs")
                    .with_metadata(Triplet::new("kind", "text", ""))
                    .with_metadata(Triplet::new("score", (j * 2 + d) as i64, "")),
            ));
        }
    }
    (grid, srv)
}

fn login_body(user: usize) -> String {
    format!("user=u{user}&domain=load&password=pw")
}

fn session_key(app: &MySrb<'_>, user: usize) -> String {
    let resp = app.handle(&Request::post("/login", &login_body(user), None));
    assert_eq!(resp.status, 303, "login must succeed for u{user}");
    resp.headers
        .iter()
        .find(|(k, _)| k == "Set-Cookie")
        .and_then(|(_, v)| v.strip_prefix("mysrb_session="))
        .and_then(|v| v.split(';').next())
        .map(|v| v.to_string())
        .unwrap_or_else(|| panic!("login response carried no session cookie"))
}

/// Latency + virtual-timeline stats for one route.
#[derive(Default, Clone)]
struct RouteStats {
    count: u64,
    wall_p50_ns: u64,
    wall_p95_ns: u64,
    wall_p99_ns: u64,
    sim_p50_ns: u64,
    sim_p95_ns: u64,
    sim_p99_ns: u64,
}

/// Everything one measured configuration produces.
struct RunResult {
    sessions: usize,
    requests: usize,
    login_wall_ms: f64,
    req_wall_ms: f64,
    kreq_s: f64,
    /// Requests per *virtual* second of the open arrival process.
    virtual_rps: f64,
    routes: BTreeMap<&'static str, RouteStats>,
    logins_total: u64,
    pool_hits: u64,
    pool_misses: u64,
    live_end: usize,
}

/// Drive `requests` mixed requests from `sessions` live clients through
/// a fresh grid + app with the given front-end configuration.
fn run_workload(
    sessions: usize,
    requests: usize,
    workers: usize,
    shards: usize,
    pooled: bool,
    mix: &Mix,
    seed: u64,
) -> RunResult {
    let (grid, srv) = load_grid();
    let app = MySrb::with_config(
        &grid,
        srv,
        seed,
        MySrbConfig {
            session: SessionConfig {
                shards,
                sweep_budget: 8,
            },
            pooled_login: pooled,
        },
    );
    let (h0, m0) = grid.pool.stats();

    let workers = workers.max(1).min(sessions.max(1));
    // Contiguous client partition per worker.
    let bounds: Vec<(usize, usize)> = (0..workers)
        .map(|w| (sessions * w / workers, sessions * (w + 1) / workers))
        .collect();

    // Phase 1: the login storm — every client signs on.
    let t0 = Instant::now();
    let mut worker_keys: Vec<Vec<String>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = bounds
            .iter()
            .map(|&(lo, hi)| {
                let app = &app;
                scope.spawn(move || (lo..hi).map(|c| session_key(app, c % USERS)).collect())
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(keys) => worker_keys.push(keys),
                Err(_) => panic!("login worker panicked"),
            }
        }
    });
    let login_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Phase 2: the open-workload request storm. Each worker owns its
    // clients' keys; arrivals advance per-client virtual think-time
    // clocks (uniform 0.5–1.5 virtual seconds, integer ns, so the
    // virtual timeline is bit-identical on every host).
    let wall_hists: Vec<srb_obs::Histogram> = (0..OPS.len())
        .map(|_| srb_obs::Histogram::default())
        .collect();
    let per_worker = requests / workers;
    let t0 = Instant::now();
    let mut makespan_ns = 0u64;
    let mut churn_logins = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = worker_keys
            .iter_mut()
            .zip(&bounds)
            .enumerate()
            .map(|(w, (keys, &(lo, hi)))| {
                let app = &app;
                let wall_hists = &wall_hists;
                scope.spawn(move || {
                    let span = (hi - lo).max(1);
                    let mut vt: Vec<u64> = vec![0; span];
                    let mut churned = 0u64;
                    for r in 0..per_worker {
                        let n = ((w as u64) << 40) | r as u64;
                        let ci = (splitmix64(seed ^ 0xc11e47, n) as usize) % span;
                        let user = (lo + ci) % USERS;
                        let op = pick_op(mix, splitmix64(seed ^ 0x0901, n));
                        vt[ci] += 500_000_000 + splitmix64(seed ^ 0x7417, n) % 1_000_000_000;
                        let home = format!("/home/u{user}/c");
                        let key = keys[ci].as_str();
                        let t = Instant::now();
                        match OPS[op] {
                            "browse" => {
                                let req = Request::get(
                                    &format!("/browse?path={}", encode(&home)),
                                    Some(key),
                                );
                                assert_eq!(app.handle(&req).status, 200, "browse");
                            }
                            "view" => {
                                let req = Request::get(
                                    &format!(
                                        "/view?path={}",
                                        encode(&format!("{home}/d{}", r % 2))
                                    ),
                                    Some(key),
                                );
                                assert_eq!(app.handle(&req).status, 200, "view");
                            }
                            "query" => {
                                let body =
                                    format!("scope={}&attr=kind&op=%3D&value=text", encode(&home));
                                let req = Request::post("/query", &body, Some(key));
                                assert_eq!(app.handle(&req).status, 200, "query");
                            }
                            "ingest" => {
                                let body = format!(
                                    "coll={}&name=g{w}x{r}&resource=fs&content=fresh",
                                    encode(&home)
                                );
                                let req = Request::post("/ingest", &body, Some(key));
                                assert_eq!(app.handle(&req).status, 200, "ingest");
                            }
                            _ => {
                                let out = app.handle(&Request::get("/logout", Some(key)));
                                assert_eq!(out.status, 303, "logout");
                                keys[ci] = session_key(app, user);
                                churned += 1;
                            }
                        }
                        wall_hists[op].observe(t.elapsed().as_nanos() as u64);
                    }
                    (vt.into_iter().max().unwrap_or(0), churned)
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok((vmax, churned)) => {
                    makespan_ns = makespan_ns.max(vmax);
                    churn_logins += churned;
                }
                Err(_) => panic!("request worker panicked"),
            }
        }
    });
    let req_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let done = (per_worker * workers) as f64;

    // Merge wall + sim views per route.
    let snapshot = grid.metrics_snapshot();
    let route_label = |op: &str| match op {
        "browse" => "/browse",
        "view" => "/view",
        "query" => "/query",
        "ingest" => "/ingest",
        _ => "/login",
    };
    let mut routes = BTreeMap::new();
    for (i, op) in OPS.iter().enumerate() {
        let wall = wall_hists[i].snapshot();
        if wall.count == 0 {
            continue;
        }
        let (sim_p50, sim_p95, sim_p99) = snapshot
            .histograms
            .get("web.request_ns")
            .and_then(|fam| fam.get(route_label(op)))
            .map_or((0, 0, 0), |s| (s.p50, s.p95, s.p99));
        routes.insert(
            *op,
            RouteStats {
                count: wall.count,
                wall_p50_ns: wall.p50,
                wall_p95_ns: wall.p95,
                wall_p99_ns: wall.p99,
                sim_p50_ns: sim_p50,
                sim_p95_ns: sim_p95,
                sim_p99_ns: sim_p99,
            },
        );
    }

    let (h1, m1) = grid.pool.stats();
    RunResult {
        sessions,
        requests: per_worker * workers,
        login_wall_ms,
        req_wall_ms,
        kreq_s: done / (req_wall_ms / 1e3).max(1e-9) / 1e3,
        virtual_rps: done / (makespan_ns as f64 / 1e9).max(1e-9),
        routes,
        logins_total: sessions as u64 + churn_logins,
        pool_hits: h1 - h0,
        pool_misses: m1 - m0,
        live_end: app.sessions().count(),
    }
}

fn routes_json(routes: &BTreeMap<&'static str, RouteStats>) -> serde_json::Value {
    serde_json::Value::Map(
        routes
            .iter()
            .map(|(op, s)| {
                (
                    op.to_string(),
                    json!({
                        "count": s.count,
                        "wall_p50_ns": s.wall_p50_ns,
                        "wall_p95_ns": s.wall_p95_ns,
                        "wall_p99_ns": s.wall_p99_ns,
                        "sim_p50_ns": s.sim_p50_ns,
                        "sim_p95_ns": s.sim_p95_ns,
                        "sim_p99_ns": s.sim_p99_ns,
                    }),
                )
            })
            .collect(),
    )
}

/// The simulated/deterministic face of a run — everything here must be
/// byte-identical across same-seed single-worker replays (wall numbers
/// are deliberately absent).
fn sim_fields(r: &RunResult) -> serde_json::Value {
    let routes = serde_json::Value::Map(
        r.routes
            .iter()
            .map(|(op, s)| {
                (
                    op.to_string(),
                    json!({
                        "count": s.count,
                        "sim_p50_ns": s.sim_p50_ns,
                        "sim_p95_ns": s.sim_p95_ns,
                        "sim_p99_ns": s.sim_p99_ns,
                    }),
                )
            })
            .collect(),
    );
    json!({
        "sessions": r.sessions,
        "requests": r.requests,
        "virtual_rps_millis": (r.virtual_rps * 1e3) as u64,
        "routes": routes,
        "logins_total": r.logins_total,
        "pool_hits": r.pool_hits,
        "pool_misses": r.pool_misses,
        "live_end": r.live_end,
    })
}

fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Session-count scaling rows: 10⁴ → 10⁶ live sessions, standard mix,
/// sharded + pooled front-end.
fn scaling_rows(p: &LoadParams) -> Vec<RunResult> {
    let mut sizes: Vec<usize> = [10_000usize, 100_000, 1_000_000]
        .into_iter()
        .filter(|&s| s <= p.max_sessions)
        .collect();
    if sizes.is_empty() {
        // Heavily capped (CI smoke) run: keep one row at the cap so the
        // artifact shape is stable.
        sizes.push(p.max_sessions.max(1));
    }
    sizes
        .into_iter()
        .map(|s| {
            run_workload(
                s,
                p.requests,
                p.workers,
                SessionConfig::default().shards,
                true,
                &STANDARD_MIX,
                p.seed,
            )
        })
        .collect()
}

/// The ablation pair at 10⁵ sessions (capped): sharded + pooled vs. the
/// single-lock, unpooled front-end under the churn-heavy mix.
fn ablation_pair(p: &LoadParams) -> (RunResult, RunResult) {
    let sessions = 100_000usize.min(p.max_sessions);
    let requests = p.requests;
    let sharded = run_workload(
        sessions,
        requests,
        p.workers,
        SessionConfig::default().shards,
        true,
        &CHURN_MIX,
        p.seed,
    );
    let single = run_workload(sessions, requests, p.workers, 1, false, &CHURN_MIX, p.seed);
    (sharded, single)
}

/// Two identical seeded single-worker runs; their simulated results and
/// full metric snapshots must hash identically.
fn determinism_block(p: &LoadParams) -> serde_json::Value {
    let small = LoadParams {
        max_sessions: p.max_sessions.min(2_000),
        requests: p.requests.min(5_000),
        workers: 1,
        seed: p.seed,
    };
    let digest = || -> u64 {
        let (grid, srv) = load_grid();
        let app = MySrb::with_config(&grid, srv, small.seed, MySrbConfig::default());
        let keys: Vec<String> = (0..small.max_sessions)
            .map(|c| session_key(&app, c % USERS))
            .collect();
        let mut vt = 0u64;
        for r in 0..small.requests {
            let n = r as u64;
            let ci = (splitmix64(small.seed ^ 0xc11e47, n) as usize) % keys.len();
            let user = ci % USERS;
            let op = pick_op(&STANDARD_MIX, splitmix64(small.seed ^ 0x0901, n));
            vt += 500_000_000 + splitmix64(small.seed ^ 0x7417, n) % 1_000_000_000;
            let home = format!("/home/u{user}/c");
            let key = keys[ci].as_str();
            let status = match OPS[op] {
                "view" => {
                    app.handle(&Request::get(
                        &format!("/view?path={}", encode(&format!("{home}/d{}", r % 2))),
                        Some(key),
                    ))
                    .status
                }
                "query" => {
                    app.handle(&Request::post(
                        "/query",
                        &format!("scope={}&attr=kind&op=%3D&value=text", encode(&home)),
                        Some(key),
                    ))
                    .status
                }
                "ingest" => {
                    app.handle(&Request::post(
                        "/ingest",
                        &format!(
                            "coll={}&name=g0x{r}&resource=fs&content=fresh",
                            encode(&home)
                        ),
                        Some(key),
                    ))
                    .status
                }
                _ => {
                    app.handle(&Request::get(
                        &format!("/browse?path={}", encode(&home)),
                        Some(key),
                    ))
                    .status
                }
            };
            assert_eq!(status, 200);
        }
        let text = format!(
            "{}\nvt:{vt}\nkeys:{}",
            grid.metrics_snapshot().render_text(),
            keys.join(",")
        );
        fnv64(&text)
    };
    let a = digest();
    let b = digest();
    json!({
        "runs": 2,
        "sessions": small.max_sessions,
        "requests": small.requests,
        "digest_a": format!("{a:016x}"),
        "digest_b": format!("{b:016x}"),
        "identical": a == b,
    })
}

/// Abandoned-session reclamation: create sessions, let every one of them
/// expire unpresented, and drain them with the bounded sweep.
fn sweep_block(p: &LoadParams) -> serde_json::Value {
    let sessions = 50_000usize.min(p.max_sessions);
    let (grid, srv) = load_grid();
    let app = MySrb::with_config(&grid, srv, p.seed, MySrbConfig::default());
    for c in 0..sessions {
        let _ = session_key(&app, c % USERS);
    }
    let live_before = app.sessions().count();
    grid.clock
        .advance((WEB_SESSION_TTL_SECS + 1) * 1_000_000_000);
    let mut reclaimed = 0usize;
    let mut calls = 0usize;
    while reclaimed < sessions && calls < sessions {
        reclaimed += app.sessions().sweep_expired(1024);
        calls += 1;
    }
    let gauge = grid.metrics_snapshot().gauge("web.session_live", "all");
    json!({
        "sessions": sessions,
        "live_before_sweep": live_before,
        "reclaimed": reclaimed,
        "sweep_calls": calls,
        "live_after": app.sessions().count(),
        "live_gauge_after": gauge,
    })
}

fn row_json(r: &RunResult, shards: usize, pooled: bool) -> serde_json::Value {
    json!({
        "sessions": r.sessions,
        "requests": r.requests,
        "shards": shards,
        "pooled": pooled,
        "login_wall_ms": r.login_wall_ms,
        "req_wall_ms": r.req_wall_ms,
        "kreq_s": r.kreq_s,
        "virtual_rps": r.virtual_rps,
        "routes": routes_json(&r.routes),
        "logins_total": r.logins_total,
        "pool_hits": r.pool_hits,
        "pool_misses": r.pool_misses,
        "users": USERS,
        "live_end": r.live_end,
    })
}

/// Machine-checkable artifact for `cargo xtask benchcheck`.
pub fn run_json(p: &LoadParams) -> serde_json::Value {
    let rows: Vec<serde_json::Value> = scaling_rows(p)
        .iter()
        .map(|r| row_json(r, SessionConfig::default().shards, true))
        .collect();
    let (sharded, single) = ablation_pair(p);
    let ablation = json!({
        "sessions": sharded.sessions,
        "requests": sharded.requests,
        "workers": p.workers,
        "mix_churn_pct": CHURN_MIX.churn,
        "sharded": row_json(&sharded, SessionConfig::default().shards, true),
        "single_lock": row_json(&single, 1, false),
        "wall_speedup": sharded.kreq_s / single.kreq_s.max(1e-9),
        "sim": json!({
            "sharded": sim_fields(&sharded),
            "single_lock": sim_fields(&single),
        }),
    });
    json!({
        "experiment": "load_frontend",
        "workers": p.workers,
        "seed": p.seed,
        "users": USERS,
        "rows": rows,
        "ablation": ablation,
        "determinism": determinism_block(p),
        "sweep": sweep_block(p),
    })
}

/// Human-readable tables.
pub fn run_tables(p: &LoadParams) -> Vec<Table> {
    let mut scale = Table::new(
        &format!(
            "LOAD: open-workload scenario mix, sharded+pooled front-end ({} workers)",
            p.workers
        ),
        &[
            "sessions",
            "requests",
            "login ms",
            "req ms",
            "kreq/s",
            "browse sim p95 us",
            "browse wall p95 us",
        ],
    );
    for r in scaling_rows(p) {
        let b = r.routes.get("browse").cloned().unwrap_or_default();
        scale.row(vec![
            r.sessions.to_string(),
            r.requests.to_string(),
            format!("{:.0}", r.login_wall_ms),
            format!("{:.0}", r.req_wall_ms),
            format!("{:.1}", r.kreq_s),
            format!("{:.1}", b.sim_p95_ns as f64 / 1e3),
            format!("{:.1}", b.wall_p95_ns as f64 / 1e3),
        ]);
    }
    let (sharded, single) = ablation_pair(p);
    let mut ab = Table::new(
        "LOAD ablation: sharded+pooled vs single-lock unpooled (churn mix)",
        &[
            "front-end",
            "kreq/s",
            "login ms",
            "pool hits",
            "pool misses",
        ],
    );
    for (label, r) in [("sharded+pooled", &sharded), ("single-lock", &single)] {
        ab.row(vec![
            label.to_string(),
            format!("{:.1}", r.kreq_s),
            format!("{:.0}", r.login_wall_ms),
            r.pool_hits.to_string(),
            r.pool_misses.to_string(),
        ]);
    }
    vec![scale, ab]
}

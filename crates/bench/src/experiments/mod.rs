//! One module per experiment in DESIGN.md §5.

pub mod e10_cache;
pub mod e1_catalog_scale;
pub mod e2_containers;
pub mod e2_range;
pub mod e3_failover;
pub mod e4_federation;
pub mod e5_query;
pub mod e6_parallel;
pub mod e7_sync_repl;
pub mod e8_auth;
pub mod e9_migration;
pub mod figures;
pub mod load;
pub mod obs_overhead;
pub mod recovery;
pub mod zone;

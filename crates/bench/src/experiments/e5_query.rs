//! E5 — the conjunctive attribute query (§6) and ablation A1 (value
//! indexes vs full scan).
//!
//! A 20k-dataset catalog is queried with growing numbers of ANDed
//! conditions; each row compares the indexed planner against the scan
//! baseline and reports the hit count (identical by construction — the
//! property tests enforce it).

use crate::fixtures::{connect, seed_datasets, single_site_grid};
use crate::table::Table;
use srb_mcat::Query;
use srb_types::CompareOp;
use std::time::Instant;

pub fn run(n: usize) -> Table {
    let (grid, srv) = single_site_grid();
    let conn = connect(&grid, srv);
    seed_datasets(&conn, n, "fs");
    let mut table = Table::new(
        &format!("E5: conjunctive query cost over {n} datasets (indexed vs scan)"),
        &[
            "conditions",
            "hits",
            "indexed us",
            "scan us",
            "scan/indexed",
        ],
    );
    // Conditions of decreasing selectivity order, as the web form allows.
    let conds: Vec<(&str, CompareOp, srb_types::MetaValue)> = vec![
        ("serial", CompareOp::Lt, 400i64.into()),
        ("kind", CompareOp::Eq, "image".into()),
        ("score", CompareOp::Ge, 200i64.into()),
        ("score", CompareOp::Lt, 900i64.into()),
        ("serial", CompareOp::Ge, 10i64.into()),
    ];
    for ncond in 1..=conds.len() {
        let mut q = Query::everywhere();
        for (attr, op, val) in conds.iter().take(ncond) {
            q = q.and(attr, *op, val.clone());
        }
        let reps = 20;
        let t0 = Instant::now();
        let mut hits = 0;
        for _ in 0..reps {
            hits = conn.query(&q).unwrap().0.len();
        }
        let indexed_us = t0.elapsed().as_micros() as f64 / reps as f64;
        let t1 = Instant::now();
        let scan_hits = conn.query_scan(&q).unwrap().0.len();
        let scan_us = t1.elapsed().as_micros() as f64;
        assert_eq!(hits, scan_hits);
        table.row(vec![
            ncond.to_string(),
            hits.to_string(),
            format!("{indexed_us:.0}"),
            format!("{scan_us:.0}"),
            format!("{:.1}x", scan_us / indexed_us.max(0.001)),
        ]);
    }
    table
}

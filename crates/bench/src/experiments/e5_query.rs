//! E5 — the conjunctive attribute query (§6) and ablation A1 (value
//! indexes vs full scan).
//!
//! A seeded catalog is queried with growing numbers of ANDed conditions;
//! each row compares three engines on the same [`Query`]:
//!
//! - **planner** — the multi-index intersection planner
//!   ([`srb_mcat::Mcat::query`]),
//! - **single-driver** — the pre-overhaul engine kept as an ablation
//!   ([`srb_mcat::Mcat::query_single_driver`]): one driver index,
//!   per-candidate verification on cloned rows,
//! - **scan** — the index-free full scan
//!   ([`srb_mcat::Mcat::query_scan`]).
//!
//! Hit counts are identical by construction (the differential oracle in
//! `crates/srb-mcat/tests/query_oracle.rs` enforces it); the interesting
//! output is the cost ratio as conditions accumulate. Timings are taken at
//! the catalog layer so permission filtering does not blur the engine
//! comparison.

use crate::fixtures::{connect, ok, seed_datasets, single_site_grid, time_us};
use crate::table::Table;
use serde_json::json;
use srb_mcat::Query;
use srb_types::{CompareOp, MetaValue};

/// The six-condition workload over the attributes `seed_datasets` attaches:
/// a unique `serial`, a three-way `kind`, and a 0..1000 `score`.
fn conditions() -> Vec<(&'static str, CompareOp, MetaValue)> {
    vec![
        ("serial", CompareOp::Lt, 400i64.into()),
        ("kind", CompareOp::Eq, "image".into()),
        ("score", CompareOp::Ge, 200i64.into()),
        ("score", CompareOp::Lt, 900i64.into()),
        ("serial", CompareOp::Ge, 10i64.into()),
        ("kind", CompareOp::Ne, "movie".into()),
    ]
}

struct Row {
    conds: usize,
    hits: usize,
    planner_us: f64,
    single_driver_us: f64,
    scan_us: f64,
}

fn measure(n: usize) -> Vec<Row> {
    let (grid, srv) = single_site_grid();
    let conn = connect(&grid, srv);
    seed_datasets(&conn, n, "fs");
    let mcat = &grid.mcat;
    let conds = conditions();
    let mut rows = Vec::new();
    for ncond in 1..=conds.len() {
        let mut q = Query::everywhere();
        for (attr, op, val) in conds.iter().take(ncond) {
            q = q.and(attr, *op, val.clone());
        }
        let hits = ok(mcat.query(&q)).len();
        assert_eq!(hits, ok(mcat.query_single_driver(&q)).len());
        assert_eq!(hits, ok(mcat.query_scan(&q)).len());
        let planner_us = time_us(20, || {
            ok(mcat.query(&q));
        });
        let single_driver_us = time_us(5, || {
            ok(mcat.query_single_driver(&q));
        });
        let scan_us = time_us(1, || {
            ok(mcat.query_scan(&q));
        });
        rows.push(Row {
            conds: ncond,
            hits,
            planner_us,
            single_driver_us,
            scan_us,
        });
    }
    rows
}

pub fn run(n: usize) -> Table {
    let mut table = Table::new(
        &format!("E5: conjunctive query cost over {n} datasets (planner vs single-driver vs scan)"),
        &[
            "conditions",
            "hits",
            "planner us",
            "1-driver us",
            "scan us",
            "1-driver/planner",
            "scan/planner",
        ],
    );
    for r in measure(n) {
        table.row(vec![
            r.conds.to_string(),
            r.hits.to_string(),
            format!("{:.0}", r.planner_us),
            format!("{:.0}", r.single_driver_us),
            format!("{:.0}", r.scan_us),
            format!("{:.1}x", r.single_driver_us / r.planner_us.max(0.001)),
            format!("{:.1}x", r.scan_us / r.planner_us.max(0.001)),
        ]);
    }
    table
}

/// The same measurements as machine-readable before/after rows for
/// `BENCH_E5.json` (`--json` mode of the `exp_e5_query` binary);
/// `single_driver_us` is the "before" engine, `planner_us` the "after".
pub fn run_json(n: usize) -> serde_json::Value {
    let rows: Vec<serde_json::Value> = measure(n)
        .iter()
        .map(|r| {
            json!({
                "conditions": r.conds,
                "hits": r.hits,
                "planner_us": r.planner_us,
                "single_driver_us": r.single_driver_us,
                "scan_us": r.scan_us,
                "speedup_vs_single_driver": r.single_driver_us / r.planner_us.max(0.001),
                "speedup_vs_scan": r.scan_us / r.planner_us.max(0.001),
            })
        })
        .collect();
    json!({
        "experiment": "e5_query",
        "datasets": n,
        "before_engine": "single_driver",
        "after_engine": "planner",
        "rows": rows,
    })
}

//! E3 — fault tolerance: "automatically redirecting access to a replica on
//! a separate storage system when the first storage system is unavailable"
//! (§3).
//!
//! For k = 1..4 replicas, read the dataset while 0..k resources are down.
//! Success means a read completed; the mean replicas-tried column shows
//! the failover machinery at work; with all k resources down the read must
//! fail cleanly.

use crate::table::Table;
use srb_core::{GridBuilder, IngestOptions, SrbConnection};
use srb_net::LinkSpec;

pub fn run() -> Table {
    let mut table = Table::new(
        "E3: replica failover (read success under resource failures)",
        &[
            "replicas",
            "failed",
            "reads",
            "success",
            "avg tried",
            "avg sim ms",
        ],
    );
    for k in 1..=4usize {
        // k single-resource sites, fully meshed.
        let mut gb = GridBuilder::new();
        let mut servers = Vec::new();
        for i in 0..k {
            let site = gb.site(&format!("site{i}"));
            servers.push(gb.server(&format!("srb{i}"), site));
        }
        gb.default_link(LinkSpec::wan());
        for (i, srv) in servers.iter().enumerate() {
            gb.fs_resource(&format!("fs{i}"), *srv);
        }
        let grid = gb.build();
        grid.register_user("bench", "sdsc", "pw").unwrap();
        let conn = SrbConnection::connect(&grid, servers[0], "bench", "sdsc", "pw").unwrap();
        conn.ingest(
            "/home/bench/obj",
            vec![1u8; 32 << 10],
            IngestOptions::to_resource("fs0"),
        )
        .unwrap();
        for i in 1..k {
            conn.replicate("/home/bench/obj", &format!("fs{i}"))
                .unwrap();
        }
        for failed in 0..=k {
            for i in 0..failed {
                grid.fail_resource(&format!("fs{i}")).unwrap();
            }
            let reads = 50;
            let mut ok = 0;
            let mut tried = 0u64;
            let mut sim = 0u64;
            for _ in 0..reads {
                if let Ok((_, r)) = conn.read("/home/bench/obj") {
                    ok += 1;
                    tried += r.replicas_tried as u64;
                    sim += r.sim_ns;
                }
            }
            table.row(vec![
                k.to_string(),
                failed.to_string(),
                reads.to_string(),
                format!("{}%", ok * 100 / reads),
                if ok > 0 {
                    format!("{:.2}", tried as f64 / ok as f64)
                } else {
                    "-".into()
                },
                if ok > 0 {
                    format!("{:.2}", sim as f64 / ok as f64 / 1e6)
                } else {
                    "-".into()
                },
            ]);
            for i in 0..failed {
                grid.restore_resource(&format!("fs{i}")).unwrap();
            }
        }
    }
    table
}

//! E3 — fault tolerance: "automatically redirecting access to a replica on
//! a separate storage system when the first storage system is unavailable"
//! (§3).
//!
//! Part 1 (`run`): the classic hard-failover table — for k = 1..4
//! replicas, read the dataset while 0..k resources are cleanly down.
//! Part 2 (`run_flaky` / `run_json`): the health-engine ablation — every
//! replica is *flaky* (seeded `FailWithProb`, p = 0.3 transient timeouts)
//! and we compare the resilient stack (per-resource circuit breakers +
//! retry with exponential backoff) against the ablated one (breakers
//! disabled, single attempt per replica). With k >= 2 the resilient stack
//! must keep read success >= 99% while the ablation visibly loses reads;
//! the `sim_ms_healthy` column bounds what resilience costs in simulated
//! time against a fault-free run.

use crate::fixtures::ok;
use crate::table::Table;
use serde_json::json;
use srb_core::{BreakerConfig, Grid, GridBuilder, IngestOptions, RetryBudget, SrbConnection};
use srb_net::LinkSpec;
use srb_types::ServerId;

/// Part 1: clean resource-down failover across a WAN mesh.
pub fn run() -> Table {
    let mut table = Table::new(
        "E3a: replica failover (read success under resource failures)",
        &[
            "replicas",
            "failed",
            "reads",
            "success",
            "avg tried",
            "avg sim ms",
        ],
    );
    for k in 1..=4usize {
        // k single-resource sites, fully meshed.
        let mut gb = GridBuilder::new();
        let mut servers = Vec::new();
        for i in 0..k {
            let site = gb.site(&format!("site{i}"));
            servers.push(gb.server(&format!("srb{i}"), site));
        }
        gb.default_link(LinkSpec::wan());
        for (i, srv) in servers.iter().enumerate() {
            gb.fs_resource(&format!("fs{i}"), *srv);
        }
        let grid = gb.build();
        ok(grid.register_user("bench", "sdsc", "pw"));
        let conn = ok(SrbConnection::connect(
            &grid, servers[0], "bench", "sdsc", "pw",
        ));
        ok(conn.ingest(
            "/home/bench/obj",
            vec![1u8; 32 << 10],
            IngestOptions::to_resource("fs0"),
        ));
        for i in 1..k {
            ok(conn.replicate("/home/bench/obj", &format!("fs{i}")));
        }
        for failed in 0..=k {
            for i in 0..failed {
                ok(grid.fail_resource(&format!("fs{i}")));
            }
            let reads = 50;
            let mut success = 0;
            let mut tried = 0u64;
            let mut sim = 0u64;
            for _ in 0..reads {
                if let Ok((_, r)) = conn.read("/home/bench/obj") {
                    success += 1;
                    tried += r.replicas_tried as u64;
                    sim += r.sim_ns;
                }
            }
            table.row(vec![
                k.to_string(),
                failed.to_string(),
                reads.to_string(),
                format!("{}%", success * 100 / reads),
                if success > 0 {
                    format!("{:.2}", tried as f64 / success as f64)
                } else {
                    "-".into()
                },
                if success > 0 {
                    format!("{:.2}", sim as f64 / success as f64 / 1e6)
                } else {
                    "-".into()
                },
            ]);
            for i in 0..failed {
                ok(grid.restore_resource(&format!("fs{i}")));
            }
        }
    }
    table
}

// ---------------------------------------------------- flaky-fault ablation --

/// Transient-timeout probability per storage access in the flaky arms.
const FLAKY_P: f64 = 0.3;

/// Fixed simulated-time tick between reads so breaker cool-downs elapse
/// and half-open probes get their chance, identically in both arms.
const READ_TICK_NS: u64 = 25_000_000;

/// One k-replica comparison between the resilient stack and the ablation.
pub struct FlakyRow {
    /// Replica count.
    pub k: usize,
    /// Per-access transient failure probability.
    pub p: f64,
    /// Reads issued per arm.
    pub reads: usize,
    /// Successful reads with breakers + retry on.
    pub ok_on: usize,
    /// Successful reads with breakers disabled and a single attempt.
    pub ok_off: usize,
    /// Mean simulated ms per successful read, resilient arm.
    pub sim_ms_on: f64,
    /// Mean simulated ms per successful read, ablated arm.
    pub sim_ms_off: f64,
    /// Mean simulated ms per read on a fault-free grid (cost floor).
    pub sim_ms_healthy: f64,
    /// Total retry attempts charged to receipts in the resilient arm.
    pub retries_on: u64,
}

/// One site, k fs resources, the object replicated to all of them.
fn flaky_grid(k: usize, breakers: BreakerConfig) -> (Grid, ServerId) {
    let mut gb = GridBuilder::new();
    let site = gb.site("sdsc");
    let srv = gb.server("srb", site);
    for i in 0..k {
        gb.fs_resource(&format!("fs{i}"), srv);
    }
    gb.breaker_config(breakers);
    let grid = gb.build();
    ok(grid.register_user("bench", "sdsc", "pw"));
    (grid, srv)
}

/// Run `reads` reads of a k-replicated 32 KiB object. `flaky` installs the
/// seeded fault schedule on every replica; `resilient` selects breakers +
/// the default retry budget vs the ablation (no breakers, one attempt).
fn run_arm(k: usize, reads: usize, flaky: bool, resilient: bool) -> (usize, f64, u64) {
    let breakers = if resilient {
        BreakerConfig::default()
    } else {
        BreakerConfig::disabled()
    };
    let (grid, srv) = flaky_grid(k, breakers);
    let mut conn = ok(SrbConnection::connect(&grid, srv, "bench", "sdsc", "pw"));
    conn.set_retry_budget(if resilient {
        RetryBudget::default()
    } else {
        RetryBudget::none()
    });
    ok(conn.ingest(
        "/home/bench/obj",
        vec![1u8; 32 << 10],
        IngestOptions::to_resource("fs0"),
    ));
    for i in 1..k {
        ok(conn.replicate("/home/bench/obj", &format!("fs{i}")));
    }
    if flaky {
        for i in 0..k {
            ok(grid.flaky_resource(&format!("fs{i}"), FLAKY_P, 0xE3 + i as u64));
        }
    }
    let mut success = 0usize;
    let mut sim = 0u64;
    let mut retries = 0u64;
    for _ in 0..reads {
        if let Ok((_, r)) = conn.read("/home/bench/obj") {
            success += 1;
            sim += r.sim_ns;
            retries += r.retries as u64;
            grid.clock.advance(r.sim_ns);
        }
        // Same virtual cadence whether the read succeeded or not.
        grid.clock.advance(READ_TICK_NS);
    }
    let mean_ms = if success > 0 {
        sim as f64 / success as f64 / 1e6
    } else {
        0.0
    };
    (success, mean_ms, retries)
}

fn flaky_rows(reads: usize) -> Vec<FlakyRow> {
    (1..=3usize)
        .map(|k| {
            let (_, sim_ms_healthy, _) = run_arm(k, reads.min(100), false, true);
            let (ok_on, sim_ms_on, retries_on) = run_arm(k, reads, true, true);
            let (ok_off, sim_ms_off, _) = run_arm(k, reads, true, false);
            FlakyRow {
                k,
                p: FLAKY_P,
                reads,
                ok_on,
                ok_off,
                sim_ms_on,
                sim_ms_off,
                sim_ms_healthy,
                retries_on,
            }
        })
        .collect()
}

/// Part 2, human-readable.
pub fn run_flaky(reads: usize) -> Table {
    let mut table = Table::new(
        "E3b: flaky replicas (p=0.3) — breakers+retry vs ablation",
        &[
            "k",
            "reads",
            "success on",
            "success off",
            "sim ms on",
            "sim ms off",
            "sim ms healthy",
            "retries",
        ],
    );
    for r in flaky_rows(reads) {
        table.row(vec![
            r.k.to_string(),
            r.reads.to_string(),
            format!("{:.2}%", r.ok_on as f64 * 100.0 / r.reads as f64),
            format!("{:.2}%", r.ok_off as f64 * 100.0 / r.reads as f64),
            format!("{:.3}", r.sim_ms_on),
            format!("{:.3}", r.sim_ms_off),
            format!("{:.3}", r.sim_ms_healthy),
            r.retries_on.to_string(),
        ]);
    }
    table
}

/// Machine-checkable artifact for `cargo xtask benchcheck`.
pub fn run_json(reads: usize) -> serde_json::Value {
    let rows: Vec<serde_json::Value> = flaky_rows(reads)
        .iter()
        .map(|r| {
            json!({
                "k": r.k,
                "p": r.p,
                "reads": r.reads,
                "success_on_pct": r.ok_on as f64 * 100.0 / r.reads as f64,
                "success_off_pct": r.ok_off as f64 * 100.0 / r.reads as f64,
                "sim_ms_on": r.sim_ms_on,
                "sim_ms_off": r.sim_ms_off,
                "sim_ms_healthy": r.sim_ms_healthy,
                "retries_on": r.retries_on,
            })
        })
        .collect();
    json!({
        "experiment": "e3_failover",
        "fault_model": "seeded FailWithProb transient timeouts on every replica",
        "on_arm": "circuit breakers + retry with backoff",
        "off_arm": "breakers disabled, single attempt",
        "rows": rows,
    })
}

//! E6 — load balancing (§3), parallel throughput, and the replica
//! fan-out engine ablation.
//!
//! Part 1: wall-clock ingest+read throughput as the client pool grows
//! (shared-catalog contention is the limiter).
//! Part 2 (ablation A3): how evenly the three replica-selection policies
//! spread 3000 reads over three replicas, and the simulated makespan that
//! imbalance causes.
//! Part 4 (E6d): the fan-out engine itself — k-replica logical ingests
//! under `FanoutMode::Parallel` vs the `Sequential` ablation, in both
//! wall-clock and simulated time.
//! Part 5 (E6e): the bulk-ingest pipeline — one `ingest_bulk` call vs a
//! per-file ingest loop on a small-file workload.

use crate::fixtures::ok;
use crate::table::Table;
use bytes::Bytes;
use serde_json::json;
use srb_core::{FanoutMode, Grid, GridBuilder, IngestOptions, ReplicaPolicy, SrbConnection};
use srb_types::ServerId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Real worker threads the engine will use on this host (mirrors the
/// engine's own cap). Wall-clock comparisons are only meaningful when
/// this exceeds 1; `sim_ns` is host-independent either way.
pub fn real_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(16)
}

/// Part 1: client-pool scaling.
pub fn run_scaling() -> Table {
    let mut table = Table::new(
        "E6a: parallel client throughput (ingest+read mix, wall clock)",
        &["threads", "ops", "wall ms", "kops/s"],
    );
    for threads in [1usize, 2, 4, 8, 16] {
        let mut gb = GridBuilder::new();
        let site = gb.site("sdsc");
        let srv = gb.server("srb", site);
        gb.fs_resource("fs", srv);
        let grid = gb.build();
        ok(grid.register_user("bench", "sdsc", "pw"));
        let per_thread = 500usize;
        let done = AtomicU64::new(0);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let grid = &grid;
                let done = &done;
                s.spawn(move || {
                    let conn = ok(SrbConnection::connect(grid, srv, "bench", "sdsc", "pw"));
                    ok(conn.make_collection(&format!("/home/bench/t{t}")));
                    for i in 0..per_thread {
                        let path = format!("/home/bench/t{t}/f{i}");
                        ok(conn.ingest(&path, b"data", IngestOptions::to_resource("fs")));
                        ok(conn.read(&path));
                        done.fetch_add(2, Ordering::Relaxed);
                    }
                });
            }
        });
        let wall = t0.elapsed();
        let ops = done.load(Ordering::Relaxed);
        table.row(vec![
            threads.to_string(),
            ops.to_string(),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            format!("{:.1}", ops as f64 / wall.as_secs_f64() / 1e3),
        ]);
    }
    table
}

/// Part 2: replica-selection policy comparison (ablation A3).
pub fn run_policies() -> Table {
    let mut table = Table::new(
        "E6b: replica-selection policies over 3 replicas, 3000 reads (A3)",
        &[
            "policy",
            "r1 ops",
            "r2 ops",
            "r3 ops",
            "imbalance",
            "sim makespan ms",
        ],
    );
    for (label, policy) in [
        ("first-alive", ReplicaPolicy::FirstAlive),
        ("random", ReplicaPolicy::Random(7)),
        ("least-loaded", ReplicaPolicy::LeastLoaded),
    ] {
        let mut gb = GridBuilder::new();
        let site = gb.site("sdsc");
        let srv = gb.server("srb", site);
        gb.fs_resource("fs1", srv)
            .fs_resource("fs2", srv)
            .fs_resource("fs3", srv);
        let grid = gb.build();
        ok(grid.register_user("bench", "sdsc", "pw"));
        let mut conn = ok(SrbConnection::connect(&grid, srv, "bench", "sdsc", "pw"));
        ok(conn.ingest(
            "/home/bench/hot",
            vec![1u8; 256 << 10],
            IngestOptions::to_resource("fs1"),
        ));
        ok(conn.replicate("/home/bench/hot", "fs2"));
        ok(conn.replicate("/home/bench/hot", "fs3"));
        // Snapshot post-setup load so only the measured reads count.
        let rids: Vec<_> = (1..=3)
            .map(|i| ok(grid.resource_id(&format!("fs{i}"))))
            .collect();
        let base: Vec<u64> = rids.iter().map(|r| grid.load.completed(*r)).collect();
        let base_busy: Vec<u64> = rids.iter().map(|r| grid.load.busy_ns(*r)).collect();
        match policy {
            ReplicaPolicy::Random(_) => {
                // Vary the seed per read for a genuinely random spread.
                for i in 0..3000u64 {
                    conn.set_policy(ReplicaPolicy::Random(i));
                    ok(conn.read("/home/bench/hot"));
                }
            }
            p => {
                conn.set_policy(p);
                for _ in 0..3000 {
                    ok(conn.read("/home/bench/hot"));
                }
            }
        }
        let counts: Vec<u64> = rids
            .iter()
            .zip(&base)
            .map(|(r, b)| grid.load.completed(*r) - b)
            .collect();
        let busy: Vec<u64> = rids
            .iter()
            .zip(&base_busy)
            .map(|(r, b)| grid.load.busy_ns(*r) - b)
            .collect();
        let max = counts.iter().copied().max().unwrap_or(0) as f64;
        let min = counts.iter().copied().min().unwrap_or(0) as f64;
        // Makespan: the busiest replica bounds completion when reads run
        // concurrently.
        let makespan_ms = busy.iter().copied().max().unwrap_or(0) as f64 / 1e6;
        table.row(vec![
            label.to_string(),
            counts[0].to_string(),
            counts[1].to_string(),
            counts[2].to_string(),
            if min > 0.0 {
                format!("{:.2}", max / min)
            } else {
                "inf".into()
            },
            format!("{makespan_ms:.0}"),
        ]);
    }
    table
}

/// Part 3: the same policy comparison with *heterogeneous* replicas — one
/// member is a 10x-slower disk. This is where load awareness earns its
/// keep: random keeps sending 1/3 of reads to the slow replica, while
/// least-loaded adaptively avoids it once its busy-time accumulates.
pub fn run_policies_skewed() -> Table {
    let mut table = Table::new(
        "E6c: policies with one 10x-slower replica, 3000 reads (A3 under skew)",
        &[
            "policy",
            "fast1 ops",
            "fast2 ops",
            "slow ops",
            "sim makespan ms",
        ],
    );
    for (label, policy) in [
        ("random", ReplicaPolicy::Random(7)),
        ("least-loaded", ReplicaPolicy::LeastLoaded),
    ] {
        let mut gb = GridBuilder::new();
        let site = gb.site("sdsc");
        let srv = gb.server("srb", site);
        let slow_disk = srb_storage::CostModel {
            fixed_ns: 2_000_000,
            read_mbps: 5.0,
            write_mbps: 4.0,
        };
        gb.fs_resource("fs1", srv)
            .fs_resource("fs2", srv)
            .fs_resource_with_cost("fs-slow", srv, slow_disk);
        let grid = gb.build();
        ok(grid.register_user("bench", "sdsc", "pw"));
        let mut conn = ok(SrbConnection::connect(&grid, srv, "bench", "sdsc", "pw"));
        ok(conn.ingest(
            "/home/bench/hot",
            vec![1u8; 256 << 10],
            IngestOptions::to_resource("fs1"),
        ));
        ok(conn.replicate("/home/bench/hot", "fs2"));
        ok(conn.replicate("/home/bench/hot", "fs-slow"));
        let rids: Vec<_> = ["fs1", "fs2", "fs-slow"]
            .iter()
            .map(|n| ok(grid.resource_id(n)))
            .collect();
        let base: Vec<u64> = rids.iter().map(|r| grid.load.completed(*r)).collect();
        let base_busy: Vec<u64> = rids.iter().map(|r| grid.load.busy_ns(*r)).collect();
        match policy {
            ReplicaPolicy::Random(_) => {
                for i in 0..3000u64 {
                    conn.set_policy(ReplicaPolicy::Random(i));
                    ok(conn.read("/home/bench/hot"));
                }
            }
            p => {
                conn.set_policy(p);
                for _ in 0..3000 {
                    ok(conn.read("/home/bench/hot"));
                }
            }
        }
        let counts: Vec<u64> = rids
            .iter()
            .zip(&base)
            .map(|(r, b)| grid.load.completed(*r) - b)
            .collect();
        let busy: Vec<u64> = rids
            .iter()
            .zip(&base_busy)
            .map(|(r, b)| grid.load.busy_ns(*r) - b)
            .collect();
        let makespan_ms = busy.iter().copied().max().unwrap_or(0) as f64 / 1e6;
        table.row(vec![
            label.to_string(),
            counts[0].to_string(),
            counts[1].to_string(),
            counts[2].to_string(),
            format!("{makespan_ms:.0}"),
        ]);
    }
    table
}

// ------------------------------------------------------- fan-out ablation --

/// One measured comparison: the same workload under sequential and
/// parallel fan-out.
pub struct AblationRow {
    /// Row label: "fanout" (k-replica logical ingests) or "bulk"
    /// (ingest_bulk vs a per-file loop).
    pub kind: &'static str,
    /// Replica fan-out width.
    pub k: usize,
    /// Files ingested.
    pub files: usize,
    /// Payload size per file, bytes.
    pub payload: usize,
    /// Wall-clock of the sequential baseline, ms.
    pub wall_ms_before: f64,
    /// Wall-clock of the parallel engine, ms.
    pub wall_ms_after: f64,
    /// Simulated time of the sequential baseline, ms.
    pub sim_ms_before: f64,
    /// Simulated time of the parallel engine, ms.
    pub sim_ms_after: f64,
}

fn fanout_grid(k: usize) -> (Grid, ServerId) {
    let mut gb = GridBuilder::new();
    let site = gb.site("sdsc");
    let srv = gb.server("srb", site);
    let names: Vec<String> = (0..k).map(|i| format!("fs{i}")).collect();
    for n in &names {
        gb.fs_resource(n, srv);
    }
    let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    gb.logical_resource("logk", &refs);
    let grid = gb.build();
    ok(grid.register_user("bench", "sdsc", "pw"));
    (grid, srv)
}

fn run_ingests(k: usize, files: usize, payload: usize, mode: FanoutMode) -> (f64, f64) {
    let (grid, srv) = fanout_grid(k);
    let mut conn = ok(SrbConnection::connect(&grid, srv, "bench", "sdsc", "pw"));
    conn.set_fanout_mode(mode);
    let data = Bytes::from(vec![0xF5u8; payload]);
    let mut sim_ns = 0u64;
    let t0 = Instant::now();
    for i in 0..files {
        let r = ok(conn.ingest(
            &format!("/home/bench/f{i}"),
            data.clone(),
            IngestOptions::to_resource("logk"),
        ));
        sim_ns += r.sim_ns;
    }
    (t0.elapsed().as_secs_f64() * 1e3, sim_ns as f64 / 1e6)
}

/// Part 4 (E6d): k-replica logical ingests, parallel engine vs the
/// sequential ablation. Simulated time max-composes over the engine's
/// virtual lanes, so the win there is architectural; the wall-clock win
/// depends on this host's core count (`real_workers`).
pub fn measure_fanout(files: usize) -> Vec<AblationRow> {
    let payload = 1 << 20;
    [3usize, 4, 8]
        .iter()
        .map(|&k| {
            // Warm-up pass: page in allocator arenas at this workload's
            // high-water mark so neither measured run eats the one-time
            // memory-growth cost.
            let _ = run_ingests(k, files, payload, FanoutMode::Sequential);
            let (wall_seq, sim_seq) = run_ingests(k, files, payload, FanoutMode::Sequential);
            let (wall_par, sim_par) = run_ingests(k, files, payload, FanoutMode::Parallel);
            AblationRow {
                kind: "fanout",
                k,
                files,
                payload,
                wall_ms_before: wall_seq,
                wall_ms_after: wall_par,
                sim_ms_before: sim_seq,
                sim_ms_after: sim_par,
            }
        })
        .collect()
}

/// Part 5 (E6e): a small-file workload through `ingest_bulk` (one
/// structural validation, batched catalog locks, one audit record,
/// file-level fan-out) vs the same files ingested one call at a time.
pub fn measure_bulk(files: usize) -> AblationRow {
    let payload = 1 << 10;
    let k = 3;

    // Warm-up pass (see measure_fanout): grow the allocator to the
    // workload's high-water mark before either measured run.
    {
        let (grid, srv) = fanout_grid(k);
        let conn = ok(SrbConnection::connect(&grid, srv, "bench", "sdsc", "pw"));
        let batch: Vec<(String, Bytes)> = (0..files)
            .map(|i| (format!("f{i}"), Bytes::from(vec![i as u8; payload])))
            .collect();
        ok(conn.ingest_bulk("/home/bench", batch, &IngestOptions::to_resource("logk")));
    }

    // Baseline: a per-file ingest loop.
    let (grid, srv) = fanout_grid(k);
    let conn = ok(SrbConnection::connect(&grid, srv, "bench", "sdsc", "pw"));
    let mut sim_loop = 0u64;
    let t0 = Instant::now();
    for i in 0..files {
        let r = ok(conn.ingest(
            &format!("/home/bench/f{i}"),
            vec![i as u8; payload],
            IngestOptions::to_resource("logk"),
        ));
        sim_loop += r.sim_ns;
    }
    let wall_loop = t0.elapsed().as_secs_f64() * 1e3;

    // One bulk call over the same files.
    let (grid, srv) = fanout_grid(k);
    let conn = ok(SrbConnection::connect(&grid, srv, "bench", "sdsc", "pw"));
    let batch: Vec<(String, Bytes)> = (0..files)
        .map(|i| (format!("f{i}"), Bytes::from(vec![i as u8; payload])))
        .collect();
    let t0 = Instant::now();
    let (_, r) = ok(conn.ingest_bulk("/home/bench", batch, &IngestOptions::to_resource("logk")));
    let wall_bulk = t0.elapsed().as_secs_f64() * 1e3;

    AblationRow {
        kind: "bulk",
        k,
        files,
        payload,
        wall_ms_before: wall_loop,
        wall_ms_after: wall_bulk,
        sim_ms_before: sim_loop as f64 / 1e6,
        sim_ms_after: r.sim_ns as f64 / 1e6,
    }
}

fn ablation_rows(files: usize) -> Vec<AblationRow> {
    let fan_files = (files / 400).clamp(4, 64);
    let mut rows = measure_fanout(fan_files);
    rows.push(measure_bulk(files));
    rows
}

/// Human-readable table over `ablation_rows`.
pub fn run_fanout(files: usize) -> Table {
    let mut table = Table::new(
        &format!(
            "E6d/e: fan-out engine vs sequential ablation ({} worker threads)",
            real_workers()
        ),
        &[
            "workload",
            "k",
            "files",
            "seq wall ms",
            "par wall ms",
            "seq sim ms",
            "par sim ms",
            "sim speedup",
        ],
    );
    for r in ablation_rows(files) {
        table.row(vec![
            r.kind.to_string(),
            r.k.to_string(),
            r.files.to_string(),
            format!("{:.1}", r.wall_ms_before),
            format!("{:.1}", r.wall_ms_after),
            format!("{:.1}", r.sim_ms_before),
            format!("{:.1}", r.sim_ms_after),
            format!("{:.2}x", r.sim_ms_before / r.sim_ms_after.max(1e-9)),
        ]);
    }
    table
}

/// `--metrics-json` support: one instrumented pass of the E6d fan-out
/// workload (k = 8, parallel engine), returning the grid's full metric
/// snapshot for `BENCH_E6_METRICS.json`.
pub fn metrics_json(files: usize) -> serde_json::Value {
    let fan_files = (files / 400).clamp(4, 64);
    let (grid, srv) = fanout_grid(8);
    let mut conn = ok(SrbConnection::connect(&grid, srv, "bench", "sdsc", "pw"));
    conn.set_fanout_mode(FanoutMode::Parallel);
    let data = Bytes::from(vec![0xF5u8; 1 << 20]);
    for i in 0..fan_files {
        ok(conn.ingest(
            &format!("/home/bench/f{i}"),
            data.clone(),
            IngestOptions::to_resource("logk"),
        ));
    }
    json!({
        "experiment": "e6_parallel",
        "snapshot": serde_json::to_value(&grid.metrics_snapshot()),
    })
}

/// Machine-checkable artifact for `cargo xtask benchcheck`.
pub fn run_json(files: usize) -> serde_json::Value {
    let workers = real_workers();
    let rows: Vec<serde_json::Value> = ablation_rows(files)
        .iter()
        .map(|r| {
            json!({
                "kind": r.kind,
                "k": r.k,
                "files": r.files,
                "payload_bytes": r.payload,
                "workers": workers,
                "wall_ms_before": r.wall_ms_before,
                "wall_ms_after": r.wall_ms_after,
                "sim_ms_before": r.sim_ms_before,
                "sim_ms_after": r.sim_ms_after,
                "sim_speedup": r.sim_ms_before / r.sim_ms_after.max(1e-9),
            })
        })
        .collect();
    json!({
        "experiment": "e6_parallel",
        "before_engine": "sequential_fanout",
        "after_engine": "parallel_fanout",
        "workers": workers,
        "rows": rows,
    })
}

//! E6 — load balancing (§3) and parallel throughput.
//!
//! Part 1: wall-clock ingest+read throughput as the client pool grows
//! (shared-catalog contention is the limiter).
//! Part 2 (ablation A3): how evenly the three replica-selection policies
//! spread 3000 reads over three replicas, and the simulated makespan that
//! imbalance causes.

use crate::table::Table;
use srb_core::{GridBuilder, IngestOptions, ReplicaPolicy, SrbConnection};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Part 1: client-pool scaling.
pub fn run_scaling() -> Table {
    let mut table = Table::new(
        "E6a: parallel client throughput (ingest+read mix, wall clock)",
        &["threads", "ops", "wall ms", "kops/s"],
    );
    for threads in [1usize, 2, 4, 8, 16] {
        let mut gb = GridBuilder::new();
        let site = gb.site("sdsc");
        let srv = gb.server("srb", site);
        gb.fs_resource("fs", srv);
        let grid = gb.build();
        grid.register_user("bench", "sdsc", "pw").unwrap();
        let per_thread = 500usize;
        let done = AtomicU64::new(0);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let grid = &grid;
                let done = &done;
                s.spawn(move || {
                    let conn = SrbConnection::connect(grid, srv, "bench", "sdsc", "pw").unwrap();
                    conn.make_collection(&format!("/home/bench/t{t}")).unwrap();
                    for i in 0..per_thread {
                        let path = format!("/home/bench/t{t}/f{i}");
                        conn.ingest(&path, b"data", IngestOptions::to_resource("fs"))
                            .unwrap();
                        conn.read(&path).unwrap();
                        done.fetch_add(2, Ordering::Relaxed);
                    }
                });
            }
        });
        let wall = t0.elapsed();
        let ops = done.load(Ordering::Relaxed);
        table.row(vec![
            threads.to_string(),
            ops.to_string(),
            format!("{:.1}", wall.as_secs_f64() * 1e3),
            format!("{:.1}", ops as f64 / wall.as_secs_f64() / 1e3),
        ]);
    }
    table
}

/// Part 2: replica-selection policy comparison (ablation A3).
pub fn run_policies() -> Table {
    let mut table = Table::new(
        "E6b: replica-selection policies over 3 replicas, 3000 reads (A3)",
        &[
            "policy",
            "r1 ops",
            "r2 ops",
            "r3 ops",
            "imbalance",
            "sim makespan ms",
        ],
    );
    for (label, policy) in [
        ("first-alive", ReplicaPolicy::FirstAlive),
        ("random", ReplicaPolicy::Random(7)),
        ("least-loaded", ReplicaPolicy::LeastLoaded),
    ] {
        let mut gb = GridBuilder::new();
        let site = gb.site("sdsc");
        let srv = gb.server("srb", site);
        gb.fs_resource("fs1", srv)
            .fs_resource("fs2", srv)
            .fs_resource("fs3", srv);
        let grid = gb.build();
        grid.register_user("bench", "sdsc", "pw").unwrap();
        let mut conn = SrbConnection::connect(&grid, srv, "bench", "sdsc", "pw").unwrap();
        conn.ingest(
            "/home/bench/hot",
            &vec![1u8; 256 << 10],
            IngestOptions::to_resource("fs1"),
        )
        .unwrap();
        conn.replicate("/home/bench/hot", "fs2").unwrap();
        conn.replicate("/home/bench/hot", "fs3").unwrap();
        // Snapshot post-setup load so only the measured reads count.
        let rids: Vec<_> = (1..=3)
            .map(|i| grid.resource_id(&format!("fs{i}")).unwrap())
            .collect();
        let base: Vec<u64> = rids.iter().map(|r| grid.load.completed(*r)).collect();
        let base_busy: Vec<u64> = rids.iter().map(|r| grid.load.busy_ns(*r)).collect();
        match policy {
            ReplicaPolicy::Random(_) => {
                // Vary the seed per read for a genuinely random spread.
                for i in 0..3000u64 {
                    conn.set_policy(ReplicaPolicy::Random(i));
                    conn.read("/home/bench/hot").unwrap();
                }
            }
            p => {
                conn.set_policy(p);
                for _ in 0..3000 {
                    conn.read("/home/bench/hot").unwrap();
                }
            }
        }
        let counts: Vec<u64> = rids
            .iter()
            .zip(&base)
            .map(|(r, b)| grid.load.completed(*r) - b)
            .collect();
        let busy: Vec<u64> = rids
            .iter()
            .zip(&base_busy)
            .map(|(r, b)| grid.load.busy_ns(*r) - b)
            .collect();
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        // Makespan: the busiest replica bounds completion when reads run
        // concurrently.
        let makespan_ms = *busy.iter().max().unwrap() as f64 / 1e6;
        table.row(vec![
            label.to_string(),
            counts[0].to_string(),
            counts[1].to_string(),
            counts[2].to_string(),
            if min > 0.0 {
                format!("{:.2}", max / min)
            } else {
                "inf".into()
            },
            format!("{makespan_ms:.0}"),
        ]);
    }
    table
}

/// Part 3: the same policy comparison with *heterogeneous* replicas — one
/// member is a 10x-slower disk. This is where load awareness earns its
/// keep: random keeps sending 1/3 of reads to the slow replica, while
/// least-loaded adaptively avoids it once its busy-time accumulates.
pub fn run_policies_skewed() -> Table {
    let mut table = Table::new(
        "E6c: policies with one 10x-slower replica, 3000 reads (A3 under skew)",
        &[
            "policy",
            "fast1 ops",
            "fast2 ops",
            "slow ops",
            "sim makespan ms",
        ],
    );
    for (label, policy) in [
        ("random", ReplicaPolicy::Random(7)),
        ("least-loaded", ReplicaPolicy::LeastLoaded),
    ] {
        let mut gb = GridBuilder::new();
        let site = gb.site("sdsc");
        let srv = gb.server("srb", site);
        let slow_disk = srb_storage::CostModel {
            fixed_ns: 2_000_000,
            read_mbps: 5.0,
            write_mbps: 4.0,
        };
        gb.fs_resource("fs1", srv)
            .fs_resource("fs2", srv)
            .fs_resource_with_cost("fs-slow", srv, slow_disk);
        let grid = gb.build();
        grid.register_user("bench", "sdsc", "pw").unwrap();
        let mut conn = SrbConnection::connect(&grid, srv, "bench", "sdsc", "pw").unwrap();
        conn.ingest(
            "/home/bench/hot",
            &vec![1u8; 256 << 10],
            IngestOptions::to_resource("fs1"),
        )
        .unwrap();
        conn.replicate("/home/bench/hot", "fs2").unwrap();
        conn.replicate("/home/bench/hot", "fs-slow").unwrap();
        let rids: Vec<_> = ["fs1", "fs2", "fs-slow"]
            .iter()
            .map(|n| grid.resource_id(n).unwrap())
            .collect();
        let base: Vec<u64> = rids.iter().map(|r| grid.load.completed(*r)).collect();
        let base_busy: Vec<u64> = rids.iter().map(|r| grid.load.busy_ns(*r)).collect();
        match policy {
            ReplicaPolicy::Random(_) => {
                for i in 0..3000u64 {
                    conn.set_policy(ReplicaPolicy::Random(i));
                    conn.read("/home/bench/hot").unwrap();
                }
            }
            p => {
                conn.set_policy(p);
                for _ in 0..3000 {
                    conn.read("/home/bench/hot").unwrap();
                }
            }
        }
        let counts: Vec<u64> = rids
            .iter()
            .zip(&base)
            .map(|(r, b)| grid.load.completed(*r) - b)
            .collect();
        let busy: Vec<u64> = rids
            .iter()
            .zip(&base_busy)
            .map(|(r, b)| grid.load.busy_ns(*r) - b)
            .collect();
        let makespan_ms = *busy.iter().max().unwrap() as f64 / 1e6;
        table.row(vec![
            label.to_string(),
            counts[0].to_string(),
            counts[1].to_string(),
            counts[2].to_string(),
            format!("{makespan_ms:.0}"),
        ]);
    }
    table
}

//! E8 — single sign-on and session keys (§4): handshake and validation
//! costs, plus the 60-minute web-session expiry sweep.

use crate::fixtures::{ok, single_site_grid};
use crate::table::Table;
use mysrb::{MySrb, Request};
use srb_core::SrbConnection;
use std::time::Instant;

pub fn run() -> Table {
    let mut table = Table::new(
        "E8: authentication & session-key costs",
        &["operation", "iterations", "total ms", "per-op us"],
    );
    let (grid, srv) = single_site_grid();

    // Challenge–response handshake (library path).
    let n = 500;
    let t0 = Instant::now();
    for _ in 0..n {
        let c = ok(SrbConnection::connect(&grid, srv, "bench", "sdsc", "pw"));
        c.logout();
    }
    push(
        &mut table,
        "SRB connect (challenge-response)",
        n,
        t0.elapsed(),
    );

    // Ticket validation (every brokered call does one).
    let conn = ok(SrbConnection::connect(&grid, srv, "bench", "sdsc", "pw"));
    let n = 100_000;
    let t0 = Instant::now();
    for _ in 0..n {
        conn.stat("/home/bench").ok();
    }
    push(&mut table, "stat incl. ticket validation", n, t0.elapsed());

    // Web login + page fetch.
    let app = MySrb::new(&grid, srv, 99);
    let n = 200;
    let t0 = Instant::now();
    let mut last_key = String::new();
    for _ in 0..n {
        let resp = app.handle(&Request::post(
            "/login",
            "user=bench&domain=sdsc&password=pw",
            None,
        ));
        last_key = session_key(&resp.headers);
    }
    push(
        &mut table,
        "MySRB login (mint session key)",
        n,
        t0.elapsed(),
    );

    let n = 5_000;
    let t0 = Instant::now();
    for _ in 0..n {
        let resp = app.handle(&Request::get("/browse?path=%2F", Some(&last_key)));
        assert_eq!(resp.status, 200);
    }
    push(
        &mut table,
        "browse incl. session-key check",
        n,
        t0.elapsed(),
    );

    // Expiry sweep: the key dies between minute 59 and 61.
    for minutes in [30u64, 59, 60, 61, 120] {
        let resp = app.handle(&Request::post(
            "/login",
            "user=bench&domain=sdsc&password=pw",
            None,
        ));
        let key = session_key(&resp.headers);
        grid.clock.advance(minutes * 60 * 1_000_000_000);
        let status = app
            .handle(&Request::get("/browse?path=%2F", Some(&key)))
            .status;
        table.row(vec![
            format!("session age {minutes} min -> HTTP {status}"),
            "1".into(),
            "-".into(),
            "-".into(),
        ]);
    }
    table
}

fn push(table: &mut Table, label: &str, n: usize, wall: std::time::Duration) {
    table.row(vec![
        label.to_string(),
        n.to_string(),
        format!("{:.1}", wall.as_secs_f64() * 1e3),
        format!("{:.2}", wall.as_micros() as f64 / n as f64),
    ]);
}

/// Extract the session key a login response set, without unwraps.
fn session_key(headers: &[(String, String)]) -> String {
    headers
        .iter()
        .find(|(k, _)| k == "Set-Cookie")
        .and_then(|(_, v)| v.strip_prefix("mysrb_session="))
        .and_then(|v| v.split(';').next())
        .map(|v| v.to_string())
        .unwrap_or_else(|| panic!("login response set no session cookie"))
}

//! Observability overhead guard — the metrics registry, slow-op log, and
//! span plumbing must stay out of the hot paths' way.
//!
//! Two paired, same-process workloads, each run on two identically built
//! grids: one with `GridBuilder::observability(false)`, one with the
//! default-on wiring. The E1-style point query exercises the planner
//! counters; the E6-style parallel fan-out ingest exercises the storage,
//! fan-out, and slow-op instrumentation. `cargo xtask benchcheck` gates
//! the resulting `BENCH_OBS.json` at 1.05x wall and *exactly equal*
//! simulated time (metrics must never charge the virtual clock).

use crate::fixtures::{ok, time_us};
use crate::table::Table;
use bytes::Bytes;
use serde_json::json;
use srb_core::{FanoutMode, Grid, GridBuilder, IngestOptions, SrbConnection};
use srb_mcat::Query;
use srb_types::{CompareOp, ServerId, Triplet};
use std::time::Instant;

/// One paired measurement: the same workload with observability off
/// (`base`) and on (`obs`).
pub struct OverheadRow {
    pub workload: &'static str,
    pub unit: &'static str,
    /// Wall cost with observability disabled.
    pub base: f64,
    /// Wall cost with the default-on observability wiring.
    pub obs: f64,
    /// Simulated milliseconds (0 for pure catalog workloads). The two must
    /// be equal: instrumentation never advances the virtual clock.
    pub sim_ms_base: f64,
    pub sim_ms_obs: f64,
}

fn grid(observability: bool, fan_k: usize) -> (Grid, ServerId) {
    let mut gb = GridBuilder::new();
    gb.observability(observability);
    let site = gb.site("sdsc");
    let srv = gb.server("srb", site);
    let names: Vec<String> = (0..fan_k.max(1)).map(|i| format!("fs{i}")).collect();
    for n in &names {
        gb.fs_resource(n, srv);
    }
    if fan_k > 1 {
        let refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
        gb.logical_resource("logk", &refs);
    }
    let grid = gb.build();
    ok(grid.register_user("bench", "sdsc", "pw"));
    (grid, srv)
}

/// E1-style planner point query over a `datasets`-row catalog: the two
/// twins (observability off / on) kept alive together so their timed
/// loops can be interleaved — slow host drift (thermal, frequency,
/// neighbours) then hits both sides equally.
struct PointQueryPair {
    grids: Vec<Grid>,
    probe: i64,
}

impl PointQueryPair {
    fn new(datasets: usize) -> PointQueryPair {
        let mut grids = Vec::new();
        for observability in [false, true] {
            let (grid, srv) = grid(observability, 1);
            {
                let conn = ok(SrbConnection::connect(&grid, srv, "bench", "sdsc", "pw"));
                ok(conn.make_collection("/home/bench/data"));
                for i in 0..datasets {
                    ok(conn.ingest(
                        &format!("/home/bench/data/obj{i:07}"),
                        b"x",
                        IngestOptions::to_resource("fs0")
                            .with_metadata(Triplet::new("serial", i as i64, "")),
                    ));
                }
            }
            grids.push(grid);
        }
        let probe = (datasets / 2) as i64;
        let pair = PointQueryPair { grids, probe };
        let q = pair.query();
        for g in &pair.grids {
            assert_eq!(ok(g.mcat.query(&q)).len(), 1);
            let _ = time_us(500, || {
                ok(g.mcat.query(&q));
            });
        }
        pair
    }

    fn query(&self) -> Query {
        Query::everywhere().and("serial", CompareOp::Eq, self.probe)
    }

    /// Min us/op over `trials` interleaved loops, per side. The minimum is
    /// the noise-robust estimator for a same-process A/B; the within-pair
    /// order alternates so a monotonic drift cannot systematically favour
    /// one side.
    fn best(&self, trials: usize) -> (f64, f64) {
        let q = self.query();
        let mut best = [f64::INFINITY; 2];
        for t in 0..trials {
            let order: [usize; 2] = if t % 2 == 0 { [0, 1] } else { [1, 0] };
            for side in order {
                let us = time_us(8000, || {
                    ok(self.grids[side].mcat.query(&q));
                });
                best[side] = best[side].min(us);
            }
        }
        (best[0], best[1])
    }
}

/// One E6d-style pass: `files` parallel 8-way logical ingests. Returns
/// (wall ms, simulated ms).
fn fanout_pass(observability: bool, files: usize, payload: usize) -> (f64, f64) {
    let (grid, srv) = grid(observability, 8);
    let mut conn = ok(SrbConnection::connect(&grid, srv, "bench", "sdsc", "pw"));
    conn.set_fanout_mode(FanoutMode::Parallel);
    let data = Bytes::from(vec![0xF5u8; payload]);
    let mut sim_ns = 0u64;
    let t0 = Instant::now();
    for i in 0..files {
        let r = ok(conn.ingest(
            &format!("/home/bench/f{i}"),
            data.clone(),
            IngestOptions::to_resource("logk"),
        ));
        sim_ns += r.sim_ns;
    }
    (t0.elapsed().as_secs_f64() * 1e3, sim_ns as f64 / 1e6)
}

/// Best-of-`trials` fan-out passes on both twins, alternated like
/// `point_query_pair`, after one warm-up pass each (allocator high-water
/// mark, thread-pool spin-up). Returns ((base wall, base sim), (obs wall,
/// obs sim)).
fn fanout_pair(files: usize, payload: usize, trials: usize) -> ((f64, f64), (f64, f64)) {
    let _ = fanout_pass(false, files, payload);
    let _ = fanout_pass(true, files, payload);
    let mut best = [(f64::INFINITY, 0.0); 2];
    for _ in 0..trials {
        for (side, observability) in [false, true].into_iter().enumerate() {
            let (wall, sim) = fanout_pass(observability, files, payload);
            if wall < best[side].0 {
                best[side] = (wall, sim);
            }
        }
    }
    (best[0], best[1])
}

/// Both paired workloads. `datasets` sizes the point-query catalog,
/// `files` the fan-out ingest batch.
pub fn measure(datasets: usize, files: usize) -> Vec<OverheadRow> {
    // Two temporally separated point-query blocks with the fan-out
    // measurement between them: a burst of machine-wide interference that
    // inflates one whole block cannot inflate both, and the min spans
    // them.
    let pq = PointQueryPair::new(datasets);
    let (a_base, a_obs) = pq.best(8);
    let ((f_base_wall, f_base_sim), (f_obs_wall, f_obs_sim)) = fanout_pair(files, 1 << 20, 3);
    let (b_base, b_obs) = pq.best(8);
    let (q_base, q_obs) = (a_base.min(b_base), a_obs.min(b_obs));
    vec![
        OverheadRow {
            workload: "e1_point_query",
            unit: "us_per_op",
            base: q_base,
            obs: q_obs,
            sim_ms_base: 0.0,
            sim_ms_obs: 0.0,
        },
        OverheadRow {
            workload: "e6_fanout_ingest",
            unit: "wall_ms",
            base: f_base_wall,
            obs: f_obs_wall,
            sim_ms_base: f_base_sim,
            sim_ms_obs: f_obs_sim,
        },
    ]
}

/// Human-readable table.
pub fn run(datasets: usize, files: usize) -> Table {
    let mut table = Table::new(
        "OBS: observability overhead (identical workload, obs off vs on)",
        &["workload", "unit", "obs off", "obs on", "overhead"],
    );
    for r in measure(datasets, files) {
        table.row(vec![
            r.workload.to_string(),
            r.unit.to_string(),
            format!("{:.2}", r.base),
            format!("{:.2}", r.obs),
            format!("{:+.1}%", (r.obs / r.base.max(1e-9) - 1.0) * 100.0),
        ]);
    }
    table
}

/// Machine-checkable artifact for `cargo xtask benchcheck` (the 1.05x
/// overhead gate).
pub fn run_json(datasets: usize, files: usize) -> serde_json::Value {
    let rows: Vec<serde_json::Value> = measure(datasets, files)
        .iter()
        .map(|r| {
            json!({
                "workload": r.workload,
                "unit": r.unit,
                "base": r.base,
                "obs": r.obs,
                "overhead": r.obs / r.base.max(1e-9),
                "sim_ms_base": r.sim_ms_base,
                "sim_ms_obs": r.sim_ms_obs,
            })
        })
        .collect();
    json!({
        "experiment": "obs_overhead",
        "gate": 1.05,
        "datasets": datasets,
        "files": files,
        "rows": rows,
    })
}

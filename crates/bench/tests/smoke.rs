//! Smoke tests: every experiment harness must run end to end (with small
//! parameters) so `cargo test` guards the benchmark suite against
//! regressions, not just the library code.

use bench::experiments::*;

#[test]
fn e1_catalog_scale_smoke() {
    let t = e1_catalog_scale::run(1000);
    assert_eq!(t.len(), 1);
}

#[test]
fn e2_containers_smoke() {
    let t = e2_containers::run(5);
    assert_eq!(t.len(), 5); // five file sizes
}

#[test]
fn e3_failover_smoke() {
    let t = e3_failover::run();
    assert_eq!(t.len(), 2 + 3 + 4 + 5); // k=1..4 with 0..=k failures
}

#[test]
fn e4_federation_smoke() {
    let t = e4_federation::run();
    assert_eq!(t.len(), 3);
}

#[test]
fn e5_query_smoke() {
    let t = e5_query::run(2_000);
    assert_eq!(t.len(), 6); // growing conjunction, 1..=6 conditions
}

#[test]
fn e6_policies_smoke() {
    assert_eq!(e6_parallel::run_policies().len(), 3);
    assert_eq!(e6_parallel::run_policies_skewed().len(), 2);
}

#[test]
fn e7_sync_repl_smoke() {
    assert_eq!(e7_sync_repl::run().len(), 4);
}

#[test]
fn e8_auth_smoke() {
    let t = e8_auth::run();
    assert!(t.len() >= 9);
}

#[test]
fn e9_migration_smoke() {
    assert_eq!(e9_migration::run().len(), 3);
}

#[test]
fn e10_cache_smoke() {
    assert_eq!(e10_cache::run().len(), 6);
}

#[test]
fn figures_smoke() {
    let f1 = figures::figure1();
    assert!(f1.render().contains("true"));
    let f2 = figures::figure2();
    assert!(f2.render().contains("15/15"));
}

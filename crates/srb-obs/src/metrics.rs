//! The metrics registry: counters, gauges and log₂ histograms.
//!
//! Handles are `Arc`s of atomics, so recording is a single `fetch_add`
//! with no lock. The registry maps live behind ranked `RwLock`s at
//! [`LockRank::Topology`], the bottom of the hierarchy, so registration
//! (and snapshotting) is legal while holding any other lock in the
//! workspace. Callers on hot paths should register once and keep the
//! handle; `counter()`/`gauge()`/`histogram()` are still cheap on the
//! re-registration path (one read lock, two `BTreeMap` probes, no
//! allocation on hit) for call sites where caching a handle is awkward.

use crate::valid_metric_name;
use serde::{Deserialize, Serialize};
use srb_types::sync::RwLock;
use srb_types::LockRank;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event count.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Count one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Count `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that moves both ways (breaker state, queue depth).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the value by `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket `i` holds values in `[2^(i-1), 2^i)`,
/// bucket 0 holds zero, bucket 64 holds `>= 2^63`.
const BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A log₂-bucketed distribution of a virtual-time or size quantity.
///
/// p50/p95/p99 are derivable from the buckets (reported as the bucket's
/// upper bound, clamped to the exact observed maximum), which is all the
/// resolution a "which leg is slow" question needs at the cost of 65
/// atomics instead of a reservoir.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCore>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }
}

/// Index of the log₂ bucket holding `v`.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Upper bound of bucket `i` (inclusive).
fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, v: u64) {
        let core = &*self.0;
        core.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(v, Ordering::Relaxed);
        core.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Snapshot count, sum, max and the standard quantiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let core = &*self.0;
        let buckets: Vec<u64> = core
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        let max = core.max.load(Ordering::Relaxed);
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut cum = 0u64;
            for (i, &n) in buckets.iter().enumerate() {
                cum += n;
                if cum >= target {
                    return bucket_upper(i).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum: core.sum.load(Ordering::Relaxed),
            max,
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }
}

/// Point-in-time summary of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations (mean = sum / count).
    pub sum: u64,
    /// Exact largest observation.
    pub max: u64,
    /// Median, as the log₂ bucket upper bound (clamped to `max`).
    pub p50: u64,
    /// 95th percentile, same resolution.
    pub p95: u64,
    /// 99th percentile, same resolution.
    pub p99: u64,
}

/// Per-metric family map: label → handle. Nested maps keep lookups
/// allocation-free and snapshots deterministically ordered.
type Family<H> = BTreeMap<String, H>;

struct Inner {
    counters: RwLock<BTreeMap<String, Family<Counter>>>,
    gauges: RwLock<BTreeMap<String, Family<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Family<Histogram>>>,
}

/// The registry. Cloning shares all metrics; every subsystem of one grid
/// holds a clone of the same registry.
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry").finish_non_exhaustive()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        MetricsRegistry::new()
    }
}

fn get_or_register<H: Clone + Default>(
    map: &RwLock<BTreeMap<String, Family<H>>>,
    name: &str,
    label: &str,
) -> H {
    if let Some(h) = map.read().get(name).and_then(|f| f.get(label)) {
        return h.clone();
    }
    assert!(
        valid_metric_name(name),
        "metric name `{name}` violates the `subsystem.name` scheme \
         (see srb_obs::SUBSYSTEMS)"
    );
    let mut w = map.write();
    w.entry(name.to_string())
        .or_default()
        .entry(label.to_string())
        .or_default()
        .clone()
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            inner: Arc::new(Inner {
                counters: RwLock::new(LockRank::Topology, "obs.counters", BTreeMap::new()),
                gauges: RwLock::new(LockRank::Topology, "obs.gauges", BTreeMap::new()),
                histograms: RwLock::new(LockRank::Topology, "obs.histograms", BTreeMap::new()),
            }),
        }
    }

    /// The counter `name{label}`, registering it on first use.
    /// Panics if `name` violates the naming scheme.
    pub fn counter(&self, name: &str, label: &str) -> Counter {
        get_or_register(&self.inner.counters, name, label)
    }

    /// The gauge `name{label}`, registering it on first use.
    pub fn gauge(&self, name: &str, label: &str) -> Gauge {
        get_or_register(&self.inner.gauges, name, label)
    }

    /// The histogram `name{label}`, registering it on first use.
    pub fn histogram(&self, name: &str, label: &str) -> Histogram {
        get_or_register(&self.inner.histograms, name, label)
    }

    /// Deterministic point-in-time snapshot of every registered metric
    /// (the slow-op log is merged in by [`crate::Obs::snapshot`]).
    pub fn snapshot(&self) -> crate::MetricsSnapshot {
        let counters = self
            .inner
            .counters
            .read()
            .iter()
            .map(|(name, fam)| {
                (
                    name.clone(),
                    fam.iter().map(|(l, c)| (l.clone(), c.get())).collect(),
                )
            })
            .collect();
        let gauges = self
            .inner
            .gauges
            .read()
            .iter()
            .map(|(name, fam)| {
                (
                    name.clone(),
                    fam.iter().map(|(l, g)| (l.clone(), g.get())).collect(),
                )
            })
            .collect();
        let histograms = self
            .inner
            .histograms
            .read()
            .iter()
            .map(|(name, fam)| {
                (
                    name.clone(),
                    fam.iter().map(|(l, h)| (l.clone(), h.snapshot())).collect(),
                )
            })
            .collect();
        crate::MetricsSnapshot {
            counters,
            gauges,
            histograms,
            slow_ops: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("core.ops", "");
        c.inc();
        c.add(4);
        // Re-registration returns the same underlying atomic.
        assert_eq!(reg.counter("core.ops", "").get(), 5);
        let g = reg.gauge("health.breaker_state", "fs2");
        g.set(2);
        g.add(-1);
        assert_eq!(reg.gauge("health.breaker_state", "fs2").get(), 1);
    }

    #[test]
    #[should_panic(expected = "subsystem.name")]
    fn bad_name_panics_at_registration() {
        MetricsRegistry::new().counter("bogus.metric", "");
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..64 {
            assert_eq!(bucket_of(bucket_upper(i)), i, "upper bound stays in bucket");
            assert_eq!(bucket_of(bucket_upper(i) + 1), i + 1);
        }
    }

    #[test]
    fn histogram_quantiles() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("core.op_ns", "");
        // 100 observations: 90 cheap (~1us), 10 expensive (~1ms).
        for _ in 0..90 {
            h.observe(1_000);
        }
        for _ in 0..10 {
            h.observe(1_000_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max, 1_000_000);
        assert!(s.p50 < 2_048, "median in the cheap bucket, got {}", s.p50);
        assert!(
            s.p95 >= 524_288,
            "p95 in the expensive bucket, got {}",
            s.p95
        );
        assert_eq!(s.p99, 1_000_000, "p99 clamps to the exact max");
        assert_eq!(s.sum, 90 * 1_000 + 10 * 1_000_000);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let reg = MetricsRegistry::new();
        let s = reg.histogram("core.op_ns", "x").snapshot();
        assert_eq!(
            s,
            HistogramSnapshot {
                count: 0,
                sum: 0,
                max: 0,
                p50: 0,
                p95: 0,
                p99: 0
            }
        );
    }

    #[test]
    fn snapshot_orders_names_and_labels() {
        let reg = MetricsRegistry::new();
        reg.counter("web.requests", "/query").inc();
        reg.counter("web.requests", "/browse").inc();
        reg.counter("core.ops", "").inc();
        let snap = reg.snapshot();
        let names: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(names, ["core.ops", "web.requests"]);
        let labels: Vec<&String> = snap.counters["web.requests"].keys().collect();
        assert_eq!(labels, ["/browse", "/query"]);
    }
}

//! The typed metrics snapshot and its text rendering.
//!
//! Every container is ordered (`BTreeMap` keyed by metric name then
//! label; the slow-op log arrives pre-sorted), so serializing a snapshot
//! of a seeded run is **byte-identical** across replays. The chaos oracle
//! relies on this to diff whole snapshots instead of cherry-picking
//! counters.

pub use crate::metrics::HistogramSnapshot;
use crate::slowlog::SlowOp;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Point-in-time state of every metric in one grid, plus the slow-op log.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values: name → label → count.
    pub counters: BTreeMap<String, BTreeMap<String, u64>>,
    /// Gauge values: name → label → value.
    pub gauges: BTreeMap<String, BTreeMap<String, i64>>,
    /// Histogram summaries: name → label → quantiles.
    pub histograms: BTreeMap<String, BTreeMap<String, HistogramSnapshot>>,
    /// The slowest operations, slowest first.
    pub slow_ops: Vec<SlowOp>,
}

impl MetricsSnapshot {
    /// Sum of one counter family across labels (0 when unregistered).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, |fam| fam.values().sum())
    }

    /// One counter value (0 when unregistered).
    pub fn counter(&self, name: &str, label: &str) -> u64 {
        self.counters
            .get(name)
            .and_then(|fam| fam.get(label))
            .copied()
            .unwrap_or(0)
    }

    /// One gauge value (0 when unregistered).
    pub fn gauge(&self, name: &str, label: &str) -> i64 {
        self.gauges
            .get(name)
            .and_then(|fam| fam.get(label))
            .copied()
            .unwrap_or(0)
    }

    /// Render the exposition text served at `/metrics`: one line per
    /// sample, `name{label} value`, sorted, followed by the slow-op log
    /// as comments. Deterministic byte-for-byte for seeded runs.
    pub fn render_text(&self) -> String {
        fn key(name: &str, label: &str) -> String {
            if label.is_empty() {
                name.to_string()
            } else {
                format!("{name}{{{label}}}")
            }
        }
        let mut out = String::new();
        for (name, fam) in &self.counters {
            for (label, v) in fam {
                let _ = writeln!(out, "{} {v}", key(name, label));
            }
        }
        for (name, fam) in &self.gauges {
            for (label, v) in fam {
                let _ = writeln!(out, "{} {v}", key(name, label));
            }
        }
        for (name, fam) in &self.histograms {
            for (label, h) in fam {
                let k = key(name, label);
                let _ = writeln!(
                    out,
                    "{k} count={} sum={} p50={} p95={} p99={} max={}",
                    h.count, h.sum, h.p50, h.p95, h.p99, h.max
                );
            }
        }
        for e in &self.slow_ops {
            let _ = writeln!(
                out,
                "# slow_op seq={} op={} subject={} sim_ns={} bytes={} \
                 messages={} hops={} replicas_tried={} retries={} served_stale={}",
                e.seq,
                e.op,
                e.subject,
                e.cost.sim_ns,
                e.cost.bytes,
                e.cost.messages,
                e.cost.hops,
                e.cost.replicas_tried,
                e.cost.retries,
                e.cost.served_stale
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Obs, OpCost};
    use srb_types::SimClock;

    fn sample_obs() -> Obs {
        let obs = Obs::new(SimClock::new());
        obs.metrics.counter("web.requests", "/query").add(7);
        obs.metrics.gauge("health.breaker_state", "fs2").set(2);
        obs.metrics.histogram("core.op_ns", "open").observe(4_096);
        obs.slow.record(
            "open",
            "/zoo/a",
            OpCost {
                sim_ns: 4_096,
                bytes: 1_024,
                messages: 2,
                ..OpCost::default()
            },
        );
        obs
    }

    #[test]
    fn render_text_is_sorted_and_complete() {
        let text = sample_obs().snapshot().render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "web.requests{/query} 7");
        assert_eq!(lines[1], "health.breaker_state{fs2} 2");
        assert!(lines[2].starts_with("core.op_ns{open} count=1 sum=4096"));
        assert!(lines[3].starts_with("# slow_op seq=1 op=open subject=/zoo/a"));
    }

    #[test]
    fn snapshot_serialization_is_stable() {
        let obs = sample_obs();
        let a = serde_json::to_string(&obs.snapshot()).expect("snapshot serializes");
        let b = serde_json::to_string(&obs.snapshot()).expect("snapshot serializes");
        assert_eq!(a, b);
        let back: MetricsSnapshot = serde_json::from_str(&a).expect("snapshot parses");
        assert_eq!(back, obs.snapshot());
    }

    #[test]
    fn accessors_default_to_zero() {
        let snap = MetricsSnapshot::default();
        assert_eq!(snap.counter_total("fanout.legs_dispatched"), 0);
        assert_eq!(snap.counter("web.requests", "/query"), 0);
        assert_eq!(snap.gauge("health.breaker_state", "fs1"), 0);
    }
}

//! Resource-id → metric-label resolution.
//!
//! Subsystems below `srb-core` (breakers, fault injection) key their state
//! by [`ResourceId`], but operators read metrics by resource *name*. The
//! grid builds one immutable name map at construction time and hands a
//! clone to every instrumented subsystem; unknown ids (resources created
//! after the map was built) fall back to `r<id>` rather than panicking.

use srb_types::ResourceId;
use std::collections::HashMap;
use std::sync::Arc;

/// Immutable, cheaply clonable resource-name map.
#[derive(Debug, Clone, Default)]
pub struct ResourceLabels {
    names: Arc<HashMap<ResourceId, String>>,
}

impl ResourceLabels {
    /// Wrap a name map built by the grid.
    pub fn new(names: HashMap<ResourceId, String>) -> ResourceLabels {
        ResourceLabels {
            names: Arc::new(names),
        }
    }

    /// The metric label for `r`.
    pub fn get(&self, r: ResourceId) -> String {
        self.names
            .get(&r)
            .cloned()
            .unwrap_or_else(|| format!("r{}", r.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_and_fallback_labels() {
        let mut m = HashMap::new();
        m.insert(ResourceId(7), "fs-sdsc".to_string());
        let labels = ResourceLabels::new(m);
        assert_eq!(labels.get(ResourceId(7)), "fs-sdsc");
        assert_eq!(labels.get(ResourceId(9)), "r9");
    }
}

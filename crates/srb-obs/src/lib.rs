#![warn(missing_docs)]
//! Deterministic observability for the data grid.
//!
//! The SRB of the paper ran as shared production infrastructure (Digital
//! Sky, NARA); operating it meant knowing which resources were healthy,
//! which queries were slow and where replication time went. This crate is
//! that layer for the reproduction: a **metrics registry** of atomic
//! counters, gauges and log₂-bucketed latency histograms, a **span tracer**
//! over the virtual [`SimClock`], and a bounded **slow-op log** keeping the
//! N most expensive operations with their cost breakdown.
//!
//! Two properties are load-bearing:
//!
//! * **Lock-cheap.** Handles returned by the registry are `Arc`s of plain
//!   atomics; the hot path is a `fetch_add`. The registry's own maps sit
//!   behind a ranked [`RwLock`](srb_types::sync::RwLock) at
//!   [`LockRank::Topology`](srb_types::sync::LockRank::Topology) — the lowest
//!   rank — so a metric may be recorded while holding *any* other lock in
//!   the workspace without inverting the hierarchy.
//! * **Deterministic.** Every observed quantity is a virtual-clock or
//!   count quantity, never wall time, and every snapshot container is
//!   ordered (`BTreeMap`, sorted slow-op log). Two identically-seeded runs
//!   therefore produce byte-identical [`MetricsSnapshot`]s — the chaos
//!   oracle asserts exactly that, which turns the observability layer into
//!   a correctness tool rather than a best-effort one.
//!
//! # Naming scheme
//!
//! Every metric name is `subsystem.name`: a subsystem from
//! [`SUBSYSTEMS`], a single dot, then a `[a-z0-9_]+` metric name
//! (e.g. `fanout.legs_dispatched`, `query.scope_cache_hits`). The scheme
//! is enforced at registration — an ill-formed name panics, like a lock
//! rank inversion, because it is a programming bug, not an input error —
//! and `cargo xtask lint` statically checks registration call sites
//! outside this crate. Labels distinguish instances of one metric
//! (a resource name, a driver kind, a web route); the empty label is the
//! convention for unlabelled metrics.

pub mod labels;
pub mod metrics;
pub mod slowlog;
pub mod snapshot;
pub mod trace;

pub use labels::ResourceLabels;
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use slowlog::{OpCost, SlowOp, SlowOpLog};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot};
pub use trace::{Span, SpanId, Tracer};

use srb_types::SimClock;

/// The subsystems a metric may belong to. Kept in one place so the
/// registry, the lint rule and DESIGN.md §12 agree on the universe.
pub const SUBSYSTEMS: &[&str] = &[
    "storage", "health", "faults", "fanout", "query", "mcat", "wal", "web", "core", "zone",
];

/// True when `name` follows the `subsystem.name` scheme documented on the
/// crate root. Shared verbatim with the `cargo xtask lint` metric-name
/// rule, which applies it to registration call sites across the workspace.
pub fn valid_metric_name(name: &str) -> bool {
    let Some((subsystem, rest)) = name.split_once('.') else {
        return false;
    };
    SUBSYSTEMS.contains(&subsystem)
        && !rest.is_empty()
        && rest
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

/// One observability domain: registry + tracer + slow-op log sharing a
/// virtual clock. Cloning shares all state; a [`Grid`]-alike owns one and
/// hands clones to each subsystem it instruments.
///
/// [`Grid`]: https://en.wikipedia.org/wiki/Data_grid
#[derive(Clone, Debug)]
pub struct Obs {
    /// Counters, gauges and histograms.
    pub metrics: MetricsRegistry,
    /// Ring-buffered structured spans.
    pub tracer: Tracer,
    /// The N most expensive operations seen so far.
    pub slow: SlowOpLog,
}

impl Obs {
    /// A fresh domain over `clock` with default capacities
    /// (1024 spans, 16 slow ops).
    pub fn new(clock: SimClock) -> Obs {
        Obs {
            metrics: MetricsRegistry::new(),
            tracer: Tracer::new(clock, trace::DEFAULT_SPAN_CAPACITY),
            slow: SlowOpLog::new(slowlog::DEFAULT_SLOW_OPS),
        }
    }

    /// Full deterministic snapshot: all metrics plus the slow-op log.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        snap.slow_ops = self.slow.entries();
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naming_scheme() {
        assert!(valid_metric_name("fanout.legs_dispatched"));
        assert!(valid_metric_name("query.scope_cache_hits"));
        assert!(valid_metric_name("web.requests"));
        assert!(!valid_metric_name("fanout"), "missing name part");
        assert!(!valid_metric_name("fanout."), "empty name part");
        assert!(!valid_metric_name("replica.count"), "unknown subsystem");
        assert!(!valid_metric_name("fanout.LegsStale"), "uppercase");
        assert!(!valid_metric_name("fanout.legs stale"), "space");
        assert!(!valid_metric_name("fanout.legs.stale"), "second dot");
    }

    #[test]
    fn obs_snapshot_combines_metrics_and_slow_ops() {
        let obs = Obs::new(SimClock::new());
        obs.metrics.counter("core.ops", "").add(3);
        obs.slow.record("open", "/zoo/a", OpCost::default());
        let snap = obs.snapshot();
        assert_eq!(snap.counters["core.ops"][""], 3);
        assert_eq!(snap.slow_ops.len(), 1);
        assert_eq!(snap.slow_ops[0].op, "open");
    }
}

//! The bounded slow-op log: the N most expensive operations so far.
//!
//! A production operator's first question ("what is slow right now?")
//! should not require replaying a workload under a profiler. Each grid
//! operation reports its simulated cost breakdown here; the log keeps the
//! `capacity` ops with the largest simulated duration. A lock-free floor
//! check (the smallest duration currently kept) skips the lock for the
//! overwhelmingly common cheap op once the log is full.

use serde::{Deserialize, Serialize};
use srb_types::sync::Mutex;
use srb_types::LockRank;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Slow ops kept per grid.
pub const DEFAULT_SLOW_OPS: usize = 16;

/// Cost breakdown of one operation, mirroring the fields of the
/// `srb-net` `Receipt` (this crate sits below `srb-net`, so callers
/// convert rather than this crate depending upward).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCost {
    /// Simulated duration, nanoseconds.
    pub sim_ns: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Protocol messages exchanged.
    pub messages: u64,
    /// Inter-site hops traversed.
    pub hops: u64,
    /// Replicas attempted before success or give-up.
    pub replicas_tried: u64,
    /// Transient-failure retries performed.
    pub retries: u64,
    /// Whether a stale replica was knowingly served.
    pub served_stale: bool,
}

/// One entry in the slow-op log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlowOp {
    /// Admission sequence number; breaks duration ties deterministically
    /// (earlier op wins).
    pub seq: u64,
    /// Operation name (e.g. `open`, `ingest_bulk`).
    pub op: String,
    /// What the op acted on (a logical path, a route).
    pub subject: String,
    /// The leg breakdown.
    pub cost: OpCost,
}

struct State {
    next_seq: u64,
    entries: Vec<SlowOp>,
}

struct Inner {
    capacity: usize,
    /// Smallest `sim_ns` currently kept once full; 0 while filling.
    floor: AtomicU64,
    state: Mutex<State>,
}

/// The log. Cloning shares the entries.
#[derive(Clone)]
pub struct SlowOpLog {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for SlowOpLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlowOpLog").finish_non_exhaustive()
    }
}

impl SlowOpLog {
    /// A log keeping the `capacity` slowest ops.
    pub fn new(capacity: usize) -> SlowOpLog {
        SlowOpLog {
            inner: Arc::new(Inner {
                capacity: capacity.max(1),
                floor: AtomicU64::new(0),
                state: Mutex::new(
                    LockRank::Topology,
                    "obs.slow_ops",
                    State {
                        next_seq: 1,
                        entries: Vec::new(),
                    },
                ),
            }),
        }
    }

    /// Report a finished operation. Cheap ops (below the current floor of
    /// a full log) return without locking.
    pub fn record(&self, op: &str, subject: &str, cost: OpCost) {
        let floor = self.inner.floor.load(Ordering::Relaxed);
        if floor > 0 && cost.sim_ns <= floor {
            return;
        }
        let mut st = self.inner.state.lock();
        let seq = st.next_seq;
        st.next_seq += 1;
        st.entries.push(SlowOp {
            seq,
            op: op.to_string(),
            subject: subject.to_string(),
            cost,
        });
        // Slowest first; ties broken by admission order.
        st.entries
            .sort_by(|a, b| b.cost.sim_ns.cmp(&a.cost.sim_ns).then(a.seq.cmp(&b.seq)));
        st.entries.truncate(self.inner.capacity);
        let new_floor = if st.entries.len() == self.inner.capacity {
            st.entries.last().map_or(0, |e| e.cost.sim_ns)
        } else {
            0
        };
        self.inner.floor.store(new_floor, Ordering::Relaxed);
    }

    /// The kept ops, slowest first.
    pub fn entries(&self) -> Vec<SlowOp> {
        self.inner.state.lock().entries.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(sim_ns: u64) -> OpCost {
        OpCost {
            sim_ns,
            ..OpCost::default()
        }
    }

    #[test]
    fn keeps_the_slowest_in_order() {
        let log = SlowOpLog::new(3);
        for (op, ns) in [("a", 30), ("b", 10), ("c", 50), ("d", 20), ("e", 40)] {
            log.record(op, "/x", cost(ns));
        }
        let names: Vec<String> = log.entries().iter().map(|e| e.op.clone()).collect();
        assert_eq!(names, ["c", "e", "a"]);
    }

    #[test]
    fn ties_break_by_admission_order() {
        let log = SlowOpLog::new(2);
        log.record("first", "/x", cost(10));
        log.record("second", "/x", cost(10));
        log.record("third", "/x", cost(10));
        let names: Vec<String> = log.entries().iter().map(|e| e.op.clone()).collect();
        assert_eq!(names, ["first", "second"]);
    }

    #[test]
    fn floor_rejects_cheap_ops_once_full() {
        let log = SlowOpLog::new(2);
        log.record("a", "/x", cost(100));
        log.record("b", "/x", cost(200));
        log.record("cheap", "/x", cost(50));
        let entries = log.entries();
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().all(|e| e.op != "cheap"));
        // A new slow op still displaces the floor entry.
        log.record("slow", "/x", cost(150));
        let names: Vec<String> = log.entries().iter().map(|e| e.op.clone()).collect();
        assert_eq!(names, ["b", "slow"]);
    }
}

//! Ring-buffered structured spans over the virtual clock.
//!
//! Spans are recorded **post hoc**: grid operations charge simulated
//! costs into a `Receipt` without advancing the shared clock, so a span's
//! duration is known only when the operation finishes. The caller records
//! `(start, dur_ns)` after the fact, optionally parented to an enclosing
//! span, and the tracer keeps the most recent `capacity` spans. Recording
//! happens from the operation's calling thread (never from fan-out
//! workers), so span ids and ring contents are deterministic under a
//! seeded workload.

use serde::{Deserialize, Serialize};
use srb_types::sync::Mutex;
use srb_types::{LockRank, SimClock, Timestamp};
use std::collections::VecDeque;
use std::sync::Arc;

/// Spans kept per grid before the oldest is evicted.
pub const DEFAULT_SPAN_CAPACITY: usize = 1024;

/// Identifier of a recorded span, unique within one tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SpanId(pub u64);

/// One completed operation leg.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Span {
    /// This span's id.
    pub id: u64,
    /// Enclosing span, if the operation was nested.
    pub parent: Option<u64>,
    /// Operation name (e.g. `open`, `mcat_rpc`, `store_leg`).
    pub name: String,
    /// Instance label (a path, a resource, a route).
    pub label: String,
    /// Virtual start time, nanoseconds since boot.
    pub start_ns: u64,
    /// Simulated duration in nanoseconds.
    pub dur_ns: u64,
}

struct State {
    next_id: u64,
    spans: VecDeque<Span>,
}

struct Inner {
    clock: SimClock,
    capacity: usize,
    state: Mutex<State>,
}

/// The span ring. Cloning shares the buffer.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").finish_non_exhaustive()
    }
}

impl Tracer {
    /// A tracer over `clock` keeping at most `capacity` spans.
    pub fn new(clock: SimClock, capacity: usize) -> Tracer {
        Tracer {
            inner: Arc::new(Inner {
                clock,
                capacity: capacity.max(1),
                state: Mutex::new(
                    LockRank::Topology,
                    "obs.spans",
                    State {
                        next_id: 1,
                        spans: VecDeque::new(),
                    },
                ),
            }),
        }
    }

    /// The virtual clock spans are stamped against.
    pub fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    /// Record a completed span; returns its id so children can parent to
    /// it. Evicts the oldest span when the ring is full.
    pub fn record(
        &self,
        name: &str,
        label: &str,
        parent: Option<SpanId>,
        start: Timestamp,
        dur_ns: u64,
    ) -> SpanId {
        let mut st = self.inner.state.lock();
        let id = st.next_id;
        st.next_id += 1;
        if st.spans.len() == self.inner.capacity {
            st.spans.pop_front();
        }
        st.spans.push_back(Span {
            id,
            parent: parent.map(|p| p.0),
            name: name.to_string(),
            label: label.to_string(),
            start_ns: start.nanos(),
            dur_ns,
        });
        SpanId(id)
    }

    /// The buffered spans, oldest first.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.state.lock().spans.iter().cloned().collect()
    }

    /// Number of buffered spans.
    pub fn len(&self) -> usize {
        self.inner.state.lock().spans.len()
    }

    /// True when no span has been recorded (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_parented_spans() {
        let clock = SimClock::new();
        let t = Tracer::new(clock.clone(), 8);
        let root = t.record("open", "/zoo/a", None, clock.now(), 5_000);
        clock.advance(5_000);
        let child = t.record("mcat_rpc", "stat", Some(root), Timestamp(0), 2_000);
        assert_ne!(root, child);
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "open");
        assert_eq!(spans[1].parent, Some(spans[0].id));
    }

    #[test]
    fn ring_evicts_oldest() {
        let t = Tracer::new(SimClock::new(), 3);
        for i in 0..5u64 {
            t.record("op", &format!("n{i}"), None, Timestamp(i), 1);
        }
        let spans = t.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].label, "n2", "oldest two evicted");
        assert_eq!(spans[2].label, "n4");
    }
}

//! `srb-grid` — a Rust reproduction of the SDSC Storage Resource Broker
//! (SRB) and MySRB, the data-grid middleware described in
//! *"MySRB & SRB: Components of a Data Grid"* (HPDC 2002).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`types`] — ids, paths, errors, virtual clock, metadata values, ACLs;
//! * [`net`] — the simulated WAN (sites, links, costs, failure injection);
//! * [`storage`] — heterogeneous storage drivers (fs, archive, cache,
//!   database with micro-SQL, URLs);
//! * [`mcat`] — the metadata catalog and query engine;
//! * [`core`] — the SRB itself (grid assembly, federation, client API);
//! * [`web`] — MySRB, the web interface.
//!
//! Start with [`prelude`] and the `examples/` directory.

pub use mysrb as web;
pub use srb_core as core;
pub use srb_mcat as mcat;
pub use srb_net as net;
pub use srb_storage as storage;
pub use srb_types as types;

/// The names most programs need.
pub mod prelude {
    pub use mysrb::{MySrb, Request as WebRequest};
    pub use srb_core::{
        Grid, GridBuilder, IngestOptions, ObjectContent, Receipt, RegisterSpec, ReplicaPolicy,
        SrbConnection,
    };
    pub use srb_mcat::{AnnotationKind, AttrRequirement, LockKind, Query, Template};
    pub use srb_net::LinkSpec;
    pub use srb_types::{
        CompareOp, LogicalPath, MetaValue, Permission, Role, SrbError, SrbResult, Triplet,
    };
}
